//! End-to-end tests for the `gopher serve` daemon: HTTP answers must be
//! bit-identical to in-process sessions, concurrent callers must coalesce,
//! error paths must map to the right status codes, and shutdown must drain.

use gopher_json::Json;
use gopher_serve::client::{request_once, Conn};
use gopher_serve::server::default_request;
use gopher_serve::{api, build_session, ServeConfig, SessionConfig};
use std::net::SocketAddr;
use std::time::Duration;

fn start(config: ServeConfig) -> (gopher_serve::Server, SocketAddr) {
    let server = gopher_serve::Server::start(config).expect("bind an ephemeral port");
    let addr = server.addr();
    (server, addr)
}

fn parse(body: &str) -> Json {
    gopher_json::parse(body.trim()).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

/// Response JSON minus the wall-clock fields (`query_ms` / `search_ms`),
/// which are the only legitimately nondeterministic parts.
fn stripped(body: &str) -> Json {
    let mut json = parse(body);
    if let Json::Obj(ref mut fields) = json {
        fields.remove("query_ms");
        fields.remove("search_ms");
    }
    json
}

const GERMAN_300: &str =
    r#"{"name":"german", "generator":"german", "rows":300, "seed":7, "model":"lr"}"#;

fn german_300_config() -> SessionConfig {
    SessionConfig::from_json(&parse(GERMAN_300)).expect("valid config")
}

#[test]
fn http_answers_are_bit_identical_to_in_process_sessions() {
    let (server, addr) = start(ServeConfig {
        batch_window: Duration::from_millis(1),
        workers: 4,
        ..ServeConfig::default()
    });

    let created = request_once(addr, "POST", "/sessions", Some(GERMAN_300)).unwrap();
    assert_eq!(created.status, 201, "{}", created.body);
    let created_json = parse(&created.body);
    assert_eq!(created_json.get("rows").and_then(Json::as_f64), Some(300.0));

    // Same name again: conflict, not silent replacement.
    let dup = request_once(addr, "POST", "/sessions", Some(GERMAN_300)).unwrap();
    assert_eq!(dup.status, 409, "{}", dup.body);

    // The HTTP answer must match an in-process session built from the very
    // same config, field for field (timing excluded).
    let (reference, _rows) = build_session(&german_300_config()).unwrap();
    let mut conn = Conn::connect(addr).unwrap();
    for body in [
        r#"{"metric":"equal-opportunity"}"#,
        r#"{"metric":"statistical-parity", "k":2, "support":0.1}"#,
        r#"{"metric":"average-odds", "estimator":"first-order"}"#,
    ] {
        let over_http = conn
            .request("POST", "/sessions/german/explain", Some(body))
            .unwrap();
        assert_eq!(over_http.status, 200, "{}", over_http.body);
        let request = api::parse_explain_request(&parse(body), &default_request(), 1.0).unwrap();
        let in_process = reference.explain_batch(&[request]).pop().unwrap();
        let expected = format!("{}", api::explain_response_json(&in_process));
        assert_eq!(
            stripped(&over_http.body),
            stripped(&expected),
            "HTTP and in-process answers diverged for {body}"
        );
    }

    // Live stats reflect the traffic we just sent.
    let stats = request_once(addr, "GET", "/sessions/german/stats", None).unwrap();
    assert_eq!(stats.status, 200);
    let stats_json = parse(&stats.body);
    assert!(
        stats_json
            .get("requests_served")
            .and_then(Json::as_f64)
            .unwrap()
            >= 3.0
    );
    assert!(
        stats_json
            .get("batches_formed")
            .and_then(Json::as_f64)
            .unwrap()
            >= 1.0
    );
    assert_eq!(
        stats_json.get("name").and_then(Json::as_str),
        Some("german")
    );

    server.trigger_shutdown();
    server.join();
}

#[test]
fn concurrent_explains_coalesce_into_fewer_batches() {
    let (server, addr) = start(ServeConfig {
        // A wide window so all the spawned clients land inside it even on a
        // loaded CI box; correctness elsewhere never depends on this.
        batch_window: Duration::from_millis(200),
        workers: 6,
        ..ServeConfig::default()
    });
    let created = request_once(addr, "POST", "/sessions", Some(GERMAN_300)).unwrap();
    assert_eq!(created.status, 201, "{}", created.body);

    let bodies = [
        r#"{"metric":"statistical-parity"}"#,
        r#"{"metric":"equal-opportunity"}"#,
        r#"{"metric":"predictive-parity"}"#,
        r#"{"metric":"statistical-parity"}"#,
    ];
    let answers: Vec<(usize, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = bodies
            .iter()
            .enumerate()
            .map(|(i, body)| {
                scope.spawn(move || {
                    let response =
                        request_once(addr, "POST", "/sessions/german/explain", Some(body)).unwrap();
                    assert_eq!(response.status, 200, "{}", response.body);
                    (i, response.body)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every coalesced answer is bit-identical to a sequential in-process run
    // of the same request.
    let (reference, _rows) = build_session(&german_300_config()).unwrap();
    for (i, body) in &answers {
        let request =
            api::parse_explain_request(&parse(bodies[*i]), &default_request(), 1.0).unwrap();
        let expected = reference.explain_batch(&[request]).pop().unwrap();
        assert_eq!(
            stripped(body),
            stripped(&format!("{}", api::explain_response_json(&expected))),
            "batched answer {i} diverged from the sequential reference"
        );
    }

    let stats = parse(
        &request_once(addr, "GET", "/sessions/german/stats", None)
            .unwrap()
            .body,
    );
    let requests = stats.get("requests_served").and_then(Json::as_f64).unwrap();
    let batches = stats.get("batches_formed").and_then(Json::as_f64).unwrap();
    let max_batch = stats
        .get("max_batch_requests")
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(requests, 4.0);
    assert!(
        batches < requests,
        "4 concurrent requests must form fewer than 4 batches (got {batches})"
    );
    assert!(max_batch >= 2.0, "at least one batch must have coalesced");

    server.trigger_shutdown();
    server.join();
}

#[test]
fn csv_uploads_work_and_errors_carry_line_numbers() {
    let (server, addr) = start(ServeConfig {
        batch_window: Duration::ZERO,
        workers: 2,
        ..ServeConfig::default()
    });

    // A valid upload: round-trip a german sample through the CSV codec.
    let data = gopher_data::generators::german(200, 11);
    let mut csv = Vec::new();
    gopher_data::csv::write_csv(&data, &mut csv).unwrap();
    let csv = String::from_utf8(csv).unwrap();
    let upload = format!(
        "{}",
        Json::obj([
            ("name", Json::str("uploaded")),
            ("csv", Json::str(&csv)),
            ("label", Json::str("good_credit")),
            ("protected", Json::str("age>=45")),
            ("seed", Json::num(11.0)),
        ])
    );
    let created = request_once(addr, "POST", "/sessions", Some(&upload)).unwrap();
    assert_eq!(created.status, 201, "{}", created.body);
    assert_eq!(
        parse(&created.body).get("rows").and_then(Json::as_f64),
        Some(200.0)
    );
    let answer = request_once(addr, "POST", "/sessions/uploaded/explain", Some("{}")).unwrap();
    assert_eq!(answer.status, 200, "{}", answer.body);

    // A malformed row: the 400 names the offending line.
    let bad_csv = "age,job,good_credit\n31,clerk,1\n44,\"unterminated,0\n";
    let upload = format!(
        "{}",
        Json::obj([
            ("name", Json::str("bad")),
            ("csv", Json::str(bad_csv)),
            ("label", Json::str("good_credit")),
            ("protected", Json::str("age>=30")),
        ])
    );
    let rejected = request_once(addr, "POST", "/sessions", Some(&upload)).unwrap();
    assert_eq!(rejected.status, 400, "{}", rejected.body);
    let message = parse(&rejected.body)
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert!(
        message.contains("line 3"),
        "error must carry the line number: {message}"
    );

    server.trigger_shutdown();
    server.join();
}

#[test]
fn protocol_errors_map_to_the_right_statuses() {
    let (server, addr) = start(ServeConfig {
        batch_window: Duration::ZERO,
        workers: 2,
        max_body_bytes: 4096,
        ..ServeConfig::default()
    });

    // Unknown session: 404.
    let missing = request_once(addr, "POST", "/sessions/nope/explain", Some("{}")).unwrap();
    assert_eq!(missing.status, 404);
    let missing_stats = request_once(addr, "GET", "/sessions/nope/stats", None).unwrap();
    assert_eq!(missing_stats.status, 404);

    // Unknown route: 404; wrong method on a known root: 405.
    assert_eq!(
        request_once(addr, "GET", "/frob", None).unwrap().status,
        404
    );
    assert_eq!(
        request_once(addr, "PATCH", "/sessions", Some("{}"))
            .unwrap()
            .status,
        405
    );

    // Malformed JSON and unknown fields: 400.
    let bad = request_once(addr, "POST", "/sessions", Some("{not json")).unwrap();
    assert_eq!(bad.status, 400);
    let unknown = request_once(
        addr,
        "POST",
        "/sessions",
        Some(r#"{"name":"x", "generator":"german", "rowz":100}"#),
    )
    .unwrap();
    assert_eq!(unknown.status, 400, "{}", unknown.body);
    assert!(parse(&unknown.body)
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("rowz"));

    // A deeply nested body is a clean 400 from the hardened parser, not a
    // stack overflow in the worker.
    let mut deep = String::new();
    for _ in 0..1000 {
        deep.push('[');
    }
    let nested = request_once(addr, "POST", "/sessions", Some(&deep)).unwrap();
    assert_eq!(nested.status, 400, "{}", nested.body);
    assert!(parse(&nested.body)
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("nesting"));

    // A body past the configured bound: 413 before the body is read.
    let huge = "x".repeat(8192);
    let too_large = request_once(addr, "POST", "/sessions", Some(&huge)).unwrap();
    assert_eq!(too_large.status, 413, "{}", too_large.body);

    server.trigger_shutdown();
    server.join();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let (server, addr) = start(ServeConfig {
        batch_window: Duration::from_millis(150),
        workers: 4,
        ..ServeConfig::default()
    });
    let created = request_once(addr, "POST", "/sessions", Some(GERMAN_300)).unwrap();
    assert_eq!(created.status, 201, "{}", created.body);

    // Launch a request whose micro-batch window is still open when the
    // shutdown lands; it must be answered, not dropped.
    let in_flight = std::thread::spawn(move || {
        request_once(
            addr,
            "POST",
            "/sessions/german/explain",
            Some(r#"{"metric":"equal-opportunity", "support":0.02}"#),
        )
        .unwrap()
    });
    std::thread::sleep(Duration::from_millis(40));
    let ack = request_once(addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(ack.status, 200);

    let response = in_flight.join().unwrap();
    assert_eq!(
        response.status, 200,
        "in-flight request must drain through shutdown: {}",
        response.body
    );
    // Join must return promptly now that the drain is complete.
    server.join();
}

#[test]
fn update_endpoint_patches_the_session_and_matches_an_in_process_delta() {
    let (server, addr) = start(ServeConfig {
        batch_window: Duration::ZERO,
        workers: 2,
        ..ServeConfig::default()
    });
    let created = request_once(addr, "POST", "/sessions", Some(GERMAN_300)).unwrap();
    assert_eq!(created.status, 201, "{}", created.body);

    // Warm the structural tier so the update has artifacts to patch.
    let warm = request_once(
        addr,
        "POST",
        "/sessions/german/explain",
        Some(r#"{"metric":"statistical-parity"}"#),
    )
    .unwrap();
    assert_eq!(warm.status, 200, "{}", warm.body);

    let delta = r#"{"remove":[5], "add_rows":1, "seed":13}"#;
    let updated = request_once(addr, "POST", "/sessions/german/update", Some(delta)).unwrap();
    assert_eq!(updated.status, 200, "{}", updated.body);
    let updated_json = parse(&updated.body);
    assert_eq!(
        updated_json.get("rows_removed").and_then(Json::as_f64),
        Some(1.0)
    );
    assert_eq!(
        updated_json.get("rows_added").and_then(Json::as_f64),
        Some(1.0)
    );
    assert_eq!(
        updated_json.get("updates_applied").and_then(Json::as_f64),
        Some(1.0)
    );
    let survived = updated_json
        .get("artifacts_survived")
        .and_then(Json::as_f64)
        .unwrap();
    let invalidated = updated_json
        .get("artifacts_invalidated")
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(
        survived + invalidated,
        1.0,
        "the one warmed structure artifact must be accounted for"
    );

    // The post-update HTTP answer must be bit-identical to an in-process
    // session that applied the very same delta through the same spec.
    let config = german_300_config();
    let (mut reference, _rows) = build_session(&config).unwrap();
    let spec = gopher_serve::UpdateSpec::from_json(&parse(delta)).unwrap();
    let removed = spec.resolve_removals(reference.train_rows()).unwrap();
    let added = spec.build_added(&config).unwrap();
    reference.update(&removed, added.as_ref());

    let body = r#"{"metric":"equal-opportunity"}"#;
    let over_http = request_once(addr, "POST", "/sessions/german/explain", Some(body)).unwrap();
    assert_eq!(over_http.status, 200, "{}", over_http.body);
    let request = api::parse_explain_request(&parse(body), &default_request(), 1.0).unwrap();
    let in_process = reference.explain_batch(&[request]).pop().unwrap();
    assert_eq!(
        stripped(&over_http.body),
        stripped(&format!("{}", api::explain_response_json(&in_process))),
        "post-update HTTP answer diverged from the in-process delta"
    );

    // Live stats reflect the applied update.
    let stats = parse(
        &request_once(addr, "GET", "/sessions/german/stats", None)
            .unwrap()
            .body,
    );
    assert_eq!(
        stats.get("updates_applied").and_then(Json::as_f64),
        Some(1.0)
    );

    server.trigger_shutdown();
    server.join();
}

#[test]
fn update_endpoint_rejects_bad_deltas_with_400s() {
    let (server, addr) = start(ServeConfig {
        batch_window: Duration::ZERO,
        workers: 2,
        ..ServeConfig::default()
    });
    let created = request_once(addr, "POST", "/sessions", Some(GERMAN_300)).unwrap();
    assert_eq!(created.status, 201, "{}", created.body);

    let reject = |body: &str, needle: &str| {
        let response = request_once(addr, "POST", "/sessions/german/update", Some(body)).unwrap();
        assert_eq!(response.status, 400, "{body} -> {}", response.body);
        let message = parse(&response.body)
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        assert!(
            message.contains(needle),
            "error for {body} must mention {needle:?}: {message}"
        );
    };

    // Unknown session is a 404, not a 400.
    let missing = request_once(addr, "POST", "/sessions/nope/update", Some("{}")).unwrap();
    assert_eq!(missing.status, 404);

    reject("{}", "empty");
    reject(r#"{"remove":[1], "frobnicate":2}"#, "frobnicate");
    // German has 300 rows -> 210 train rows; index 5000 is out of range.
    reject(r#"{"remove":[5000]}"#, "out of range");
    reject(r#"{"remove":[3, 3]}"#, "twice");
    // This session was built from a generator, so CSV deltas don't apply.
    reject(r#"{"add_csv":"a,b\n1,2\n"}"#, "CSV");
    // add_rows and add_csv are mutually exclusive delta sources.
    reject(r#"{"add_rows":2, "add_csv":"a,b\n1,2\n"}"#, "add_csv");

    // Nothing above may have mutated the session.
    let stats = parse(
        &request_once(addr, "GET", "/sessions/german/stats", None)
            .unwrap()
            .body,
    );
    assert_eq!(
        stats.get("updates_applied").and_then(Json::as_f64),
        Some(0.0)
    );

    server.trigger_shutdown();
    server.join();
}

#[test]
fn registry_eviction_under_live_traffic_never_panics() {
    let (server, addr) = start(ServeConfig {
        batch_window: Duration::from_millis(1),
        workers: 6,
        session_cap: 2,
        ..ServeConfig::default()
    });
    let created = request_once(addr, "POST", "/sessions", Some(GERMAN_300)).unwrap();
    assert_eq!(created.status, 201, "{}", created.body);

    std::thread::scope(|scope| {
        // Hammer the first session while two more sessions roll it out of
        // the LRU registry. Every answer must be a clean 200 (the Arc keeps
        // an evicted session alive) or 404 (looked up after eviction).
        let hammer: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(move || {
                    for _ in 0..6 {
                        let response = request_once(
                            addr,
                            "POST",
                            "/sessions/german/explain",
                            Some(r#"{"metric":"statistical-parity"}"#),
                        )
                        .unwrap();
                        assert!(
                            response.status == 200 || response.status == 404,
                            "got {}: {}",
                            response.status,
                            response.body
                        );
                    }
                })
            })
            .collect();
        for (i, name) in ["second", "third"].iter().enumerate() {
            let body = format!(
                r#"{{"name":"{name}", "generator":"german", "rows":200, "seed":{}}}"#,
                10 + i
            );
            let created = request_once(addr, "POST", "/sessions", Some(&body)).unwrap();
            assert_eq!(created.status, 201, "{}", created.body);
        }
        for h in hammer {
            h.join().unwrap();
        }
    });

    // Cap 2 with 3 sessions created: german was the LRU casualty... unless
    // the hammer re-bumped it; either way the registry holds exactly 2 and
    // recorded the eviction.
    let listing = parse(&request_once(addr, "GET", "/sessions", None).unwrap().body);
    assert_eq!(
        listing
            .get("sessions")
            .and_then(Json::as_arr)
            .unwrap()
            .len(),
        2
    );
    assert!(listing.get("evictions").and_then(Json::as_f64).unwrap() >= 1.0);

    server.trigger_shutdown();
    server.join();
}
