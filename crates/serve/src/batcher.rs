//! The micro-batcher: coalesces concurrent explain calls into one
//! `explain_batch`.
//!
//! The first caller to arrive at an idle batcher becomes the **leader**: it
//! opens a collection window, sleeps through it, then runs one
//! [`AnySession::explain_batch`] over its own request plus every request
//! that joined while it slept. Followers park on a channel and receive their
//! response from the leader. The win is structural, not just syscall
//! amortization: requests sharing a lattice shape resolve against one sweep
//! (and one structure-cache entry) instead of racing to build their own,
//! and the sweep's scorer fan-out spans the whole batch.
//!
//! Edge semantics:
//!
//! * window `0` disables coalescing — every call runs solo (the control arm
//!   of the `serve_qps` bench);
//! * a full batch (`max_batch`) stops admitting followers; latecomers run
//!   solo rather than waiting a second window;
//! * if the leader dies mid-batch (a panic in the sweep), its followers'
//!   channels disconnect and each follower gets an `Err` — a `500`, never a
//!   hang.

use crate::registry::AnySession;
use gopher_core::{ExplainRequest, ExplainResponse};
use gopher_par::{lock_recover, read_recover};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Mutex, RwLock};
use std::time::Duration;

/// A follower's seat in a forming batch.
struct Waiter {
    request: ExplainRequest,
    reply: Sender<ExplainResponse>,
}

/// A batch being collected by a leader (the leader's own request is not in
/// here — it holds it on its stack).
struct Forming {
    waiters: Vec<Waiter>,
}

/// Per-session request coalescer. See the module docs for the protocol.
pub struct Batcher {
    window: Duration,
    max_batch: usize,
    /// `Some` while a leader is collecting.
    forming: Mutex<Option<Forming>>,
}

impl Batcher {
    /// A batcher with the given collection window and batch-size cap.
    /// `max_batch` counts the leader, so it is clamped to at least 2 — a
    /// cap of 1 is just `window == 0` with extra steps.
    pub fn new(window: Duration, max_batch: usize) -> Self {
        Self {
            window,
            max_batch: max_batch.max(2),
            forming: Mutex::new(None),
        }
    }

    /// The configured collection window.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Answers one request, possibly as part of a coalesced batch. `Err`
    /// only when this caller was a follower and its leader died before
    /// delivering (the HTTP layer's `500`).
    ///
    /// The session's read lock is taken only when a batch actually runs —
    /// a leader sleeping through its collection window holds no lock, so a
    /// concurrent `update` (the write side) interleaves with forming
    /// batches instead of stalling behind them.
    pub fn explain(
        &self,
        session: &RwLock<AnySession>,
        request: ExplainRequest,
    ) -> Result<ExplainResponse, String> {
        if self.window.is_zero() {
            return Ok(solo(session, request));
        }
        {
            let mut forming = lock_recover(&self.forming);
            match forming.as_mut() {
                None => {
                    // Idle: become the leader and start collecting.
                    *forming = Some(Forming {
                        waiters: Vec::new(),
                    });
                }
                Some(batch) if batch.waiters.len() + 1 < self.max_batch => {
                    // A leader is collecting and there is room: join it.
                    let (tx, rx) = channel();
                    batch.waiters.push(Waiter { request, reply: tx });
                    drop(forming);
                    return rx
                        .recv()
                        .map_err(|_| "batch leader failed before answering".to_string());
                }
                Some(_) => {
                    // Batch is full; don't queue behind a second window.
                    drop(forming);
                    return Ok(solo(session, request));
                }
            }
        }
        // Leader path. Sleep through the window, then take whatever joined.
        std::thread::sleep(self.window);
        let waiters = lock_recover(&self.forming)
            .take()
            .map(|f| f.waiters)
            .unwrap_or_default();

        let mut requests = Vec::with_capacity(1 + waiters.len());
        requests.push(request);
        let mut replies = Vec::with_capacity(waiters.len());
        for w in waiters {
            requests.push(w.request);
            replies.push(w.reply);
        }
        let mut responses = read_recover(session).explain_batch(&requests);
        // Deliver follower responses in join order; responses[0] is ours.
        // A disconnected receiver (client gave up) is fine to ignore.
        let followers: Vec<ExplainResponse> = responses.drain(1..).collect();
        for (reply, response) in replies.into_iter().zip(followers) {
            let _ = reply.send(response);
        }
        Ok(responses
            .pop()
            .expect("explain_batch returns one response per request"))
    }
}

fn solo(session: &RwLock<AnySession>, request: ExplainRequest) -> ExplainResponse {
    read_recover(session)
        .explain_batch(std::slice::from_ref(&request))
        .pop()
        .expect("explain_batch returns one response per request")
}
