//! Named explain sessions and the LRU-bounded registry that owns them.
//!
//! A session upload (`POST /sessions`) describes a dataset — one of the
//! built-in generators or an inline CSV — plus the model family and the
//! session knobs. [`build_session`] turns that into an [`AnySession`]: the
//! model-family-erased wrapper the HTTP layer serves. The
//! [`SessionRegistry`] keeps at most `cap` of them, evicting the least
//! recently *used* (looked up) one; entries are `Arc`-shared, so eviction
//! only drops the registry's reference — queries already holding the
//! session finish unharmed.

use crate::batcher::Batcher;
use gopher_core::{
    ExplainRequest, ExplainResponse, ExplainSession, SessionBuilder, SessionStats, UpdateReport,
};
use gopher_data::csv::{parse_protected_spec, read_csv_infer};
use gopher_data::generators::{adult, german, sqf};
use gopher_data::Dataset;
use gopher_influence::ModelFamily;
use gopher_json::Json;
use gopher_models::{Forest, ForestConfig, LinearSvm, LogisticRegression, Mlp};
use gopher_par::lock_recover;
use gopher_prng::Rng;
use std::io::Cursor;
use std::sync::{Arc, Mutex, RwLock};

/// An [`ExplainSession`] with the model family erased: the registry stores
/// whatever family the upload asked for behind one type.
pub enum AnySession {
    /// Logistic-regression session (`"model": "lr"`).
    Lr(ExplainSession<LogisticRegression>),
    /// Linear-SVM session (`"model": "svm"`).
    Svm(ExplainSession<LinearSvm>),
    /// One-hidden-layer MLP session (`"model": "mlp"`).
    Mlp(ExplainSession<Mlp>),
    /// Bagged-tree forest session (`"model": "forest"`), explained through
    /// the unlearning backend instead of influence functions.
    Forest(ExplainSession<Forest>),
}

impl AnySession {
    /// Answers a batch of requests; the whole point of the serving daemon is
    /// funneling concurrent HTTP callers into as few of these as possible.
    pub fn explain_batch(&self, requests: &[ExplainRequest]) -> Vec<ExplainResponse> {
        match self {
            Self::Lr(s) => s.explain_batch(requests),
            Self::Svm(s) => s.explain_batch(requests),
            Self::Mlp(s) => s.explain_batch(requests),
            Self::Forest(s) => s.explain_batch(requests),
        }
    }

    /// Cache and traffic counters, straight from the underlying session.
    pub fn stats(&self) -> SessionStats {
        match self {
            Self::Lr(s) => s.stats(),
            Self::Svm(s) => s.stats(),
            Self::Mlp(s) => s.stats(),
            Self::Forest(s) => s.stats(),
        }
    }

    /// Held-out accuracy of the session's model.
    pub fn accuracy(&self) -> f64 {
        match self {
            Self::Lr(s) => s.accuracy(),
            Self::Svm(s) => s.accuracy(),
            Self::Mlp(s) => s.accuracy(),
            Self::Forest(s) => s.accuracy(),
        }
    }

    /// Rows in the session's current training set — the universe `update`'s
    /// removal indices address.
    pub fn train_rows(&self) -> usize {
        match self {
            Self::Lr(s) => s.train_raw().n_rows(),
            Self::Svm(s) => s.train_raw().n_rows(),
            Self::Mlp(s) => s.train_raw().n_rows(),
            Self::Forest(s) => s.train_raw().n_rows(),
        }
    }

    /// Whether `added` can be concatenated onto the session's training data
    /// (same schema). Checked before `update` so a mismatched upload is a
    /// `400`, not a panic.
    pub fn accepts(&self, added: &Dataset) -> bool {
        let schema = match self {
            Self::Lr(s) => s.train_raw().schema(),
            Self::Svm(s) => s.train_raw().schema(),
            Self::Mlp(s) => s.train_raw().schema(),
            Self::Forest(s) => s.train_raw().schema(),
        };
        schema == added.schema()
    }

    /// Applies a training-data delta to the underlying session (see
    /// [`ExplainSession::update`]): removal indices address the current
    /// training set, `added` is appended (`None` = remove-only).
    pub fn update(&mut self, removed: &[usize], added: Option<&Dataset>) -> UpdateReport {
        fn go<M: ModelFamily>(
            s: &mut ExplainSession<M>,
            removed: &[usize],
            added: Option<&Dataset>,
        ) -> UpdateReport {
            match added {
                Some(added) => s.update(removed, added),
                None => {
                    let empty = s.train_raw().select_rows(&[]);
                    s.update(removed, &empty)
                }
            }
        }
        match self {
            Self::Lr(s) => go(s, removed, added),
            Self::Svm(s) => go(s, removed, added),
            Self::Mlp(s) => go(s, removed, added),
            Self::Forest(s) => go(s, removed, added),
        }
    }
}

/// Where a session's dataset comes from.
#[derive(Debug, Clone)]
pub enum DataSource {
    /// A built-in generator (`german` / `adult` / `sqf`) at a row count.
    Generator {
        /// Generator name.
        name: String,
        /// Rows to generate.
        rows: usize,
    },
    /// An inline CSV upload, schema inferred.
    Csv {
        /// The raw CSV text.
        text: String,
        /// Header name of the 0/1 label column.
        label: String,
        /// `col=level` / `col>=cutoff` privileged-group rule.
        protected: String,
    },
}

/// Everything `POST /sessions` may specify, with the CLI's defaults.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Registry key, `[A-Za-z0-9_-]{1,64}`.
    pub name: String,
    /// Dataset source.
    pub source: DataSource,
    /// Model family: `lr` | `svm` | `mlp` | `forest`.
    pub model: String,
    /// RNG seed for generation, split, and training.
    pub seed: u64,
    /// Held-out fraction.
    pub test_fraction: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Worker threads (0 = auto).
    pub threads: usize,
    /// Sampled-support prefilter rows (0 = off).
    pub prefilter_sample: usize,
    /// Scored-sweep cache cap override.
    pub sweep_cache_cap: Option<usize>,
    /// Structure cache cap override.
    pub structure_cache_cap: Option<usize>,
    /// Coverage cache cap override.
    pub coverage_cache_cap: Option<usize>,
}

/// The JSON fields `POST /sessions` understands. Unknown keys are hard
/// errors — a typo'd knob must not silently fall back to a default.
pub const SESSION_FIELDS: [&str; 15] = [
    "name",
    "generator",
    "rows",
    "csv",
    "label",
    "protected",
    "model",
    "seed",
    "test_fraction",
    "l2",
    "threads",
    "prefilter_sample",
    "sweep_cache_cap",
    "structure_cache_cap",
    "coverage_cache_cap",
];

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

impl SessionConfig {
    /// Parses a session upload from its JSON body. Unknown fields, missing
    /// required fields, and out-of-range values are all errors (the HTTP
    /// layer turns them into `400`s).
    pub fn from_json(body: &Json) -> Result<SessionConfig, String> {
        let Json::Obj(fields) = body else {
            return Err("session config must be a JSON object".into());
        };
        for key in fields.keys() {
            if !SESSION_FIELDS.contains(&key.as_str()) {
                return Err(format!(
                    "unknown field {key:?} (expected one of: {})",
                    SESSION_FIELDS.join(", ")
                ));
            }
        }
        let get_s = |key: &str| -> Result<Option<&str>, String> {
            match body.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_str()
                    .map(Some)
                    .ok_or_else(|| format!("field {key:?} must be a string")),
            }
        };
        let get_f = |key: &str| -> Result<Option<f64>, String> {
            match body.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| format!("field {key:?} must be a number")),
            }
        };
        let get_count = |key: &str| -> Result<Option<usize>, String> {
            match get_f(key)? {
                None => Ok(None),
                Some(v) if v >= 0.0 && v.fract() == 0.0 => Ok(Some(v as usize)),
                Some(v) => Err(format!(
                    "field {key:?} must be a non-negative integer, got {v}"
                )),
            }
        };

        let name = get_s("name")?
            .ok_or_else(|| "missing required field \"name\"".to_string())?
            .to_string();
        if !valid_name(&name) {
            return Err(format!(
                "invalid session name {name:?}: use 1-64 characters from [A-Za-z0-9_-]"
            ));
        }

        let csv = get_s("csv")?.map(str::to_string);
        let source = match csv {
            Some(text) => {
                for key in ["generator", "rows"] {
                    if body.get(key).is_some() {
                        return Err(format!("field {key:?} conflicts with \"csv\""));
                    }
                }
                let label = get_s("label")?
                    .ok_or_else(|| "\"csv\" requires \"label\"".to_string())?
                    .to_string();
                let protected = get_s("protected")?
                    .ok_or_else(|| "\"csv\" requires \"protected\"".to_string())?
                    .to_string();
                DataSource::Csv {
                    text,
                    label,
                    protected,
                }
            }
            None => {
                for key in ["label", "protected"] {
                    if body.get(key).is_some() {
                        return Err(format!("field {key:?} requires \"csv\""));
                    }
                }
                let generator = get_s("generator")?.unwrap_or("german").to_string();
                if !["german", "adult", "sqf"].contains(&generator.as_str()) {
                    return Err(format!("unknown generator {generator:?}"));
                }
                let rows = get_count("rows")?.unwrap_or(1000);
                if rows < 20 {
                    return Err(format!("\"rows\" must be at least 20, got {rows}"));
                }
                DataSource::Generator {
                    name: generator,
                    rows,
                }
            }
        };

        let model = get_s("model")?.unwrap_or("lr").to_string();
        if !["lr", "logistic", "svm", "mlp", "forest"].contains(&model.as_str()) {
            return Err(format!(
                "unknown model {model:?} (expected lr | svm | mlp | forest)"
            ));
        }
        let seed = get_count("seed")?.unwrap_or(42) as u64;
        if seed > (1 << 53) {
            return Err("\"seed\" must be at most 2^53".into());
        }
        let test_fraction = get_f("test_fraction")?.unwrap_or(0.3);
        if !(test_fraction > 0.0 && test_fraction < 1.0) {
            return Err(format!(
                "\"test_fraction\" must be in (0, 1), got {test_fraction}"
            ));
        }
        let l2 = get_f("l2")?.unwrap_or(1e-3);
        if !(l2.is_finite() && l2 >= 0.0) {
            return Err(format!(
                "\"l2\" must be a finite non-negative number, got {l2}"
            ));
        }
        Ok(SessionConfig {
            name,
            source,
            model,
            seed,
            test_fraction,
            l2,
            threads: get_count("threads")?.unwrap_or(0),
            prefilter_sample: get_count("prefilter_sample")?.unwrap_or(0),
            sweep_cache_cap: get_count("sweep_cache_cap")?,
            structure_cache_cap: get_count("structure_cache_cap")?,
            coverage_cache_cap: get_count("coverage_cache_cap")?,
        })
    }

    /// Human-readable description of the data source, for listings.
    pub fn source_text(&self) -> String {
        match &self.source {
            DataSource::Generator { name, rows } => format!("{name} ({rows} rows)"),
            DataSource::Csv { text, .. } => format!("csv upload ({} bytes)", text.len()),
        }
    }
}

/// The JSON fields `POST /sessions/{name}/update` understands. Unknown keys
/// are hard errors, same policy as session creation.
pub const UPDATE_FIELDS: [&str; 4] = ["remove", "add_rows", "add_csv", "seed"];

/// Which training rows a delta removes.
#[derive(Debug, Clone)]
pub enum RemoveSpec {
    /// Explicit training-row indices.
    Indices(Vec<usize>),
    /// A count of seeded-random distinct rows, picked server-side.
    Random(usize),
}

/// A parsed `POST /sessions/{name}/update` body: what to remove from and
/// append to the session's training set.
#[derive(Debug, Clone)]
pub struct UpdateSpec {
    /// Rows to remove.
    pub remove: RemoveSpec,
    /// Rows to generate and append (generator-backed sessions only).
    pub add_rows: usize,
    /// Inline CSV rows to append (CSV-backed sessions only; parsed with the
    /// session's original label/protected spec).
    pub add_csv: Option<String>,
    /// Seed for the random removal pick and the generated rows.
    pub seed: u64,
}

impl UpdateSpec {
    /// Parses an update body. The delta must do *something*: all-empty
    /// bodies are rejected rather than counted as a no-op update.
    pub fn from_json(body: &Json) -> Result<UpdateSpec, String> {
        let Json::Obj(fields) = body else {
            return Err("update body must be a JSON object".into());
        };
        for key in fields.keys() {
            if !UPDATE_FIELDS.contains(&key.as_str()) {
                return Err(format!(
                    "unknown field {key:?} (expected one of: {})",
                    UPDATE_FIELDS.join(", ")
                ));
            }
        }
        let as_count = |v: &Json, key: &str| -> Result<usize, String> {
            match v.as_f64() {
                Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(n as usize),
                _ => Err(format!("field {key:?} must be a non-negative integer")),
            }
        };
        let remove = match body.get("remove") {
            None => RemoveSpec::Random(0),
            Some(Json::Arr(items)) => {
                let mut indices = Vec::with_capacity(items.len());
                for item in items {
                    indices.push(as_count(item, "remove")?);
                }
                RemoveSpec::Indices(indices)
            }
            Some(other) => RemoveSpec::Random(as_count(other, "remove")?),
        };
        let add_rows = match body.get("add_rows") {
            None => 0,
            Some(v) => as_count(v, "add_rows")?,
        };
        let add_csv = match body.get("add_csv") {
            None => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| "field \"add_csv\" must be a string".to_string())?
                    .to_string(),
            ),
        };
        let seed = match body.get("seed") {
            None => 1,
            Some(v) => as_count(v, "seed")? as u64,
        };
        if add_rows > 0 && add_csv.is_some() {
            return Err("\"add_rows\" conflicts with \"add_csv\"".into());
        }
        let removes_nothing = matches!(&remove, RemoveSpec::Random(0))
            || matches!(&remove, RemoveSpec::Indices(v) if v.is_empty());
        if removes_nothing && add_rows == 0 && add_csv.is_none() {
            return Err("empty delta: set \"remove\", \"add_rows\", or \"add_csv\"".into());
        }
        Ok(UpdateSpec {
            remove,
            add_rows,
            add_csv,
            seed,
        })
    }

    /// Resolves the removal spec against the current training-row count:
    /// explicit indices are bounds- and duplicate-checked, a random count is
    /// drawn (distinct, seeded) server-side. Errors are `400`s.
    pub fn resolve_removals(&self, n_rows: usize) -> Result<Vec<usize>, String> {
        match &self.remove {
            RemoveSpec::Indices(indices) => {
                let mut seen = vec![false; n_rows];
                for &idx in indices {
                    if idx >= n_rows {
                        return Err(format!(
                            "remove index {idx} out of range (training set has {n_rows} rows)"
                        ));
                    }
                    if seen[idx] {
                        return Err(format!("remove index {idx} listed twice"));
                    }
                    seen[idx] = true;
                }
                Ok(indices.clone())
            }
            RemoveSpec::Random(count) => {
                if *count >= n_rows {
                    return Err(format!("cannot remove {count} of {n_rows} training rows"));
                }
                Ok(Rng::new(self.seed).sample_indices(n_rows, *count))
            }
        }
    }

    /// Builds the rows this delta appends, according to the session's
    /// original data source: generated rows for generator sessions, parsed
    /// CSV rows (same label/protected spec) for CSV sessions. `None` for a
    /// remove-only delta.
    pub fn build_added(&self, config: &SessionConfig) -> Result<Option<Dataset>, String> {
        if let Some(text) = &self.add_csv {
            let DataSource::Csv {
                label, protected, ..
            } = &config.source
            else {
                return Err(
                    "\"add_csv\" requires a CSV-backed session (use \"add_rows\" \
                            for generator-backed sessions)"
                        .into(),
                );
            };
            let (column, rule) = parse_protected_spec(protected)?;
            let added = read_csv_infer(Cursor::new(text.as_bytes()), label, column, &rule)
                .map_err(|e| e.to_string())?;
            return Ok(Some(added));
        }
        if self.add_rows == 0 {
            return Ok(None);
        }
        let DataSource::Generator { name, .. } = &config.source else {
            return Err(
                "\"add_rows\" requires a generator-backed session (use \"add_csv\" \
                        for CSV-backed sessions)"
                    .into(),
            );
        };
        let generate = match name.as_str() {
            "german" => german,
            "adult" => adult,
            "sqf" => sqf,
            other => return Err(format!("unknown generator {other:?}")),
        };
        // A seed offset keeps the delta rows distinct from the session's
        // original draw even when the caller reuses the session seed.
        Ok(Some(generate(self.add_rows, self.seed ^ 0x9e37_79b9)))
    }
}

/// Builds the dataset a config describes. CSV errors keep their line numbers
/// (`csv parse error at line N: …`) so a bad upload turns into an actionable
/// `400`.
fn load_data(config: &SessionConfig) -> Result<Dataset, String> {
    match &config.source {
        DataSource::Generator { name, rows } => {
            let generate = match name.as_str() {
                "german" => german,
                "adult" => adult,
                "sqf" => sqf,
                other => return Err(format!("unknown generator {other:?}")),
            };
            Ok(generate(*rows, config.seed))
        }
        DataSource::Csv {
            text,
            label,
            protected,
        } => {
            let (column, rule) = parse_protected_spec(protected)?;
            read_csv_infer(Cursor::new(text.as_bytes()), label, column, &rule)
                .map_err(|e| e.to_string())
        }
    }
}

/// Trains the configured model and wraps it in an [`AnySession`]. Returns
/// the session plus the dataset's row count. Mirrors the `gopher` CLI's
/// session construction exactly (same seed discipline, same split), so a
/// served session is bit-identical to `gopher query` on the same knobs.
pub fn build_session(config: &SessionConfig) -> Result<(AnySession, usize), String> {
    let data = load_data(config)?;
    let rows = data.n_rows();
    let mut rng = Rng::new(config.seed);
    let (train, test) = data.train_test_split(config.test_fraction, &mut rng);
    if train.n_rows() == 0 || test.n_rows() == 0 {
        return Err(format!(
            "{} rows with test_fraction {} leaves an empty split ({} train / {} test)",
            rows,
            config.test_fraction,
            train.n_rows(),
            test.n_rows()
        ));
    }
    let mut builder = SessionBuilder::new()
        .threads(config.threads)
        .prefilter_sample(config.prefilter_sample);
    if let Some(cap) = config.sweep_cache_cap {
        builder = builder.sweep_cache_cap(cap);
    }
    if let Some(cap) = config.structure_cache_cap {
        builder = builder.structure_cache_cap(cap);
    }
    if let Some(cap) = config.coverage_cache_cap {
        builder = builder.coverage_cache_cap(cap);
    }
    let l2 = config.l2;
    let session = match config.model.as_str() {
        "lr" | "logistic" => {
            AnySession::Lr(builder.fit(|n| LogisticRegression::new(n, l2), &train, &test))
        }
        "svm" => AnySession::Svm(builder.fit(|n| LinearSvm::new(n, l2), &train, &test)),
        "mlp" => {
            let mut model_rng = rng.fork();
            AnySession::Mlp(builder.fit(|n| Mlp::new(n, 10, l2, &mut model_rng), &train, &test))
        }
        "forest" => {
            let forest_config = ForestConfig {
                seed: config.seed,
                ..ForestConfig::default()
            };
            AnySession::Forest(builder.fit(
                |n| Forest::new(n, forest_config.clone()),
                &train,
                &test,
            ))
        }
        other => return Err(format!("unknown model {other:?}")),
    };
    Ok((session, rows))
}

/// One registered session: the erased session, its per-session
/// micro-batcher, and the listing metadata.
///
/// The session sits behind an `RwLock` so `POST .../update` can take `&mut`
/// while every read path (explain, stats, listings) shares read guards.
/// Queries hold the read lock only for the duration of one batch; an update
/// waits for in-flight batches, applies, and the next query sees the new
/// data.
pub struct SessionEntry {
    /// Registry key.
    pub name: String,
    /// Model family (`lr` / `svm` / `mlp` / `forest`).
    pub model: String,
    /// Data-source description, e.g. `german (1000 rows)`.
    pub source: String,
    /// Dataset rows (before the train/test split).
    pub rows: usize,
    /// The upload that built this session; `POST .../update` re-reads it to
    /// generate delta rows (same generator, or the CSV's label/protected
    /// spec for `add_csv`).
    pub config: SessionConfig,
    /// The session itself (write-locked only by updates).
    pub session: RwLock<AnySession>,
    /// Coalesces concurrent explain calls against this session.
    pub batcher: Batcher,
}

struct Inner {
    /// Most recently used at the back.
    entries: Vec<(String, Arc<SessionEntry>)>,
    evictions: u64,
}

/// LRU-bounded map from session name to [`SessionEntry`].
pub struct SessionRegistry {
    cap: usize,
    inner: Mutex<Inner>,
}

impl SessionRegistry {
    /// A registry retaining at most `cap` sessions (`cap` is clamped to at
    /// least 1 — a registry that can hold nothing serves nothing).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                evictions: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        lock_recover(&self.inner)
    }

    /// Registers a session. `Err` on a name collision (the HTTP layer's
    /// `409`); past the cap the least recently used entry is dropped — any
    /// in-flight queries on it keep their `Arc` and finish normally.
    pub fn insert(&self, entry: Arc<SessionEntry>) -> Result<(), String> {
        let mut inner = self.lock();
        if inner.entries.iter().any(|(n, _)| *n == entry.name) {
            return Err(format!("session {:?} already exists", entry.name));
        }
        inner.entries.push((entry.name.clone(), entry));
        while inner.entries.len() > self.cap {
            inner.entries.remove(0);
            inner.evictions += 1;
        }
        Ok(())
    }

    /// Looks a session up, marking it most recently used.
    pub fn get(&self, name: &str) -> Option<Arc<SessionEntry>> {
        let mut inner = self.lock();
        let idx = inner.entries.iter().position(|(n, _)| n == name)?;
        let entry = inner.entries.remove(idx);
        let found = entry.1.clone();
        inner.entries.push(entry);
        Some(found)
    }

    /// Drops a session by name; `false` if it was not registered.
    pub fn remove(&self, name: &str) -> bool {
        let mut inner = self.lock();
        let before = inner.entries.len();
        inner.entries.retain(|(n, _)| n != name);
        inner.entries.len() < before
    }

    /// Registered session count.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries in LRU order (least recently used first).
    pub fn entries(&self) -> Vec<Arc<SessionEntry>> {
        self.lock().entries.iter().map(|(_, e)| e.clone()).collect()
    }

    /// Sessions evicted to respect the cap so far.
    pub fn evictions(&self) -> u64 {
        self.lock().evictions
    }

    /// The retention cap.
    pub fn cap(&self) -> usize {
        self.cap
    }
}
