//! Signal wiring for graceful shutdown, without a `libc` dependency.
//!
//! The handler does the only async-signal-safe thing it can: flip one
//! atomic. The CLI's serve loop polls [`signalled`] alongside the server's
//! own shutdown flag, so `ctrl-c` (SIGINT) and `SIGTERM` both drain
//! in-flight batches instead of killing them mid-sweep.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT or SIGTERM has arrived since [`install`].
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::Relaxed)
}

/// Installs the flag-setting handler for SIGINT and SIGTERM. Idempotent.
#[cfg(unix)]
pub fn install() {
    // SAFETY: runs in signal context, so the body must be async-signal-safe.
    // A relaxed store to a static atomic is: no allocation, no locks, no
    // reentrancy into non-reentrant libc.
    unsafe extern "C" fn handler(_signum: i32) {
        SIGNALLED.store(true, Ordering::Relaxed);
    }
    extern "C" {
        /// POSIX `signal(2)`; the raw prototype keeps this crate free of
        /// external crates (the symbol is in every libc the workspace
        /// targets).
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let f: unsafe extern "C" fn(i32) = handler;
    // SAFETY: `signal` is called with valid signal numbers and a function
    // pointer of the exact prototype POSIX expects; `handler` itself is
    // async-signal-safe (see above).
    unsafe {
        signal(SIGINT, f as usize);
        signal(SIGTERM, f as usize);
    }
}

/// No-op off Unix: the serve loop still honors `POST /shutdown`.
#[cfg(not(unix))]
pub fn install() {}
