//! JSON wire codecs for explanation serving.
//!
//! One vocabulary, two transports: the `gopher query` subcommand and the
//! HTTP daemon both parse request objects and render responses through
//! these functions, so a request body that works against `--requests` works
//! verbatim against `POST /sessions/{name}/explain`, and the response
//! shapes match field for field.

use gopher_core::{ExplainRequest, ExplainResponse, SessionStats, UpdateReport};
use gopher_fairness::FairnessMetric;
use gopher_influence::{BiasEval, Estimator};
use gopher_json::Json;

/// Parses a fairness-metric name (long or short form).
pub fn parse_metric(name: &str) -> Result<FairnessMetric, String> {
    match name {
        "statistical-parity" | "spd" => Ok(FairnessMetric::StatisticalParity),
        "equal-opportunity" | "eo" => Ok(FairnessMetric::EqualOpportunity),
        "predictive-parity" | "pp" => Ok(FairnessMetric::PredictiveParity),
        "average-odds" | "ao" => Ok(FairnessMetric::AverageOdds),
        other => Err(format!("unknown metric `{other}`")),
    }
}

/// Parses an estimator name; `learning_rate` feeds the one-step-GD variant.
pub fn parse_estimator(name: &str, learning_rate: f64) -> Result<Estimator, String> {
    match name {
        "first-order" | "fo" => Ok(Estimator::FirstOrder),
        "second-order" | "so" => Ok(Estimator::SecondOrder),
        "newton" => Ok(Estimator::NewtonStep),
        "one-step-gd" | "gd" => Ok(Estimator::OneStepGd { learning_rate }),
        other => Err(format!("unknown estimator `{other}`")),
    }
}

/// Parses a bias-evaluation mode name.
pub fn parse_bias_eval(name: &str) -> Result<BiasEval, String> {
    match name {
        "chain-rule" => Ok(BiasEval::ChainRule),
        "re-eval-smooth" => Ok(BiasEval::ReEvalSmooth),
        "re-eval-hard" => Ok(BiasEval::ReEvalHard),
        other => Err(format!("unknown bias_eval `{other}`")),
    }
}

/// Wire name of an estimator (inverse of [`parse_estimator`]).
pub fn estimator_name(e: Estimator) -> &'static str {
    match e {
        Estimator::FirstOrder => "first-order",
        Estimator::SecondOrder => "second-order",
        Estimator::NewtonStep => "newton",
        Estimator::OneStepGd { .. } => "one-step-gd",
    }
}

/// The request-object fields the explain endpoints understand.
pub const REQUEST_FIELDS: [&str; 9] = [
    "metric",
    "k",
    "estimator",
    "learning_rate",
    "support",
    "max_predicates",
    "containment",
    "ground_truth",
    "bias_eval",
];

/// Builds one [`ExplainRequest`] from a JSON object, falling back to `base`
/// for omitted fields (`default_learning_rate` feeds an estimator chosen by
/// `base` when the object sets neither). Unknown keys and mistyped values
/// are hard errors — a serving endpoint must not silently answer with
/// defaults when the caller's parameter was dropped.
pub fn parse_explain_request(
    item: &Json,
    base: &ExplainRequest,
    default_learning_rate: f64,
) -> Result<ExplainRequest, String> {
    let Json::Obj(fields) = item else {
        return Err("must be a JSON object".into());
    };
    for key in fields.keys() {
        if !REQUEST_FIELDS.contains(&key.as_str()) {
            return Err(format!(
                "unknown field {key:?} (expected one of: {})",
                REQUEST_FIELDS.join(", ")
            ));
        }
    }
    let mut request = base.clone();
    let get_f = |key: &str| -> Result<Option<f64>, String> {
        match item.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| format!("field {key:?} must be a number")),
        }
    };
    let get_s = |key: &str| -> Result<Option<&str>, String> {
        match item.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| format!("field {key:?} must be a string")),
        }
    };
    if let Some(metric) = get_s("metric")? {
        request.metric = parse_metric(metric)?;
    }
    if let Some(k) = get_f("k")? {
        if k < 1.0 || k.fract() != 0.0 {
            return Err(format!("k must be a positive integer, got {k}"));
        }
        request.k = k as usize;
    }
    let learning_rate = get_f("learning_rate")?.unwrap_or(default_learning_rate);
    if let Some(estimator) = get_s("estimator")? {
        request.estimator = parse_estimator(estimator, learning_rate)?;
    } else if let Estimator::OneStepGd { .. } = request.estimator {
        // `learning_rate` alone must still apply when the base request
        // already selected the one-step-GD estimator.
        request.estimator = Estimator::OneStepGd { learning_rate };
    }
    if let Some(support) = get_f("support")? {
        if !(0.0..1.0).contains(&support) {
            return Err(format!("support must be in [0, 1), got {support}"));
        }
        request.lattice.support_threshold = support;
    }
    if let Some(depth) = get_f("max_predicates")? {
        if depth < 1.0 || depth.fract() != 0.0 {
            return Err(format!(
                "max_predicates must be a positive integer, got {depth}"
            ));
        }
        request.lattice.max_predicates = depth as usize;
    }
    if let Some(containment) = get_f("containment")? {
        if !(0.0..=1.0).contains(&containment) {
            return Err(format!("containment must be in [0, 1], got {containment}"));
        }
        request.containment_threshold = containment;
    }
    match item.get("ground_truth") {
        None => {}
        Some(Json::Bool(gt)) => request.ground_truth_for_topk = *gt,
        Some(_) => return Err("field \"ground_truth\" must be a boolean".into()),
    }
    if let Some(eval) = get_s("bias_eval")? {
        request.bias_eval = parse_bias_eval(eval)?;
    }
    Ok(request)
}

/// Renders one explanation response. The `explanations` objects and every
/// scalar here match `gopher explain --json` / `gopher query` field for
/// field; the CLI adds its invocation context (dataset, seed, …) on top of
/// this same object.
pub fn explain_response_json(response: &ExplainResponse) -> Json {
    let report = &response.report;
    let request = &response.request;
    let explanations: Vec<Json> = report
        .explanations
        .iter()
        .map(|e| {
            Json::obj([
                ("pattern", Json::str(&e.pattern_text)),
                ("support", Json::num(e.support)),
                ("est_responsibility", Json::num(e.est_responsibility)),
                ("interestingness", Json::num(e.candidate.interestingness)),
                (
                    "ground_truth_responsibility",
                    e.ground_truth_responsibility.map_or(Json::Null, Json::num),
                ),
                (
                    "ground_truth_new_bias",
                    e.ground_truth_new_bias.map_or(Json::Null, Json::num),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("metric", Json::str(report.metric.name())),
        ("estimator", Json::str(estimator_name(request.estimator))),
        ("base_bias", Json::num(report.base_bias)),
        ("accuracy", Json::num(report.accuracy)),
        ("k", Json::num(request.k as f64)),
        (
            "support_threshold",
            Json::num(request.lattice.support_threshold),
        ),
        (
            "candidates_scored",
            Json::num(report.stats.total_scored as f64),
        ),
        (
            "search_ms",
            Json::num(report.search_time.as_secs_f64() * 1e3),
        ),
        (
            "query_ms",
            Json::num(response.query_time.as_secs_f64() * 1e3),
        ),
        ("explanations", Json::Arr(explanations)),
    ])
}

/// The `session_stats` / `GET .../stats` block: every cache-layer counter a
/// serving deployment watches, straight from
/// [`ExplainSession::stats`](gopher_core::ExplainSession::stats), plus the
/// traffic counters that prove (or disprove) micro-batching:
/// `batches_formed < requests_served` means concurrent callers were
/// coalesced.
pub fn session_stats_json(stats: &SessionStats) -> Json {
    Json::obj([
        ("threads", Json::num(stats.threads as f64)),
        ("requests_served", Json::num(stats.requests_served as f64)),
        ("batches_formed", Json::num(stats.batches_served as f64)),
        (
            "max_batch_requests",
            Json::num(stats.max_batch_requests as f64),
        ),
        ("sweep_entries", Json::num(stats.sweep_entries as f64)),
        ("sweep_cache_cap", Json::num(stats.sweep_cache_cap as f64)),
        ("sweep_hits", Json::num(stats.sweep_hits as f64)),
        ("sweep_misses", Json::num(stats.sweep_misses as f64)),
        ("sweep_evictions", Json::num(stats.sweep_evictions as f64)),
        (
            "structure_entries",
            Json::num(stats.structure_entries as f64),
        ),
        (
            "structure_cache_cap",
            Json::num(stats.structure_cache_cap as f64),
        ),
        ("structure_hits", Json::num(stats.structure_hits as f64)),
        (
            "structure_range_hits",
            Json::num(stats.structure_range_hits as f64),
        ),
        ("structure_misses", Json::num(stats.structure_misses as f64)),
        (
            "structure_evictions",
            Json::num(stats.structure_evictions as f64),
        ),
        ("cached_coverages", Json::num(stats.cached_coverages as f64)),
        ("coverage_hits", Json::num(stats.coverage_hits as f64)),
        ("coverage_misses", Json::num(stats.coverage_misses as f64)),
        (
            "coverage_inserts_refused",
            Json::num(stats.coverage_inserts_refused as f64),
        ),
        (
            "prefilter_sample_rows",
            Json::num(stats.prefilter_sample_rows as f64),
        ),
        ("prefilter_probes", Json::num(stats.prefilter_probes as f64)),
        ("prefilter_skips", Json::num(stats.prefilter_skips as f64)),
        ("updates_applied", Json::num(stats.updates_applied as f64)),
        (
            "artifacts_survived",
            Json::num(stats.artifacts_survived as f64),
        ),
        (
            "artifacts_invalidated",
            Json::num(stats.artifacts_invalidated as f64),
        ),
        ("factor_fallbacks", Json::num(stats.factor_fallbacks as f64)),
        ("explain_p50_us", Json::num(stats.explain_p50_us as f64)),
        ("explain_p99_us", Json::num(stats.explain_p99_us as f64)),
    ])
}

/// The `POST /sessions/{name}/update` response: what the delta did, which
/// path the influence engine took (incremental patch vs fallback), and how
/// the structural cache fared. `updates_applied` is the session's cumulative
/// counter *after* this update.
pub fn update_report_json(report: &UpdateReport, updates_applied: u64, name: &str) -> Json {
    Json::obj([
        ("name", Json::str(name)),
        ("rows_removed", Json::num(report.rows_removed as f64)),
        ("rows_added", Json::num(report.rows_added as f64)),
        ("train_rows", Json::num(report.n_rows as f64)),
        (
            "artifacts_survived",
            Json::num(report.artifacts_survived as f64),
        ),
        (
            "artifacts_invalidated",
            Json::num(report.artifacts_invalidated as f64),
        ),
        ("refactored", Json::Bool(report.engine.refactored)),
        ("full_rebuild", Json::Bool(report.engine.full_rebuild)),
        ("fell_back", Json::Bool(report.engine.fell_back())),
        (
            "retrain_converged",
            Json::Bool(report.engine.retrain.converged),
        ),
        (
            "update_ms",
            Json::num(report.update_time.as_secs_f64() * 1e3),
        ),
        ("updates_applied", Json::num(updates_applied as f64)),
    ])
}
