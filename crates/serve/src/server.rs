//! The daemon: accept loop, worker pool, routing, graceful drain.
//!
//! ```text
//! POST   /sessions                 create a session (CSV upload or generator)
//! GET    /sessions                 list registered sessions
//! GET    /sessions/{name}/stats    cache + traffic counters for one session
//! POST   /sessions/{name}/explain  answer one explain request (micro-batched)
//! POST   /sessions/{name}/update   apply a training-data delta in place
//! DELETE /sessions/{name}          drop a session
//! GET    /healthz                  liveness + registry occupancy
//! POST   /shutdown                 begin graceful shutdown
//! ```
//!
//! Concurrency model: one non-blocking accept thread hands connections to a
//! fixed worker pool over a channel; each worker owns its connection for the
//! keep-alive duration, polling the shutdown flag on a 500 ms read timeout.
//! Shutdown ([`Server::trigger_shutdown`], `POST /shutdown`, or a signal
//! wired by the CLI) stops the accept loop, lets every in-flight request —
//! including a forming micro-batch — complete and flush, then parks the
//! workers; [`Server::join`] returns once the last one is done.

use crate::api;
use crate::batcher::Batcher;
use crate::http::{self, HttpConn, HttpError, Request};
use crate::registry::{build_session, SessionConfig, SessionEntry, SessionRegistry, UpdateSpec};
use gopher_core::ExplainRequest;
use gopher_json::{Json, ParseLimits, DEFAULT_MAX_DEPTH};
use gopher_par::{lock_recover, read_recover, write_recover};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything `gopher serve` lets you tune.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind.
    pub addr: String,
    /// Port to bind (`0` = let the OS pick; read it back from
    /// [`Server::addr`]).
    pub port: u16,
    /// Micro-batch collection window. `0` disables coalescing — every
    /// explain call runs solo.
    pub batch_window: Duration,
    /// Most requests one micro-batch may coalesce (leader included).
    pub max_batch: usize,
    /// Registry retention bound: past this many sessions the least recently
    /// used one is evicted.
    pub session_cap: usize,
    /// Connection-handling worker threads (`0` = auto).
    pub workers: usize,
    /// Largest accepted request body; bigger uploads get `413` before the
    /// body is read, and the JSON parser's own size limit is pinned to the
    /// same bound.
    pub max_body_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1".into(),
            port: 0,
            batch_window: Duration::from_millis(2),
            max_batch: 16,
            session_cap: 8,
            workers: 0,
            max_body_bytes: gopher_json::DEFAULT_MAX_BYTES,
        }
    }
}

/// How long an idle keep-alive read waits before re-checking the shutdown
/// flag. Bounds the shutdown latency contributed by parked connections.
const POLL_TIMEOUT: Duration = Duration::from_millis(500);

/// Shared server state: the registry plus the shutdown flag every loop
/// polls.
pub struct ServerState {
    /// The named-session registry.
    pub registry: SessionRegistry,
    config: ServeConfig,
    shutdown: AtomicBool,
    started: Instant,
}

impl ServerState {
    /// Whether graceful shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }
}

/// A running `gopher serve` daemon. Dropping it shuts it down and joins its
/// threads.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept loop and worker pool, and returns
    /// immediately; the daemon serves until [`Self::trigger_shutdown`] (or
    /// `POST /shutdown`, or a CLI-wired signal).
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind((config.addr.as_str(), config.port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let worker_count = if config.workers > 0 {
            config.workers
        } else {
            gopher_par::available_parallelism().max(4)
        };
        let state = Arc::new(ServerState {
            registry: SessionRegistry::new(config.session_cap),
            config,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
        });

        let (tx, rx) = channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let rx = rx.clone();
            let state = state.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("gopher-serve-worker-{i}"))
                    .spawn(move || worker_loop(&state, &rx))?,
            );
        }

        let accept_state = state.clone();
        let accept = std::thread::Builder::new()
            .name("gopher-serve-accept".into())
            .spawn(move || {
                while !accept_state.shutdown_requested() {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            // Workers poll the shutdown flag on this timeout.
                            let _ = stream.set_read_timeout(Some(POLL_TIMEOUT));
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
                // Dropping the sender releases every worker parked in recv.
            })?;

        Ok(Server {
            addr,
            state,
            accept: Some(accept),
            workers,
        })
    }

    /// The address actually bound (resolves `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (registry access for in-process callers).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Requests graceful shutdown: stop accepting, drain in-flight work.
    pub fn trigger_shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown has been requested (by any path).
    pub fn shutdown_requested(&self) -> bool {
        self.state.shutdown_requested()
    }

    /// Blocks until the accept loop and every worker have drained and
    /// exited. Call after [`Self::trigger_shutdown`] (or after a client
    /// posted `/shutdown`).
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.trigger_shutdown();
        self.join_threads();
    }
}

fn worker_loop(state: &ServerState, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Holding the lock while parked in recv is fine: the instant a
        // stream arrives the holder dequeues and releases; peers queue on
        // the mutex, not on the channel.
        let stream = {
            let guard = lock_recover(rx);
            guard.recv()
        };
        match stream {
            Ok(stream) => handle_connection(state, stream),
            Err(_) => break, // accept loop is gone and the queue is dry
        }
    }
}

fn handle_connection(state: &ServerState, stream: TcpStream) {
    let mut conn = HttpConn::new(stream);
    loop {
        match conn.read_request(state.config.max_body_bytes) {
            Ok(Some(request)) => {
                // A panic inside a handler (a bug, not a protocol error)
                // must cost this request a 500, not the worker thread.
                let (status, body) = catch_unwind(AssertUnwindSafe(|| route(state, &request)))
                    .unwrap_or_else(|_| (500, error_json("internal error answering this request")));
                // Drain politely once shutdown begins: answer, then close.
                let close = request.close || state.shutdown_requested();
                let payload = format!("{body}\n");
                if http::write_response(
                    conn.stream(),
                    status,
                    "application/json",
                    payload.as_bytes(),
                    close,
                )
                .is_err()
                    || close
                {
                    return;
                }
            }
            Ok(None) => return,
            Err(HttpError::Timeout) => {
                if state.shutdown_requested() {
                    return;
                }
            }
            Err(HttpError::Io(_)) => return,
            Err(e) => {
                let (status, message) = match e {
                    HttpError::Malformed(m) => (400, m),
                    HttpError::HeadTooLarge => (
                        431,
                        format!("request head exceeds {} bytes", http::MAX_HEAD_BYTES),
                    ),
                    HttpError::BodyTooLarge { limit } => {
                        (413, format!("request body exceeds the {limit}-byte limit"))
                    }
                    HttpError::NotImplemented(m) => (501, m),
                    HttpError::Timeout | HttpError::Io(_) => unreachable!("handled above"),
                };
                let payload = format!("{}\n", error_json(&message));
                let _ = http::write_response(
                    conn.stream(),
                    status,
                    "application/json",
                    payload.as_bytes(),
                    true,
                );
                return;
            }
        }
    }
}

fn error_json(message: &str) -> Json {
    Json::obj([("error", Json::str(message))])
}

/// Dispatches one request to its handler. Returns `(status, body)`.
fn route(state: &ServerState, request: &Request) -> (u16, Json) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (200, health(state)),
        ("GET", ["sessions"]) => (200, list_sessions(state)),
        ("POST", ["sessions"]) => create_session(state, request),
        ("GET", ["sessions", name, "stats"]) => session_stats(state, name),
        ("POST", ["sessions", name, "explain"]) => explain(state, name, request),
        ("POST", ["sessions", name, "update"]) => update_session(state, name, request),
        ("DELETE", ["sessions", name]) => {
            if state.registry.remove(name) {
                (200, Json::obj([("deleted", Json::str(*name))]))
            } else {
                (404, error_json(&format!("no session named {name:?}")))
            }
        }
        ("POST", ["shutdown"]) => {
            state.shutdown.store(true, Ordering::Relaxed);
            (200, Json::obj([("status", Json::str("shutting down"))]))
        }
        (_, ["healthz" | "sessions" | "shutdown", ..]) => (
            405,
            error_json(&format!("method {} not allowed here", request.method)),
        ),
        _ => (404, error_json(&format!("no route for {}", request.path))),
    }
}

fn health(state: &ServerState) -> Json {
    Json::obj([
        ("status", Json::str("ok")),
        ("sessions", Json::num(state.registry.len() as f64)),
        ("session_cap", Json::num(state.registry.cap() as f64)),
        (
            "uptime_ms",
            Json::num(state.started.elapsed().as_secs_f64() * 1e3),
        ),
        ("shutting_down", Json::Bool(state.shutdown_requested())),
    ])
}

fn list_sessions(state: &ServerState) -> Json {
    let sessions: Vec<Json> = state
        .registry
        .entries()
        .iter()
        .map(|e| {
            Json::obj([
                ("name", Json::str(&e.name)),
                ("model", Json::str(&e.model)),
                ("source", Json::str(&e.source)),
                ("rows", Json::num(e.rows as f64)),
                (
                    "requests_served",
                    Json::num(read_recover(&e.session).stats().requests_served as f64),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("sessions", Json::Arr(sessions)),
        ("cap", Json::num(state.registry.cap() as f64)),
        ("evictions", Json::num(state.registry.evictions() as f64)),
    ])
}

/// Parses a request body as JSON under the server's size bound and the
/// codec's nesting bound; a pathological body is a `400`, never a stack
/// overflow.
fn parse_body(state: &ServerState, body: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    gopher_json::parse_with_limits(
        text.trim(),
        ParseLimits {
            max_bytes: state.config.max_body_bytes,
            max_depth: DEFAULT_MAX_DEPTH,
        },
    )
}

fn create_session(state: &ServerState, request: &Request) -> (u16, Json) {
    let parsed = match parse_body(state, &request.body) {
        Ok(json) => json,
        Err(e) => return (400, error_json(&e)),
    };
    let config = match SessionConfig::from_json(&parsed) {
        Ok(config) => config,
        Err(e) => return (400, error_json(&e)),
    };
    let (session, rows) = match build_session(&config) {
        Ok(built) => built,
        Err(e) => return (400, error_json(&e)),
    };
    let accuracy = session.accuracy();
    let entry = Arc::new(SessionEntry {
        name: config.name.clone(),
        model: config.model.clone(),
        source: config.source_text(),
        rows,
        config: config.clone(),
        session: std::sync::RwLock::new(session),
        batcher: Batcher::new(state.config.batch_window, state.config.max_batch),
    });
    if let Err(e) = state.registry.insert(entry) {
        return (409, error_json(&e));
    }
    (
        201,
        Json::obj([
            ("name", Json::str(&config.name)),
            ("model", Json::str(&config.model)),
            ("rows", Json::num(rows as f64)),
            ("accuracy", Json::num(accuracy)),
        ]),
    )
}

fn session_stats(state: &ServerState, name: &str) -> (u16, Json) {
    let Some(entry) = state.registry.get(name) else {
        return (404, error_json(&format!("no session named {name:?}")));
    };
    let session = read_recover(&entry.session);
    let Json::Obj(mut fields) = api::session_stats_json(&session.stats()) else {
        unreachable!("session_stats_json returns an object");
    };
    fields.insert("name".into(), Json::str(&entry.name));
    fields.insert("model".into(), Json::str(&entry.model));
    fields.insert("source".into(), Json::str(&entry.source));
    fields.insert("rows".into(), Json::num(entry.rows as f64));
    fields.insert("train_rows".into(), Json::num(session.train_rows() as f64));
    fields.insert("accuracy".into(), Json::num(session.accuracy()));
    (200, Json::Obj(fields))
}

/// `POST /sessions/{name}/update`: apply a training-data delta in place.
///
/// The body names rows to remove (explicit indices or a seeded-random
/// count) and rows to append (generated for generator-backed sessions,
/// inline CSV for CSV-backed ones). Everything is validated *before* the
/// write lock is taken — bad indices, schema mismatches, and empty deltas
/// are `400`s and never touch the session. The update itself runs under the
/// session's write lock: in-flight explain batches finish first, the next
/// query answers over the new data.
fn update_session(state: &ServerState, name: &str, request: &Request) -> (u16, Json) {
    let Some(entry) = state.registry.get(name) else {
        return (404, error_json(&format!("no session named {name:?}")));
    };
    let parsed = match parse_body(state, &request.body) {
        Ok(json) => json,
        Err(e) => return (400, error_json(&e)),
    };
    let spec = match UpdateSpec::from_json(&parsed) {
        Ok(spec) => spec,
        Err(e) => return (400, error_json(&e)),
    };
    let added = match spec.build_added(&entry.config) {
        Ok(added) => added,
        Err(e) => return (400, error_json(&e)),
    };
    let mut session = write_recover(&entry.session);
    let n_rows = session.train_rows();
    let removed = match spec.resolve_removals(n_rows) {
        Ok(removed) => removed,
        Err(e) => return (400, error_json(&e)),
    };
    if removed.len() >= n_rows + added.as_ref().map_or(0, |d| d.n_rows()) {
        return (400, error_json("delta would leave the training set empty"));
    }
    if let Some(added) = &added {
        if !session.accepts(added) {
            return (
                400,
                error_json("added rows do not match the session's schema"),
            );
        }
    }
    let report = session.update(&removed, added.as_ref());
    let stats = session.stats();
    drop(session);
    (
        200,
        api::update_report_json(&report, stats.updates_applied, name),
    )
}

/// The server-side default request: like [`ExplainRequest::default`] but
/// with ground truth **off** — a serving endpoint must not pay k model
/// retrainings unless the caller asked for them.
pub fn default_request() -> ExplainRequest {
    ExplainRequest::default().with_ground_truth(false)
}

fn explain(state: &ServerState, name: &str, request: &Request) -> (u16, Json) {
    let Some(entry) = state.registry.get(name) else {
        return (404, error_json(&format!("no session named {name:?}")));
    };
    // An empty body means "the server defaults", same as `{}`.
    let parsed = if request.body.iter().all(u8::is_ascii_whitespace) {
        Json::obj([])
    } else {
        match parse_body(state, &request.body) {
            Ok(json) => json,
            Err(e) => return (400, error_json(&e)),
        }
    };
    let explain_request = match api::parse_explain_request(&parsed, &default_request(), 1.0) {
        Ok(r) => r,
        Err(e) => return (400, error_json(&e)),
    };
    match entry.batcher.explain(&entry.session, explain_request) {
        Ok(response) => (200, api::explain_response_json(&response)),
        Err(e) => (500, error_json(&e)),
    }
}
