//! The `gopher serve` daemon: multi-session explanation serving over HTTP.
//!
//! The paper's serving story ([`gopher_core::ExplainSession`]) pays model
//! training and influence precomputation once and answers many explanation
//! queries against that state. This crate puts a network front on it without
//! pulling in a single external dependency:
//!
//! * [`http`] — hand-rolled HTTP/1.1 framing over `std::net` (keep-alive,
//!   `Content-Length` bodies, `Expect: 100-continue`, bounded heads and
//!   bodies);
//! * [`registry`] — named sessions built from CSV uploads or the built-in
//!   generators, LRU-bounded; every session is shared `Arc`-style so
//!   eviction never interrupts an in-flight query;
//! * [`batcher`] — the killer feature: concurrent `POST .../explain`
//!   requests against one session are coalesced into a single
//!   [`ExplainSession::explain_batch`](gopher_core::ExplainSession::explain_batch)
//!   call, where the lattice sweep and scorer fan-out amortize across the
//!   whole batch (and the structure cache turns same-shape peers into one
//!   sweep);
//! * [`api`] — the JSON wire codecs, shared with the `gopher query`
//!   subcommand so the HTTP surface and the CLI speak byte-identical
//!   request and response shapes;
//! * [`server`] — the accept loop, worker pool, routing, and graceful
//!   drain ([`Server::trigger_shutdown`] stops accepting, in-flight batches
//!   finish, [`Server::join`] returns when the last worker parks);
//! * [`client`] — a tiny blocking client used by the CLI smoke tests and
//!   the `serve_qps` load bench.
//!
//! Start at [`Server::start`] with a [`ServeConfig`].

pub mod api;
pub mod batcher;
pub mod client;
pub mod http;
pub mod registry;
pub mod server;
pub mod signals;

pub use batcher::Batcher;
pub use registry::{
    build_session, AnySession, SessionConfig, SessionRegistry, UpdateSpec, UPDATE_FIELDS,
};
pub use server::{ServeConfig, Server};
