//! Minimal HTTP/1.1 framing over a `TcpStream`.
//!
//! Implements exactly what the daemon needs and nothing more: request-line +
//! header parsing, `Content-Length` bodies, keep-alive with per-connection
//! buffering (a read timeout never loses bytes — partial input stays in the
//! connection buffer for the next poll), `Expect: 100-continue`, and bounded
//! heads and bodies so a misbehaving client cannot balloon memory. Chunked
//! transfer encoding is deliberately rejected with `501`.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers). Past this the
/// request is rejected with `431` — no legitimate client of this API gets
/// anywhere near 16 KiB of headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection after this exchange.
    pub close: bool,
}

impl Request {
    /// First value of the named header (name matched case-insensitively —
    /// stored names are already lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The socket read timed out with a request still incomplete (or not
    /// started). The partial bytes stay buffered; call
    /// [`HttpConn::read_request`] again. This is how the worker loop polls
    /// the shutdown flag on idle keep-alive connections.
    Timeout,
    /// Transport failure; the connection is unusable.
    Io(io::Error),
    /// Syntactically invalid request — answer `400` and close.
    Malformed(String),
    /// Request head exceeded [`MAX_HEAD_BYTES`] — answer `431` and close.
    HeadTooLarge,
    /// Declared body exceeds the configured bound — answer `413` and close.
    BodyTooLarge {
        /// The configured body bound, for the error message.
        limit: usize,
    },
    /// The client used a transfer mode this server does not implement
    /// (chunked encoding) — answer `501` and close.
    NotImplemented(String),
}

/// A server-side connection: the stream plus the bytes read past the last
/// complete request (keep-alive pipelining and timeout-interrupted reads
/// both land here, so nothing is ever lost between calls).
pub struct HttpConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

impl HttpConn {
    /// Wraps an accepted stream.
    pub fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            buf: Vec::new(),
        }
    }

    /// The underlying stream (for writing responses).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Reads one request. `Ok(None)` means the client closed cleanly between
    /// requests; [`HttpError::Timeout`] means "nothing complete yet, poll
    /// again". Bodies larger than `max_body` are refused before they are
    /// read.
    pub fn read_request(&mut self, max_body: usize) -> Result<Option<Request>, HttpError> {
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(HttpError::HeadTooLarge);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.is_empty() {
                        return Ok(None);
                    }
                    return Err(HttpError::Malformed("connection closed mid-request".into()));
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
                Err(e) => return Err(HttpError::Io(e)),
            }
        };
        let head = self.buf[..head_end].to_vec();
        let body_start = head_end + 4;
        let head_text = String::from_utf8(head)
            .map_err(|_| HttpError::Malformed("request head is not UTF-8".into()))?;
        let mut request = parse_head(&head_text)?;

        let content_length = match request.header("content-length") {
            None => 0,
            Some(v) => v
                .trim()
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length {v:?}")))?,
        };
        if request.header("transfer-encoding").is_some() {
            return Err(HttpError::NotImplemented(
                "chunked transfer encoding is not supported; send Content-Length".into(),
            ));
        }
        if content_length > max_body {
            return Err(HttpError::BodyTooLarge { limit: max_body });
        }
        if request
            .header("expect")
            .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
        {
            // The body fits; tell the client to go ahead.
            self.stream
                .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
                .map_err(HttpError::Io)?;
        }

        let mut body: Vec<u8> = self.buf[body_start..].to_vec();
        self.buf.clear();
        while body.len() < content_length {
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(HttpError::Malformed("connection closed mid-body".into())),
                Ok(n) => body.extend_from_slice(&chunk[..n]),
                // The head arrived, so the body is in flight: keep waiting
                // rather than surfacing a poll timeout mid-request.
                Err(e) if is_timeout(&e) => continue,
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
        // Anything past the declared body is the next pipelined request.
        self.buf = body.split_off(content_length);
        request.body = body;
        Ok(Some(request))
    }
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses the request line and headers (body left empty).
fn parse_head(head: &str) -> Result<Request, HttpError> {
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("malformed header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let close = headers
        .iter()
        .any(|(n, v)| n == "connection" && v.eq_ignore_ascii_case("close"));
    Ok(Request {
        method,
        path,
        headers,
        body: Vec::new(),
        close,
    })
}

/// Canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one response with `Content-Length` framing. `close` adds
/// `Connection: close` (the caller must then actually close).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    );
    if close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}
