//! A tiny blocking HTTP/1.1 client for the daemon's own surface.
//!
//! Exists so the CLI smoke tests, the integration suite, and the
//! `serve_qps` load bench can talk to the server without shelling out to
//! `curl`. [`Conn`] keeps one connection alive across requests (the serving
//! hot path); [`request_once`] opens, asks, and closes.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One HTTP response: status code and body (headers are consumed, not kept).
#[derive(Debug)]
pub struct Response {
    /// The status code, e.g. `200`.
    pub status: u16,
    /// The response body as text.
    pub body: String,
}

/// A persistent client connection.
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    /// Connects to the server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Conn> {
        Ok(Conn {
            stream: TcpStream::connect(addr)?,
            buf: Vec::new(),
        })
    }

    /// Sends one request and reads its response. `body` is sent with
    /// `Content-Length` framing (pass `None` for body-less methods).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<Response> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: gopher\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                    })?;
                }
            }
        }
        let mut body: Vec<u8> = self.buf[head_end + 4..].to_vec();
        self.buf.clear();
        while body.len() < content_length {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed mid-body",
                ));
            }
            body.extend_from_slice(&chunk[..n]);
        }
        self.buf = body.split_off(content_length);
        Ok(Response {
            status,
            body: String::from_utf8_lossy(&body).into_owned(),
        })
    }
}

/// One-shot request: connect, ask, close.
pub fn request_once(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<Response> {
    Conn::connect(addr)?.request(method, path, body)
}
