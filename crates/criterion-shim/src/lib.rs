//! Offline drop-in replacement for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build container has no network access to crates.io, so this workspace
//! vendors the tiny subset of criterion's API that our benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::new`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it reports a simple
//! mean ± spread over `sample_size` timed runs (after one warm-up run),
//! which is enough to eyeball the paper's runtime figures. Swapping the
//! real criterion back in is a one-line `Cargo.toml` change: the bench
//! sources compile unmodified against either.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque equivalent of criterion's black box: prevents the optimizer from
/// deleting the benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Entry point handed to each `criterion_group!` target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
            _name: name,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    sample_size: Option<usize>,
    _name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Benchmarks `f`, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&id.to_string(), n, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&id.to_string(), n, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] times its argument.
pub struct Bencher {
    samples: Vec<Duration>,
    n: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` (plus one warm-up).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine()); // warm-up, not recorded
        for _ in 0..self.n {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, n: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(n),
        n,
    };
    f(&mut bencher);
    let samples = bencher.samples;
    if samples.is_empty() {
        println!("  {label:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "  {label:<40} mean {:>12?}   [{:?} .. {:?}]   ({} samples)",
        mean,
        min,
        max,
        samples.len()
    );
}

/// Identifies one benchmark within a group: a function name plus a parameter.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id like `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        #[doc = concat!("Benchmark group `", stringify!($name), "`.")]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filters); accept and ignore.
            let _ = std::env::args();
            $( $group(); )+
        }
    };
}
