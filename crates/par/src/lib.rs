//! Scoped-thread fork-join helpers: the workspace's rayon substitute.
//!
//! The build environment has no crates.io access, so the parallel query
//! engine is built on [`std::thread::scope`] instead of rayon. Two shapes
//! cover every fan-out in the workspace:
//!
//! * [`par_map`] — map a `Fn` over a shared slice, collecting results in
//!   input order (used for structural sweep groups and ground-truth
//!   retrains);
//! * [`par_for_each_mut`] — run a `Fn` over a slice of *mutable* work items,
//!   each visited exactly once (used for per-scorer lattice frontiers, where
//!   every scorer owns mutable state).
//!
//! Both helpers hand out items via an atomic cursor, so uneven work items
//! balance across workers, and both preserve determinism: item `i` is always
//! processed alone by exactly one thread, and results land at index `i`.
//! With `threads <= 1` (or a single item) they degrade to a plain inline
//! loop — no threads are spawned, which keeps single-threaded runs
//! bit-for-bit comparable and cheap.
//!
//! Panic behavior: a panicking worker sets a shared poison flag, so the
//! remaining workers finish their in-flight items but claim no new ones,
//! and the payload propagates to the caller when the scope joins — a batch
//! fails fast instead of paying for every remaining item. Callers that
//! hold lock-based caches must therefore recover poisoned mutexes — see
//! `ExplainSession` in `gopher-core`.

#![forbid(unsafe_code)]

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks `m`, recovering the guard when a previous holder panicked instead
/// of propagating the poison.
///
/// This is the workspace-wide lock idiom: a panicking sweep worker (see the
/// poison-flag protocol above) must not brick a long-lived session by
/// poisoning its caches. Recovery is sound here because every lock-guarded
/// structure in the workspace is an insert-or-recompute cache — a
/// half-written entry is at worst recomputed, never trusted. Raw
/// `.lock().unwrap()` calls are denied by `gopher-analyze`'s `raw-lock`
/// rule; call this instead.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`lock_recover`] for a reader on an [`RwLock`]: a panicking writer must
/// not brick every subsequent reader of a long-lived shared session.
pub fn read_recover<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// [`lock_recover`] for a writer on an [`RwLock`].
pub fn write_recover<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Number of threads the host advertises (`std::thread::available_parallelism`),
/// falling back to 1 when the query fails.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` with up to `threads` worker threads, returning the
/// results in input order. `f` receives `(index, &item)`.
///
/// With `threads <= 1` or fewer than two items, runs inline on the calling
/// thread. Threads are scoped, so `f` may borrow from the caller's stack.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                if poisoned.load(Ordering::Relaxed) {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                match std::panic::catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                    // Uncontended: slot `i` is claimed by exactly one worker.
                    Ok(result) => *lock_recover(&slots[i]) = Some(result),
                    Err(payload) => {
                        poisoned.store(true, Ordering::Relaxed);
                        std::panic::resume_unwind(payload);
                    }
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// Runs `f` once on every item of `items` with up to `threads` worker
/// threads. `f` receives `(index, &mut item)`; each item is visited by
/// exactly one thread, so `f` may freely mutate it.
///
/// With `threads <= 1` or fewer than two items, runs inline on the calling
/// thread. Threads are scoped, so `f` may borrow from the caller's stack.
pub fn par_for_each_mut<W, F>(threads: usize, items: &mut [W], f: F)
where
    W: Send,
    F: Fn(usize, &mut W) + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    // Each cell is locked exactly once, by the worker that claims its index;
    // the mutexes only exist to hand a `&mut` through the `Sync` boundary.
    let cells: Vec<Mutex<&mut W>> = items.iter_mut().map(Mutex::new).collect();
    let cursor = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                if poisoned.load(Ordering::Relaxed) {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let mut item = lock_recover(&cells[i]);
                if let Err(payload) = std::panic::catch_unwind(AssertUnwindSafe(|| f(i, &mut item)))
                {
                    poisoned.store(true, Ordering::Relaxed);
                    std::panic::resume_unwind(payload);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = par_map(4, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_inline_for_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [0, 1, 2, 3, 8, 64] {
            assert_eq!(
                par_map(threads, &items, |_, &x| x * x + 1),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn par_map_uses_multiple_threads() {
        let items: Vec<usize> = (0..64).collect();
        let seen = Mutex::new(HashSet::new());
        par_map(4, &items, |_, _| {
            // A tiny sleep gives every worker a chance to claim work.
            std::thread::sleep(std::time::Duration::from_millis(1));
            lock_recover(&seen).insert(std::thread::current().id());
        });
        // Workers only spawn when the host has >1 core; otherwise the OS may
        // still schedule all closures on one thread, so only assert spawning.
        assert!(!lock_recover(&seen).is_empty());
    }

    #[test]
    fn par_for_each_mut_visits_every_item_once() {
        for threads in [1, 2, 4, 16] {
            let mut items = vec![0u32; 100];
            par_for_each_mut(threads, &mut items, |i, slot| {
                *slot += i as u32 + 1;
            });
            for (i, &v) in items.iter().enumerate() {
                assert_eq!(v, i as u32 + 1, "threads={threads}");
            }
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        let one = vec![7];
        assert_eq!(par_map(4, &one, |_, &x| x + 1), vec![8]);
        let mut one_mut = vec![7];
        par_for_each_mut(4, &mut one_mut, |_, x| *x += 1);
        assert_eq!(one_mut, vec![8]);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let items: Vec<usize> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(4, &items, |i, _| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err(), "panic must reach the caller");
    }

    #[test]
    fn worker_panic_stops_new_work_from_being_claimed() {
        // Item 0 panics immediately; every other item is slow. With the
        // poison flag, workers stop claiming once the panic lands, so most
        // of the batch is skipped instead of paid for.
        let executed = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_map(4, &items, |i, _| {
                if i == 0 {
                    panic!("fail fast");
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
                executed.fetch_add(1, Ordering::Relaxed);
            })
        }));
        assert!(result.is_err());
        let done = executed.load(Ordering::Relaxed);
        assert!(
            done < 32,
            "a panic on the first item should skip most of the batch, ran {done}"
        );
    }

    #[test]
    fn uneven_work_is_balanced_by_the_cursor() {
        // Items with wildly different costs must all complete exactly once.
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..32).collect();
        let results = par_map(4, &items, |i, _| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
        assert_eq!(results, items);
    }

    #[test]
    fn available_parallelism_is_positive() {
        assert!(available_parallelism() >= 1);
    }
}
