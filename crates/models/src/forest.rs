//! Bagged shallow decision trees with exact per-tree unlearning.
//!
//! [`Forest`] is the first non-differentiable model family: it implements
//! [`Model`] (predictions) but deliberately **not** `Differentiable`, so
//! Hessian-based influence machinery fails to compile against it instead of
//! panicking at runtime. Its influence story is example-based unlearning
//! (Surve & Pradhan): every tree keeps the training-row ids of its bootstrap
//! sample at every node, so removing a set of training rows can be replayed
//! *exactly* — each node re-derives its best split from the surviving rows
//! and rebuilds only the subtrees whose split actually changed.
//!
//! Determinism contract: for a fixed [`ForestConfig`] (seed included) and a
//! fixed training set, `fit` is bit-reproducible — bootstrap samples come
//! from per-tree forks of one seeded generator, candidate thresholds are
//! quantile cutpoints of the fit data, and the split search scans features
//! and cutpoints in ascending order with strict-improvement tie-breaking.
//! [`Forest::unlearn`] recomputes the *same* deterministic split function on
//! the reduced rows, which is what makes unlearning exact rather than
//! approximate: the result equals refitting every tree on its reduced
//! bootstrap sample under the thresholds frozen at fit time.

use crate::train::TrainReport;
use crate::Model;
use gopher_data::Encoded;
use gopher_prng::Rng;

/// Split gains at or below this are treated as "no improvement": guards the
/// strict-improvement scan against float noise manufacturing a split whose
/// mathematical gain is zero (e.g. a pure node). Determinism is unaffected —
/// fit and unlearn apply the same cutoff to the same arithmetic.
const MIN_GAIN: f64 = 1e-12;

/// Configuration for a bagged-tree ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestConfig {
    /// Number of bagged trees.
    pub n_trees: usize,
    /// Maximum tree depth (0 = decision stumps are disallowed entirely;
    /// 2 = the default shallow trees of up to 4 leaves).
    pub max_depth: usize,
    /// Minimum bootstrap rows (with multiplicity) on each side of a split.
    pub min_leaf: usize,
    /// Number of histogram bins per feature; candidate thresholds are the
    /// `n_bins − 1` interior quantile cutpoints of the fit data.
    pub n_bins: usize,
    /// Seed for the bootstrap sampler.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 32,
            max_depth: 2,
            min_leaf: 8,
            n_bins: 8,
            seed: 7,
        }
    }
}

/// One tree node. Internal nodes carry their split; every node keeps the
/// bootstrap-row ids (with multiplicity) that reached it plus their label
/// counts, which is exactly the state unlearning needs.
#[derive(Debug, Clone)]
struct Node {
    /// Training-row ids of the bootstrap rows at this node.
    rows: Vec<u32>,
    /// Favorable-label count over `rows`.
    pos: u32,
    /// Unfavorable-label count over `rows`.
    neg: u32,
    split: Option<Box<Split>>,
}

#[derive(Debug, Clone)]
struct Split {
    feature: usize,
    /// Cutpoint drawn from the frozen per-feature threshold table; rows with
    /// `x[feature] <= threshold` go left.
    threshold: f64,
    left: Node,
    right: Node,
}

impl Node {
    /// Laplace-smoothed leaf probability of the favorable class.
    fn leaf_proba(&self) -> f64 {
        (f64::from(self.pos) + 1.0) / (f64::from(self.pos + self.neg) + 2.0)
    }
}

/// Everything a fitted forest owns beyond its config.
#[derive(Debug, Clone)]
struct ForestState {
    /// Training-set size the row ids index into.
    n_rows: usize,
    /// Per-feature candidate thresholds, frozen at fit time. Unlearning
    /// reuses them; only a scratch retrain re-derives cutpoints.
    thresholds: Vec<Vec<f64>>,
    trees: Vec<Node>,
}

/// A bagged ensemble of shallow decision trees (Gini splits on histogram
/// cutpoints, deterministic per seed), predicting the mean Laplace-smoothed
/// leaf probability across trees.
#[derive(Debug, Clone)]
pub struct Forest {
    n_inputs: usize,
    config: ForestConfig,
    state: Option<ForestState>,
}

impl Forest {
    /// Creates an unfitted forest for `n_inputs` features.
    ///
    /// # Panics
    /// If the config asks for zero trees or zero-width histograms.
    pub fn new(n_inputs: usize, config: ForestConfig) -> Self {
        assert!(config.n_trees > 0, "forest needs at least one tree");
        assert!(config.n_bins >= 2, "histogram split search needs >= 2 bins");
        Self {
            n_inputs,
            config,
            state: None,
        }
    }

    /// The configuration this forest was created with.
    pub fn config(&self) -> &ForestConfig {
        &self.config
    }

    /// Whether [`fit`](Self::fit) has run.
    pub fn is_fit(&self) -> bool {
        self.state.is_some()
    }

    /// Number of rows in the training set this forest was fit on.
    ///
    /// # Panics
    /// If the forest has not been fit.
    pub fn n_train_rows(&self) -> usize {
        self.expect_state().n_rows
    }

    fn expect_state(&self) -> &ForestState {
        self.state
            .as_ref()
            .expect("Forest must be fit before this operation")
    }

    /// Fits the ensemble: freezes per-feature quantile cutpoints, draws one
    /// bootstrap sample per tree from per-tree forks of the seeded
    /// generator, and grows each tree greedily. Bit-reproducible for a fixed
    /// config and training set.
    pub fn fit(&mut self, train: &Encoded) -> TrainReport {
        assert_eq!(
            train.n_cols(),
            self.n_inputs,
            "forest input width must match the encoded data"
        );
        let n = train.n_rows();
        assert!(n > 0, "cannot fit a forest on an empty training set");
        let thresholds = quantile_thresholds(train, self.config.n_bins);
        let mut rng = Rng::new(self.config.seed);
        let trees: Vec<Node> = (0..self.config.n_trees)
            .map(|_| {
                let mut tree_rng = rng.fork();
                let sample: Vec<u32> = (0..n).map(|_| tree_rng.below(n as u64) as u32).collect();
                fit_node(train, &thresholds, sample, 0, &self.config)
            })
            .collect();
        self.state = Some(ForestState {
            n_rows: n,
            thresholds,
            trees,
        });
        // Report training error in the trainer's report shape; there is no
        // gradient, and greedy tree growth always "converges".
        let errors = (0..n)
            .filter(|&r| self.predict(train.x.row(r)) != train.y[r])
            .count();
        TrainReport {
            iterations: self.config.n_trees,
            final_loss: errors as f64 / n as f64,
            grad_norm: 0.0,
            converged: true,
        }
    }

    /// Returns a copy of the forest with the given training rows *exactly
    /// unlearned*: every copy of each removed row id is dropped from every
    /// bootstrap sample, and each tree is transformed into precisely the
    /// tree [`fit`](Self::fit) would have grown on the reduced sample under
    /// the thresholds frozen at fit time. Subtrees whose rows and best split
    /// are untouched are reused; only affected nodes re-split.
    ///
    /// `train` must be the encoded training set the forest was fit on.
    ///
    /// # Panics
    /// If the forest has not been fit, or a row id is out of range.
    pub fn unlearn(&self, train: &Encoded, removed: &[u32]) -> Forest {
        let mut unlearned = self.clone();
        unlearned.unlearn_in_place(train, removed);
        unlearned
    }

    /// In-place variant of [`unlearn`](Self::unlearn), for the session
    /// update path.
    pub fn unlearn_in_place(&mut self, train: &Encoded, removed: &[u32]) {
        let state = self
            .state
            .as_mut()
            .expect("Forest must be fit before unlearning");
        let mut mask = vec![false; state.n_rows];
        for &r in removed {
            mask[r as usize] = true;
        }
        let thresholds = std::mem::take(&mut state.thresholds);
        for tree in &mut state.trees {
            let reduced = unlearn_node(tree, &mask, train, &thresholds, 0, &self.config);
            *tree = reduced;
        }
        state.thresholds = thresholds;
    }

    /// Renumbers every stored row id after `removed` (sorted, deduplicated)
    /// rows were deleted from the training set: id `r` becomes `r` minus the
    /// number of removed ids below it. Call after
    /// [`unlearn_in_place`](Self::unlearn_in_place) so no removed id
    /// remains; keeps the forest's row ids aligned with the compacted
    /// training set for future unlearning rounds.
    pub fn remap_after_removal(&mut self, removed_sorted: &[u32]) {
        debug_assert!(removed_sorted.windows(2).all(|w| w[0] < w[1]));
        let state = self
            .state
            .as_mut()
            .expect("Forest must be fit before remapping");
        state.n_rows -= removed_sorted.len();
        for tree in &mut state.trees {
            remap_node(tree, removed_sorted);
        }
    }
}

impl Model for Forest {
    fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        let state = self.expect_state();
        let mut sum = 0.0;
        for tree in &state.trees {
            let mut node = tree;
            while let Some(split) = &node.split {
                node = if x[split.feature] <= split.threshold {
                    &split.left
                } else {
                    &split.right
                };
            }
            sum += node.leaf_proba();
        }
        sum / state.trees.len() as f64
    }
}

/// Interior quantile cutpoints per feature: deterministic, duplicate-free,
/// at most `n_bins − 1` per feature.
fn quantile_thresholds(train: &Encoded, n_bins: usize) -> Vec<Vec<f64>> {
    let n = train.n_rows();
    let d = train.n_cols();
    let mut out = Vec::with_capacity(d);
    let mut col = vec![0.0f64; n];
    for j in 0..d {
        for (r, v) in col.iter_mut().enumerate() {
            *v = train.x.row(r)[j];
        }
        col.sort_by(f64::total_cmp);
        let mut cuts: Vec<f64> = Vec::with_capacity(n_bins - 1);
        for q in 1..n_bins {
            let v = col[q * (n - 1) / n_bins];
            // A cutpoint equal to the column maximum can never send a row
            // right; skip it along with duplicates.
            if v < col[n - 1] && cuts.last() != Some(&v) {
                cuts.push(v);
            }
        }
        out.push(cuts);
    }
    out
}

/// Sum-of-squares purity score `(pos² + neg²) / total` — maximizing the
/// total score over a partition is exactly minimizing weighted Gini
/// impurity.
fn sos(pos: u32, neg: u32) -> f64 {
    let total = pos + neg;
    if total == 0 {
        return 0.0;
    }
    (f64::from(pos) * f64::from(pos) + f64::from(neg) * f64::from(neg)) / f64::from(total)
}

fn count_labels(train: &Encoded, rows: &[u32]) -> (u32, u32) {
    let mut pos = 0u32;
    let mut neg = 0u32;
    for &r in rows {
        if train.y[r as usize] == 1.0 {
            pos += 1;
        } else {
            neg += 1;
        }
    }
    (pos, neg)
}

/// The best `(feature, threshold)` over the frozen cutpoint table for these
/// rows, or `None` when no split strictly improves purity under the
/// `min_leaf` constraint. Pure function of `(rows, thresholds, labels)`:
/// scans features then cutpoints in ascending order and replaces the
/// incumbent only on strict improvement, so ties resolve to the first
/// candidate and fit/unlearn agree bit for bit.
fn best_split(
    train: &Encoded,
    thresholds: &[Vec<f64>],
    rows: &[u32],
    pos: u32,
    neg: u32,
    min_leaf: usize,
) -> Option<(usize, f64)> {
    let parent = sos(pos, neg);
    let total = rows.len();
    let mut best: Option<(usize, f64)> = None;
    let mut best_gain = MIN_GAIN;
    let mut pos_bins = Vec::new();
    let mut neg_bins = Vec::new();
    for (feature, cuts) in thresholds.iter().enumerate() {
        if cuts.is_empty() {
            continue;
        }
        // Histogram pass: bin k holds rows with cuts[k−1] < x <= cuts[k]
        // (bin 0: x <= cuts[0]; last bin: x > every cutpoint), so the left
        // side of a split at cuts[k] is the prefix of bins 0..=k.
        pos_bins.clear();
        neg_bins.clear();
        pos_bins.resize(cuts.len() + 1, 0u32);
        neg_bins.resize(cuts.len() + 1, 0u32);
        for &r in rows {
            let v = train.x.row(r as usize)[feature];
            let bin = cuts.partition_point(|&c| c < v);
            if train.y[r as usize] == 1.0 {
                pos_bins[bin] += 1;
            } else {
                neg_bins[bin] += 1;
            }
        }
        let mut pos_l = 0u32;
        let mut neg_l = 0u32;
        for (k, &cut) in cuts.iter().enumerate() {
            pos_l += pos_bins[k];
            neg_l += neg_bins[k];
            let n_l = (pos_l + neg_l) as usize;
            let n_r = total - n_l;
            if n_l < min_leaf || n_r < min_leaf {
                continue;
            }
            let gain = sos(pos_l, neg_l) + sos(pos - pos_l, neg - neg_l) - parent;
            if gain > best_gain {
                best_gain = gain;
                best = Some((feature, cut));
            }
        }
    }
    best
}

/// Grows one node greedily from its bootstrap rows.
fn fit_node(
    train: &Encoded,
    thresholds: &[Vec<f64>],
    rows: Vec<u32>,
    depth: usize,
    cfg: &ForestConfig,
) -> Node {
    let (pos, neg) = count_labels(train, &rows);
    let chosen = (depth < cfg.max_depth)
        .then(|| best_split(train, thresholds, &rows, pos, neg, cfg.min_leaf))
        .flatten();
    let split = chosen.map(|(feature, threshold)| {
        let (left_rows, right_rows) = partition(train, &rows, feature, threshold);
        Box::new(Split {
            feature,
            threshold,
            left: fit_node(train, thresholds, left_rows, depth + 1, cfg),
            right: fit_node(train, thresholds, right_rows, depth + 1, cfg),
        })
    });
    Node {
        rows,
        pos,
        neg,
        split,
    }
}

/// Order-preserving partition of `rows` by `x[feature] <= threshold`.
fn partition(
    train: &Encoded,
    rows: &[u32],
    feature: usize,
    threshold: f64,
) -> (Vec<u32>, Vec<u32>) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &r in rows {
        if train.x.row(r as usize)[feature] <= threshold {
            left.push(r);
        } else {
            right.push(r);
        }
    }
    (left, right)
}

/// Exact unlearning of one node: drops masked rows, re-derives the best
/// split on the survivors, and reuses the existing structure when the split
/// is unchanged (recursing only into children) — otherwise regrows the
/// subtree with [`fit_node`]. Postcondition: the returned node is exactly
/// `fit_node(survivors, depth)`.
fn unlearn_node(
    node: &Node,
    mask: &[bool],
    train: &Encoded,
    thresholds: &[Vec<f64>],
    depth: usize,
    cfg: &ForestConfig,
) -> Node {
    let kept: Vec<u32> = node
        .rows
        .iter()
        .copied()
        .filter(|&r| !mask[r as usize])
        .collect();
    if kept.len() == node.rows.len() {
        // No removed row reached this node: the whole subtree is untouched.
        return node.clone();
    }
    let (pos, neg) = count_labels(train, &kept);
    let chosen = (depth < cfg.max_depth)
        .then(|| best_split(train, thresholds, &kept, pos, neg, cfg.min_leaf))
        .flatten();
    let same = match (&node.split, chosen) {
        (Some(old), Some((feature, threshold))) => {
            old.feature == feature && old.threshold.to_bits() == threshold.to_bits()
        }
        (None, None) => true,
        _ => false,
    };
    if !same {
        // The split flipped (changed, appeared, or vanished): regrow.
        return fit_node(train, thresholds, kept, depth, cfg);
    }
    let split = node.split.as_ref().map(|old| {
        // Same split, same partition function: the children's surviving rows
        // are exactly their old rows minus the mask — recurse.
        Box::new(Split {
            feature: old.feature,
            threshold: old.threshold,
            left: unlearn_node(&old.left, mask, train, thresholds, depth + 1, cfg),
            right: unlearn_node(&old.right, mask, train, thresholds, depth + 1, cfg),
        })
    });
    Node {
        rows: kept,
        pos,
        neg,
        split,
    }
}

fn remap_node(node: &mut Node, removed_sorted: &[u32]) {
    for r in &mut node.rows {
        let below = removed_sorted.partition_point(|&x| x < *r) as u32;
        debug_assert!(removed_sorted.binary_search(r).is_err());
        *r -= below;
    }
    if let Some(split) = &mut node.split {
        remap_node(&mut split.left, removed_sorted);
        remap_node(&mut split.right, removed_sorted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopher_data::generators::german;
    use gopher_data::Encoder;

    fn fit_forest(n: usize, seed: u64) -> (Encoded, Forest) {
        let raw = german(n, 11);
        let enc = Encoder::fit(&raw);
        let train = enc.transform(&raw);
        let mut forest = Forest::new(
            train.n_cols(),
            ForestConfig {
                seed,
                ..ForestConfig::default()
            },
        );
        let report = forest.fit(&train);
        assert!(report.converged);
        (train, forest)
    }

    fn assert_nodes_equal(a: &Node, b: &Node) {
        assert_eq!(a.rows, b.rows);
        assert_eq!((a.pos, a.neg), (b.pos, b.neg));
        match (&a.split, &b.split) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.feature, y.feature);
                assert_eq!(x.threshold.to_bits(), y.threshold.to_bits());
                assert_nodes_equal(&x.left, &y.left);
                assert_nodes_equal(&x.right, &y.right);
            }
            _ => panic!("split structure diverged"),
        }
    }

    #[test]
    fn fit_is_deterministic_per_seed() {
        let (_, f1) = fit_forest(300, 5);
        let (_, f2) = fit_forest(300, 5);
        let (_, f3) = fit_forest(300, 6);
        let s1 = f1.expect_state();
        let s2 = f2.expect_state();
        for (a, b) in s1.trees.iter().zip(&s2.trees) {
            assert_nodes_equal(a, b);
        }
        // A different seed draws different bootstraps.
        let same_rows = s1
            .trees
            .iter()
            .zip(&f3.expect_state().trees)
            .all(|(a, b)| a.rows == b.rows);
        assert!(!same_rows, "distinct seeds must draw distinct bootstraps");
    }

    #[test]
    fn forest_beats_coin_flip_on_train() {
        let (train, forest) = fit_forest(400, 7);
        let acc = crate::train::accuracy(&forest, &train);
        assert!(acc > 0.6, "train accuracy {acc} should beat chance");
    }

    #[test]
    fn proba_is_a_probability_and_trees_are_depth_bounded() {
        let (train, forest) = fit_forest(200, 9);
        for r in 0..train.n_rows() {
            let p = forest.predict_proba(train.x.row(r));
            assert!((0.0..=1.0).contains(&p));
        }
        fn depth(node: &Node) -> usize {
            node.split
                .as_ref()
                .map_or(0, |s| 1 + depth(&s.left).max(depth(&s.right)))
        }
        for tree in &forest.expect_state().trees {
            assert!(depth(tree) <= forest.config().max_depth);
        }
    }

    /// The heart of the exactness claim: unlearning rows equals regrowing
    /// every tree from scratch on its reduced bootstrap sample (under the
    /// fit-time thresholds).
    #[test]
    fn unlearning_matches_refit_on_reduced_bootstraps() {
        let (train, forest) = fit_forest(300, 13);
        for removed in [
            vec![0u32, 5, 17, 123, 299],
            (0..60).collect::<Vec<u32>>(),
            vec![250],
        ] {
            let unlearned = forest.unlearn(&train, &removed);
            let mut mask = vec![false; train.n_rows()];
            removed.iter().for_each(|&r| mask[r as usize] = true);
            let state = forest.expect_state();
            for (tree, got) in state.trees.iter().zip(&unlearned.expect_state().trees) {
                let reduced: Vec<u32> = tree
                    .rows
                    .iter()
                    .copied()
                    .filter(|&r| !mask[r as usize])
                    .collect();
                let reference = fit_node(&train, &state.thresholds, reduced, 0, forest.config());
                assert_nodes_equal(got, &reference);
            }
        }
    }

    #[test]
    fn unlearning_changes_predictions_monotonically_toward_removal() {
        let (train, forest) = fit_forest(300, 17);
        // Remove a block of favorable-outcome rows; some prediction must move.
        let removed: Vec<u32> = (0..train.n_rows() as u32)
            .filter(|&r| train.y[r as usize] == 1.0)
            .take(40)
            .collect();
        let unlearned = forest.unlearn(&train, &removed);
        let moved = (0..train.n_rows()).any(|r| {
            (forest.predict_proba(train.x.row(r)) - unlearned.predict_proba(train.x.row(r))).abs()
                > 1e-12
        });
        assert!(
            moved,
            "removing 40 favorable rows must move some prediction"
        );
    }

    #[test]
    fn remap_after_removal_matches_refit_row_ids() {
        let (train, mut forest) = fit_forest(200, 19);
        let removed: Vec<u32> = vec![3, 40, 41, 150];
        forest.unlearn_in_place(&train, &removed);
        forest.remap_after_removal(&removed);
        assert_eq!(forest.n_train_rows(), 196);
        // Every surviving id must be in range and the mapping order-preserving.
        fn check(node: &Node, n: usize) {
            assert!(node.rows.iter().all(|&r| (r as usize) < n));
            if let Some(s) = &node.split {
                check(&s.left, n);
                check(&s.right, n);
            }
        }
        for tree in &forest.expect_state().trees {
            check(tree, 196);
        }
    }

    #[test]
    #[should_panic(expected = "must be fit")]
    fn predicting_before_fit_panics() {
        let forest = Forest::new(3, ForestConfig::default());
        let _ = forest.predict_proba(&[0.0, 0.0, 0.0]);
    }
}
