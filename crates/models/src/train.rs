//! Training: full-batch gradient descent (with momentum) and damped Newton.
//!
//! The objective everywhere is `J(θ) = (1/n) Σᵢ L(zᵢ, θ) + (λ/2)‖θ‖²` with
//! `λ = model.l2()`. Influence functions assume θ* is a stationary point of
//! `J`, so trainers iterate until the gradient norm is small, not merely
//! until the loss stops improving.

use crate::{Differentiable, Model};
use gopher_data::Encoded;
use gopher_linalg::{vecops, Cholesky, Matrix};

/// Summary of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Iterations (epochs for GD, Newton steps for Newton) performed.
    pub iterations: usize,
    /// Final objective value `J(θ)`.
    pub final_loss: f64,
    /// Final gradient norm `‖∇J(θ)‖₂`.
    pub grad_norm: f64,
    /// Whether the gradient tolerance was reached.
    pub converged: bool,
}

/// The regularized objective `J(θ)` on a dataset.
pub fn objective<M: Differentiable>(model: &M, data: &Encoded) -> f64 {
    let n = data.n_rows().max(1);
    let mut total = 0.0;
    for r in 0..data.n_rows() {
        total += model.loss(data.x.row(r), data.y[r]);
    }
    let theta = model.params();
    total / n as f64 + 0.5 * model.l2() * vecops::dot(theta, theta)
}

/// Writes `∇J(θ) = (1/n) Σ ∇L + λθ` into `out` (overwriting it).
pub fn full_gradient<M: Differentiable>(model: &M, data: &Encoded, out: &mut [f64]) {
    debug_assert_eq!(out.len(), model.n_params());
    out.iter_mut().for_each(|g| *g = 0.0);
    for r in 0..data.n_rows() {
        model.accumulate_grad(data.x.row(r), data.y[r], out);
    }
    let n = data.n_rows().max(1) as f64;
    let l2 = model.l2();
    for (g, t) in out.iter_mut().zip(model.params()) {
        *g = *g / n + l2 * t;
    }
}

/// Fraction of examples whose hard prediction matches the label.
pub fn accuracy<M: Model>(model: &M, data: &Encoded) -> f64 {
    if data.n_rows() == 0 {
        return 0.0;
    }
    let correct = (0..data.n_rows())
        .filter(|&r| model.predict(data.x.row(r)) == data.y[r])
        .count();
    correct as f64 / data.n_rows() as f64
}

/// Configuration for full-batch gradient descent with momentum.
#[derive(Debug, Clone)]
pub struct GdConfig {
    /// Step size.
    pub learning_rate: f64,
    /// Maximum epochs.
    pub max_epochs: usize,
    /// Stop when `‖∇J‖₂` falls below this.
    pub grad_tol: f64,
    /// Classical momentum coefficient in `[0, 1)`.
    pub momentum: f64,
}

impl Default for GdConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.5,
            max_epochs: 2000,
            grad_tol: 1e-6,
            momentum: 0.9,
        }
    }
}

/// Trains `model` in place by full-batch gradient descent.
pub fn fit_gd<M: Differentiable>(model: &mut M, data: &Encoded, cfg: &GdConfig) -> TrainReport {
    let p = model.n_params();
    let mut grad = vec![0.0; p];
    let mut velocity = vec![0.0; p];
    let mut iterations = 0;
    let mut grad_norm = f64::INFINITY;
    for epoch in 0..cfg.max_epochs {
        full_gradient(model, data, &mut grad);
        grad_norm = vecops::norm2(&grad);
        iterations = epoch;
        if grad_norm < cfg.grad_tol {
            break;
        }
        for ((v, g), t) in velocity.iter_mut().zip(&grad).zip(model.params_mut()) {
            *v = cfg.momentum * *v - cfg.learning_rate * g;
            *t += *v;
        }
    }
    TrainReport {
        iterations,
        final_loss: objective(model, data),
        grad_norm,
        converged: grad_norm < cfg.grad_tol,
    }
}

/// Configuration for damped Newton's method.
#[derive(Debug, Clone)]
pub struct NewtonConfig {
    /// Maximum Newton steps.
    pub max_iter: usize,
    /// Stop when `‖∇J‖₂` falls below this.
    pub grad_tol: f64,
    /// Initial Hessian damping (escalated automatically if the Hessian is
    /// not positive definite).
    pub damping: f64,
}

impl Default for NewtonConfig {
    fn default() -> Self {
        Self {
            max_iter: 50,
            grad_tol: 1e-10,
            damping: 1e-8,
        }
    }
}

/// Trains `model` in place by damped Newton with backtracking line search.
///
/// Practical for models with analytic Hessians (logistic regression, SVM);
/// for the MLP each step assembles the Hessian by finite differences, which
/// is usable for testing but slow — prefer [`fit_gd`] there.
pub fn fit_newton<M: Differentiable>(
    model: &mut M,
    data: &Encoded,
    cfg: &NewtonConfig,
) -> TrainReport {
    let p = model.n_params();
    let n = data.n_rows().max(1) as f64;
    let mut grad = vec![0.0; p];
    let mut iterations = 0;
    let mut stalled = false;
    for iter in 0..cfg.max_iter {
        full_gradient(model, data, &mut grad);
        let grad_norm = vecops::norm2(&grad);
        iterations = iter;
        if grad_norm < cfg.grad_tol {
            break;
        }
        // Assemble H = (1/n) Σ ∇²L + λI.
        let mut h = Matrix::zeros(p, p);
        for r in 0..data.n_rows() {
            model.accumulate_hessian(data.x.row(r), data.y[r], &mut h);
        }
        h.scale(1.0 / n);
        h.add_diagonal(model.l2());
        let (chol, _) =
            Cholesky::factor_damped(&h, cfg.damping, 24).expect("damping escalation succeeds");
        let step = chol.solve(&grad);
        // Backtracking line search on J.
        let base = objective(model, data);
        let mut alpha = 1.0;
        let mut improved = false;
        for _ in 0..30 {
            let mut trial = model.clone();
            for (t, s) in trial.params_mut().iter_mut().zip(&step) {
                *t -= alpha * s;
            }
            if objective(&trial, data) < base {
                model.params_mut().copy_from_slice(trial.params());
                improved = true;
                break;
            }
            alpha *= 0.5;
        }
        if !improved {
            // No step along the Newton direction improves the objective even
            // after 30 halvings: θ is numerically optimal for this data.
            stalled = true;
            break;
        }
    }
    full_gradient(model, data, &mut grad);
    let grad_norm = vecops::norm2(&grad);
    TrainReport {
        iterations,
        final_loss: objective(model, data),
        grad_norm,
        converged: grad_norm < cfg.grad_tol || stalled,
    }
}

/// Trains with the method best suited to the model: Newton for models with
/// analytic Hessians, gradient descent otherwise.
pub fn fit_default<M: Differentiable>(model: &mut M, data: &Encoded) -> TrainReport {
    if model.has_analytic_hessian() {
        fit_newton(model, data, &NewtonConfig::default())
    } else {
        fit_gd(model, data, &GdConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearSvm, LogisticRegression, Mlp};
    use gopher_data::generators::german;
    use gopher_data::Encoder;
    use gopher_prng::Rng;

    fn german_encoded(n: usize) -> Encoded {
        let d = german(n, 5);
        let enc = Encoder::fit(&d);
        enc.transform(&d)
    }

    #[test]
    fn newton_reaches_stationary_point_for_logistic() {
        let data = german_encoded(600);
        let mut model = LogisticRegression::new(data.n_cols(), 1e-3);
        let report = fit_newton(&mut model, &data, &NewtonConfig::default());
        assert!(report.converged, "grad norm {}", report.grad_norm);
        assert!(report.grad_norm < 1e-8);
        let acc = accuracy(&model, &data);
        assert!(acc > 0.65, "training accuracy {acc}");
    }

    #[test]
    fn gd_approaches_newton_solution_on_logistic() {
        let data = german_encoded(300);
        let mut newton = LogisticRegression::new(data.n_cols(), 1e-2);
        fit_newton(&mut newton, &data, &NewtonConfig::default());
        let mut gd = LogisticRegression::new(data.n_cols(), 1e-2);
        let report = fit_gd(
            &mut gd,
            &data,
            &GdConfig {
                learning_rate: 0.5,
                max_epochs: 8000,
                grad_tol: 1e-7,
                momentum: 0.9,
            },
        );
        assert!(report.converged, "gd grad norm {}", report.grad_norm);
        let gap = objective(&gd, &data) - objective(&newton, &data);
        assert!(gap.abs() < 1e-5, "objective gap {gap}");
    }

    #[test]
    fn svm_trains_to_low_gradient() {
        let data = german_encoded(400);
        let mut model = LinearSvm::new(data.n_cols(), 1e-3);
        let report = fit_newton(&mut model, &data, &NewtonConfig::default());
        // Squared hinge is piecewise quadratic: Newton converges fast, but a
        // support-vector boundary crossing can stall it slightly above tol.
        assert!(report.grad_norm < 1e-5, "grad norm {}", report.grad_norm);
        assert!(accuracy(&model, &data) > 0.65);
    }

    #[test]
    fn mlp_trains_with_gd() {
        let data = german_encoded(300);
        let mut rng = Rng::new(3);
        let mut model = Mlp::new(data.n_cols(), 6, 1e-3, &mut rng);
        let before = objective(&model, &data);
        let report = fit_gd(
            &mut model,
            &data,
            &GdConfig {
                learning_rate: 0.3,
                max_epochs: 3000,
                grad_tol: 1e-5,
                momentum: 0.9,
            },
        );
        assert!(report.final_loss < before, "loss must decrease");
        assert!(report.grad_norm < 1e-3, "grad norm {}", report.grad_norm);
        assert!(accuracy(&model, &data) > 0.7);
    }

    #[test]
    fn objective_includes_regularization() {
        let data = german_encoded(50);
        let mut model = LogisticRegression::new(data.n_cols(), 1.0);
        model.params_mut().iter_mut().for_each(|t| *t = 1.0);
        let with_reg = objective(&model, &data);
        let mut unreg = LogisticRegression::new(data.n_cols(), 0.0);
        unreg.params_mut().iter_mut().for_each(|t| *t = 1.0);
        let without = objective(&unreg, &data);
        let p = model.n_params() as f64;
        assert!((with_reg - without - 0.5 * p).abs() < 1e-9);
    }

    #[test]
    fn full_gradient_is_zero_at_optimum() {
        let data = german_encoded(200);
        let mut model = LogisticRegression::new(data.n_cols(), 1e-2);
        fit_newton(&mut model, &data, &NewtonConfig::default());
        let mut g = vec![0.0; model.n_params()];
        full_gradient(&model, &data, &mut g);
        assert!(vecops::norm2(&g) < 1e-8);
    }

    #[test]
    fn warm_start_retraining_is_fast() {
        let data = german_encoded(400);
        let mut model = LogisticRegression::new(data.n_cols(), 1e-3);
        fit_newton(&mut model, &data, &NewtonConfig::default());
        // Remove 5% of rows and retrain from the previous optimum.
        let mask: Vec<bool> = (0..data.n_rows()).map(|r| r % 20 == 0).collect();
        let reduced = data.remove_rows(&mask);
        let mut warm = model.clone();
        let report = fit_newton(&mut warm, &reduced, &NewtonConfig::default());
        assert!(report.converged);
        assert!(
            report.iterations <= 10,
            "warm start took {} iterations",
            report.iterations
        );
    }
}
