//! Linear SVM with squared-hinge loss.

use crate::{sigmoid, Differentiable, Model};
use gopher_linalg::{vecops, Matrix};

/// A linear support vector machine trained with the *squared* hinge loss,
/// which (unlike the plain hinge) is differentiable everywhere and twice
/// differentiable except on the measure-zero set `margin = 1` — satisfying
/// the paper's smoothness requirement for influence functions.
///
/// With `ỹ = 2y − 1 ∈ {−1, +1}` and margin `m = ỹ (wᵀx + b)`:
/// * loss `L = max(0, 1 − m)²`
/// * gradient `∇θL = −2 max(0, 1 − m) ỹ x̃`
/// * Hessian `∇²θL = 2 x̃ x̃ᵀ` if `m < 1`, else `0` (rank-1, analytic)
///
/// Probabilities use the sigmoid of the decision value (a fixed-scale Platt
/// calibration). This surrogate is what the smooth fairness metrics and
/// their θ-gradients are computed from; hard predictions use the sign of the
/// decision function, consistent with `σ(z) ≥ 0.5 ⇔ z ≥ 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    params: Vec<f64>,
    n_inputs: usize,
    l2: f64,
}

impl LinearSvm {
    /// Creates a zero-initialized SVM for `n_inputs` features.
    ///
    /// # Panics
    /// If `l2` is negative or non-finite.
    pub fn new(n_inputs: usize, l2: f64) -> Self {
        assert!(
            l2 >= 0.0 && l2.is_finite(),
            "l2 must be a non-negative finite value"
        );
        Self {
            params: vec![0.0; n_inputs + 1],
            n_inputs,
            l2,
        }
    }

    /// The decision-function value `wᵀx + b`.
    #[inline]
    pub fn decision(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.n_inputs);
        vecops::dot(&self.params[..self.n_inputs], x) + self.params[self.n_inputs]
    }

    /// The hinge slack `max(0, 1 − m)` for a labeled example.
    #[inline]
    fn slack(&self, x: &[f64], y: f64) -> (f64, f64) {
        let ty = 2.0 * y - 1.0;
        let margin = ty * self.decision(x);
        ((1.0 - margin).max(0.0), ty)
    }
}

impl Model for LinearSvm {
    fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        sigmoid(self.decision(x))
    }
}

impl Differentiable for LinearSvm {
    fn n_params(&self) -> usize {
        self.n_inputs + 1
    }

    fn params(&self) -> &[f64] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn l2(&self) -> f64 {
        self.l2
    }

    fn loss(&self, x: &[f64], y: f64) -> f64 {
        let (slack, _) = self.slack(x, y);
        slack * slack
    }

    fn accumulate_grad(&self, x: &[f64], y: f64, out: &mut [f64]) {
        let (slack, ty) = self.slack(x, y);
        if slack == 0.0 {
            return;
        }
        let scale = -2.0 * slack * ty;
        vecops::axpy(scale, x, &mut out[..self.n_inputs]);
        out[self.n_inputs] += scale;
    }

    fn accumulate_grad_proba(&self, x: &[f64], out: &mut [f64]) {
        let p = self.predict_proba(x);
        let w = p * (1.0 - p);
        vecops::axpy(w, x, &mut out[..self.n_inputs]);
        out[self.n_inputs] += w;
    }

    fn has_analytic_hessian(&self) -> bool {
        true
    }

    fn accumulate_hessian_vec(&self, x: &[f64], y: f64, v: &[f64], out: &mut [f64]) {
        let (slack, _) = self.slack(x, y);
        if slack == 0.0 {
            return;
        }
        let xv = vecops::dot(x, &v[..self.n_inputs]) + v[self.n_inputs];
        let scale = 2.0 * xv;
        vecops::axpy(scale, x, &mut out[..self.n_inputs]);
        out[self.n_inputs] += scale;
    }

    fn accumulate_hessian(&self, x: &[f64], y: f64, out: &mut Matrix) {
        let (slack, _) = self.slack(x, y);
        if slack == 0.0 {
            return;
        }
        let d = self.n_inputs;
        for i in 0..d {
            let s = 2.0 * x[i];
            let row = out.row_mut(i);
            vecops::axpy(s, x, &mut row[..d]);
            row[d] += s;
        }
        let last = out.row_mut(d);
        vecops::axpy(2.0, x, &mut last[..d]);
        last[d] += 2.0;
    }

    fn hessian_rank_one(&self, x: &[f64], y: f64, aug: &mut [f64]) -> Option<f64> {
        let d = self.n_inputs;
        debug_assert_eq!(aug.len(), d + 1);
        aug[..d].copy_from_slice(x);
        aug[d] = 1.0;
        let (slack, _) = self.slack(x, y);
        Some(if slack > 0.0 { 2.0 } else { 0.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LinearSvm {
        let mut m = LinearSvm::new(2, 0.0);
        m.params_mut().copy_from_slice(&[1.0, -0.5, 0.1]);
        m
    }

    #[test]
    fn loss_zero_beyond_margin() {
        let m = model();
        // decision(x) = 3.1 for x = [3, 0.2]; label 1 → margin 3.1 > 1.
        let x = [3.0, 0.2];
        assert_eq!(m.loss(&x, 1.0), 0.0);
        let mut g = vec![0.0; 3];
        m.accumulate_grad(&x, 1.0, &mut g);
        assert_eq!(g, vec![0.0; 3], "no gradient beyond the margin");
        // Same point with label 0 is violated: margin = −3.1.
        assert!(m.loss(&x, 0.0) > 0.0);
    }

    #[test]
    fn gradient_matches_finite_difference_inside_margin() {
        let m = model();
        let x = [0.3, 0.4]; // decision 0.2 → inside margin for both labels
        for &y in &[0.0, 1.0] {
            let mut g = vec![0.0; 3];
            m.accumulate_grad(&x, y, &mut g);
            let eps = 1e-6;
            for j in 0..3 {
                let mut mp = m.clone();
                mp.params_mut()[j] += eps;
                let mut mm = m.clone();
                mm.params_mut()[j] -= eps;
                let fd = (mp.loss(&x, y) - mm.loss(&x, y)) / (2.0 * eps);
                assert!(
                    (g[j] - fd).abs() < 1e-5,
                    "y={y} param {j}: {} vs {fd}",
                    g[j]
                );
            }
        }
    }

    #[test]
    fn hessian_vec_matches_full_hessian() {
        let m = model();
        let x = [0.3, 0.4];
        let y = 0.0;
        let mut h = Matrix::zeros(3, 3);
        m.accumulate_hessian(&x, y, &mut h);
        let v = [1.0, 2.0, -0.5];
        let mut hv = vec![0.0; 3];
        m.accumulate_hessian_vec(&x, y, &v, &mut hv);
        let expected = h.matvec(&v);
        for j in 0..3 {
            assert!((hv[j] - expected[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn hessian_zero_beyond_margin() {
        let m = model();
        let x = [3.0, 0.2];
        let mut h = Matrix::zeros(3, 3);
        m.accumulate_hessian(&x, 1.0, &mut h);
        assert_eq!(h.max_abs(), 0.0);
    }

    #[test]
    fn rank_one_structure_matches_full_hessian() {
        let m = model();
        let mut aug = vec![0.0; 3];
        // Inside the margin: weight 2, x̃ = [x, 1].
        let x = [0.3, 0.4];
        let w = m
            .hessian_rank_one(&x, 0.0, &mut aug)
            .expect("SVM is rank-1");
        assert_eq!(w, 2.0);
        let mut h = Matrix::zeros(3, 3);
        m.accumulate_hessian(&x, 0.0, &mut h);
        let mut outer = Matrix::zeros(3, 3);
        outer.rank1_update(w, &aug);
        for i in 0..3 {
            for j in 0..3 {
                assert!((h[(i, j)] - outer[(i, j)]).abs() < 1e-12);
            }
        }
        // Beyond the margin: zero weight matches the zero Hessian.
        let far = [3.0, 0.2];
        assert_eq!(m.hessian_rank_one(&far, 1.0, &mut aug), Some(0.0));
    }

    #[test]
    fn predictions_follow_decision_sign() {
        let m = model();
        assert_eq!(m.predict(&[3.0, 0.2]), 1.0);
        assert_eq!(m.predict(&[-3.0, 0.2]), 0.0);
        assert!(m.predict_proba(&[3.0, 0.2]) > 0.5);
        assert!(m.predict_proba(&[-3.0, 0.2]) < 0.5);
    }
}
