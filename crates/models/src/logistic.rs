//! L2-regularized logistic regression.

use crate::{log_sigmoid, sigmoid, Differentiable, Model};
use gopher_linalg::{vecops, Matrix};

/// Logistic regression: `p(x) = σ(wᵀx + b)` with cross-entropy loss.
///
/// Parameter layout: `[w₀ … w_{d−1}, b]`.
///
/// Per-example quantities (with `x̃ = [x, 1]`, `p = σ(θᵀx̃)`):
/// * loss `L = −[y ln p + (1−y) ln(1−p)]`
/// * gradient `∇θL = (p − y) x̃`
/// * Hessian `∇²θL = p(1−p) x̃ x̃ᵀ` (rank-1, analytic)
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    params: Vec<f64>,
    n_inputs: usize,
    l2: f64,
}

impl LogisticRegression {
    /// Creates a zero-initialized model for `n_inputs` features with L2
    /// strength `l2`.
    ///
    /// # Panics
    /// If `l2` is negative or non-finite.
    pub fn new(n_inputs: usize, l2: f64) -> Self {
        assert!(
            l2 >= 0.0 && l2.is_finite(),
            "l2 must be a non-negative finite value"
        );
        Self {
            params: vec![0.0; n_inputs + 1],
            n_inputs,
            l2,
        }
    }

    /// The decision-function value `wᵀx + b`.
    #[inline]
    pub fn decision(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.n_inputs);
        vecops::dot(&self.params[..self.n_inputs], x) + self.params[self.n_inputs]
    }
}

impl Model for LogisticRegression {
    fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        sigmoid(self.decision(x))
    }

    fn predict(&self, x: &[f64]) -> f64 {
        // `sigmoid(z) >= 0.5` iff `z >= 0`: threshold the raw decision and
        // skip the exponential.
        if self.decision(x) >= 0.0 {
            1.0
        } else {
            0.0
        }
    }
}

impl Differentiable for LogisticRegression {
    fn n_params(&self) -> usize {
        self.n_inputs + 1
    }

    fn params(&self) -> &[f64] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn l2(&self) -> f64 {
        self.l2
    }

    fn loss(&self, x: &[f64], y: f64) -> f64 {
        let z = self.decision(x);
        // Stable cross-entropy: −[y ln σ(z) + (1−y) ln σ(−z)].
        -(y * log_sigmoid(z) + (1.0 - y) * log_sigmoid(-z))
    }

    fn accumulate_grad(&self, x: &[f64], y: f64, out: &mut [f64]) {
        let residual = self.predict_proba(x) - y;
        vecops::axpy(residual, x, &mut out[..self.n_inputs]);
        out[self.n_inputs] += residual;
    }

    fn accumulate_grad_and_loss(&self, x: &[f64], y: f64, out: &mut [f64]) -> f64 {
        // One decision evaluation serves both: `sigmoid(z)` drives the
        // gradient residual, `log_sigmoid(±z)` the cross-entropy. Matches
        // `accumulate_grad` + `loss` bit for bit (identical `z`).
        let z = self.decision(x);
        let residual = sigmoid(z) - y;
        vecops::axpy(residual, x, &mut out[..self.n_inputs]);
        out[self.n_inputs] += residual;
        -(y * log_sigmoid(z) + (1.0 - y) * log_sigmoid(-z))
    }

    fn accumulate_grad_proba(&self, x: &[f64], out: &mut [f64]) {
        let p = self.predict_proba(x);
        let w = p * (1.0 - p);
        vecops::axpy(w, x, &mut out[..self.n_inputs]);
        out[self.n_inputs] += w;
    }

    fn has_analytic_hessian(&self) -> bool {
        true
    }

    fn accumulate_hessian_vec(&self, x: &[f64], _y: f64, v: &[f64], out: &mut [f64]) {
        let p = self.predict_proba(x);
        let w = p * (1.0 - p);
        // (x̃ᵀ v) with x̃ = [x, 1].
        let xv = vecops::dot(x, &v[..self.n_inputs]) + v[self.n_inputs];
        let scale = w * xv;
        vecops::axpy(scale, x, &mut out[..self.n_inputs]);
        out[self.n_inputs] += scale;
    }

    fn accumulate_hessian(&self, x: &[f64], _y: f64, out: &mut Matrix) {
        let p = self.predict_proba(x);
        let w = p * (1.0 - p);
        let d = self.n_inputs;
        // Rank-1 update with x̃ = [x, 1] without materializing x̃.
        for i in 0..d {
            let s = w * x[i];
            if s == 0.0 {
                continue;
            }
            let row = out.row_mut(i);
            vecops::axpy(s, x, &mut row[..d]);
            row[d] += s;
        }
        let last = out.row_mut(d);
        vecops::axpy(w, x, &mut last[..d]);
        last[d] += w;
    }

    fn hessian_rank_one(&self, x: &[f64], _y: f64, aug: &mut [f64]) -> Option<f64> {
        let d = self.n_inputs;
        debug_assert_eq!(aug.len(), d + 1);
        aug[..d].copy_from_slice(x);
        aug[d] = 1.0;
        let p = self.predict_proba(x);
        Some(p * (1.0 - p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LogisticRegression {
        let mut m = LogisticRegression::new(2, 0.0);
        m.params_mut().copy_from_slice(&[0.5, -1.0, 0.25]);
        m
    }

    #[test]
    fn proba_matches_sigmoid_of_decision() {
        let m = model();
        let x = [1.0, 2.0];
        let z = 0.5 - 2.0 + 0.25;
        assert!((m.predict_proba(&x) - sigmoid(z)).abs() < 1e-15);
        assert_eq!(m.predict(&x), 0.0);
    }

    #[test]
    fn loss_matches_cross_entropy() {
        let m = model();
        let x = [1.0, 2.0];
        let p = m.predict_proba(&x);
        assert!((m.loss(&x, 1.0) + p.ln()).abs() < 1e-12);
        assert!((m.loss(&x, 0.0) + (1.0 - p).ln()).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let m = model();
        let x = [0.7, -1.3];
        let y = 1.0;
        let mut g = vec![0.0; 3];
        m.accumulate_grad(&x, y, &mut g);
        let eps = 1e-6;
        for j in 0..3 {
            let mut mp = m.clone();
            mp.params_mut()[j] += eps;
            let mut mm = m.clone();
            mm.params_mut()[j] -= eps;
            let fd = (mp.loss(&x, y) - mm.loss(&x, y)) / (2.0 * eps);
            assert!((g[j] - fd).abs() < 1e-6, "param {j}: {} vs {fd}", g[j]);
        }
    }

    #[test]
    fn grad_proba_matches_finite_difference() {
        let m = model();
        let x = [0.7, -1.3];
        let mut g = vec![0.0; 3];
        m.accumulate_grad_proba(&x, &mut g);
        let eps = 1e-6;
        for j in 0..3 {
            let mut mp = m.clone();
            mp.params_mut()[j] += eps;
            let mut mm = m.clone();
            mm.params_mut()[j] -= eps;
            let fd = (mp.predict_proba(&x) - mm.predict_proba(&x)) / (2.0 * eps);
            assert!((g[j] - fd).abs() < 1e-7, "param {j}: {} vs {fd}", g[j]);
        }
    }

    #[test]
    fn analytic_hessian_matches_default_hvp_path() {
        let m = model();
        let x = [0.7, -1.3];
        let y = 0.0;
        // Full Hessian via the analytic override.
        let mut h = Matrix::zeros(3, 3);
        m.accumulate_hessian(&x, y, &mut h);
        // Hessian-vector product against a probe, two ways.
        let v = [0.3, -0.2, 0.9];
        let mut hv_analytic = vec![0.0; 3];
        m.accumulate_hessian_vec(&x, y, &v, &mut hv_analytic);
        let hv_from_matrix = h.matvec(&v);
        for j in 0..3 {
            assert!((hv_analytic[j] - hv_from_matrix[j]).abs() < 1e-12);
        }
        // And against finite differences of the gradient.
        let mut hv_fd = vec![0.0; 3];
        crate::finite_diff_hvp(&m, &x, y, &v, &mut hv_fd);
        for j in 0..3 {
            assert!(
                (hv_analytic[j] - hv_fd[j]).abs() < 1e-5,
                "param {j}: {} vs {}",
                hv_analytic[j],
                hv_fd[j]
            );
        }
    }

    #[test]
    fn hessian_is_symmetric_psd_diagonal() {
        let m = model();
        let x = [2.0, 3.0];
        let mut h = Matrix::zeros(3, 3);
        m.accumulate_hessian(&x, 1.0, &mut h);
        for i in 0..3 {
            assert!(h[(i, i)] >= 0.0, "diagonal must be non-negative");
            for j in 0..3 {
                assert!((h[(i, j)] - h[(j, i)]).abs() < 1e-12, "symmetry");
            }
        }
    }

    #[test]
    fn rank_one_structure_matches_full_hessian() {
        let m = model();
        let x = [0.7, -1.3];
        let mut aug = vec![0.0; 3];
        let w = m.hessian_rank_one(&x, 1.0, &mut aug).expect("LR is rank-1");
        assert_eq!(aug, vec![0.7, -1.3, 1.0]);
        let mut h = Matrix::zeros(3, 3);
        m.accumulate_hessian(&x, 1.0, &mut h);
        let mut outer = Matrix::zeros(3, 3);
        outer.rank1_update(w, &aug);
        for i in 0..3 {
            for j in 0..3 {
                assert!((h[(i, j)] - outer[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "l2 must be a non-negative finite value")]
    fn rejects_negative_l2() {
        let _ = LogisticRegression::new(2, -1.0);
    }
}
