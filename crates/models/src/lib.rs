//! Twice-differentiable binary classifiers.
//!
//! The paper's machinery (influence functions, one-step gradient descent,
//! update-based explanations) needs, for a trained model with parameters θ:
//!
//! * the per-example data loss `L(z, θ)` and its gradient `∇θ L(z, θ)`;
//! * Hessian–vector products `∇²θ L(z, θ) · v` (analytic where cheap,
//!   finite-difference otherwise);
//! * the predicted probability `p(x; θ)` and its parameter gradient
//!   `∇θ p(x; θ)` (used by the smooth fairness metrics).
//!
//! Three models cover the paper's evaluation:
//! [`LogisticRegression`], [`LinearSvm`] (squared hinge — twice
//! differentiable almost everywhere, with a sigmoid probability surrogate),
//! and [`Mlp`] (one hidden layer of 10 tanh units, the paper's feed-forward
//! network).
//!
//! L2 regularization strength is carried *by the model* (`Model::l2`) so the
//! trainer and the influence engine can never disagree about the objective:
//!
//! `J(θ) = (1/n) Σᵢ L(zᵢ, θ) + (λ/2)‖θ‖²`.

#![forbid(unsafe_code)]

mod forest;
mod logistic;
mod mlp;
mod svm;
pub mod train;

pub use forest::{Forest, ForestConfig};
pub use logistic::LogisticRegression;
pub use mlp::Mlp;
pub use svm::LinearSvm;

use gopher_linalg::Matrix;

/// A binary classifier: the prediction-side contract every model family
/// satisfies, differentiable or not.
///
/// Models are `Send + Sync`: the parallel query engine shares one trained
/// model across scorer threads and clones it into ground-truth retraining
/// workers, so a model must be plain data (parameter vectors for the
/// analytic families, bagged trees for [`Forest`]).
///
/// Everything gradient-shaped lives on the [`Differentiable`] subtrait, so
/// non-analytic families (tree ensembles) type-check against
/// prediction-level code and fail to *compile* — rather than panic — when
/// handed to Hessian-based machinery.
pub trait Model: Clone + Send + Sync {
    /// Number of input features (length of the `x` slices).
    fn n_inputs(&self) -> usize;

    /// Predicted probability of the favorable class, `p(x; θ) ∈ (0, 1)`.
    fn predict_proba(&self, x: &[f64]) -> f64;

    /// Hard prediction with the conventional 0.5 threshold.
    fn predict(&self, x: &[f64]) -> f64 {
        if self.predict_proba(x) >= 0.5 {
            1.0
        } else {
            0.0
        }
    }
}

/// A [`Model`] with a twice-differentiable per-example loss over an explicit
/// parameter vector θ — the contract the Hessian-based influence engine and
/// the gradient trainers require.
///
/// All gradient-like methods *accumulate* into their output buffer so callers
/// can sum over examples without intermediate allocations. Implementations
/// must keep `params`, `n_params` and `n_inputs` mutually consistent.
pub trait Differentiable: Model {
    /// Number of parameters (length of [`params`](Self::params)).
    fn n_params(&self) -> usize;

    /// Current parameter vector θ.
    fn params(&self) -> &[f64];

    /// Mutable parameter vector.
    fn params_mut(&mut self) -> &mut [f64];

    /// L2 regularization strength λ of the training objective.
    fn l2(&self) -> f64;

    /// Per-example data loss `L(z, θ)` (no regularization term).
    fn loss(&self, x: &[f64], y: f64) -> f64;

    /// Accumulates `∇θ L(z, θ)` into `out` (`out += grad`).
    fn accumulate_grad(&self, x: &[f64], y: f64, out: &mut [f64]);

    /// Accumulates `∇θ L(z, θ)` into `out` and returns `L(z, θ)` from the
    /// same pass. The default evaluates gradient and loss separately;
    /// models whose gradient and loss share a decision value should
    /// override to compute it once. Implementations must return exactly
    /// [`loss`](Self::loss) — callers rely on the fused pass being
    /// bit-identical to the two-pass form.
    fn accumulate_grad_and_loss(&self, x: &[f64], y: f64, out: &mut [f64]) -> f64 {
        self.accumulate_grad(x, y, out);
        self.loss(x, y)
    }

    /// Accumulates `∇θ p(x; θ)` into `out`.
    fn accumulate_grad_proba(&self, x: &[f64], out: &mut [f64]);

    /// Whether [`accumulate_hessian`](Self::accumulate_hessian) and
    /// [`accumulate_hessian_vec`](Self::accumulate_hessian_vec) are analytic
    /// (exact). When false, the finite-difference defaults are used.
    fn has_analytic_hessian(&self) -> bool {
        false
    }

    /// Accumulates the per-example Hessian–vector product
    /// `∇²θ L(z, θ) · v` into `out`.
    ///
    /// Default: central finite difference of the analytic gradient along `v`
    /// (two gradient evaluations; error O(ε²)).
    fn accumulate_hessian_vec(&self, x: &[f64], y: f64, v: &[f64], out: &mut [f64]) {
        finite_diff_hvp(self, x, y, v, out);
    }

    /// Accumulates the per-example Hessian `∇²θ L(z, θ)` into `out`.
    ///
    /// Default: `n_params` Hessian–vector products against basis vectors.
    /// Models with structured Hessians (rank-1 for GLMs) should override.
    fn accumulate_hessian(&self, x: &[f64], y: f64, out: &mut Matrix) {
        let p = self.n_params();
        debug_assert_eq!(out.rows(), p);
        debug_assert_eq!(out.cols(), p);
        let mut basis = vec![0.0; p];
        let mut col = vec![0.0; p];
        for j in 0..p {
            basis[j] = 1.0;
            col.iter_mut().for_each(|c| *c = 0.0);
            self.accumulate_hessian_vec(x, y, &basis, &mut col);
            for (i, &ci) in col.iter().enumerate() {
                out[(i, j)] += ci;
            }
            basis[j] = 0.0;
        }
    }

    /// Exposes the rank-1 structure of the per-example Hessian, when the
    /// model has one: writes the augmented feature vector `x̃` (length
    /// `n_params`) into `aug` and returns the weight `w` such that
    /// `∇²θ L(z, θ) = w · x̃ x̃ᵀ`. Returns `None` for models without that
    /// structure (the finite-difference / full-assembly paths apply); a
    /// returned weight may be `0.0` (e.g. a non-support vector), in which
    /// case the contribution is the zero matrix and `aug` may be ignored.
    ///
    /// This is what lets the influence engine patch its Hessian factor with
    /// rank-1 Cholesky updates and Woodbury solves instead of refactoring.
    fn hessian_rank_one(&self, x: &[f64], y: f64, aug: &mut [f64]) -> Option<f64> {
        let _ = (x, y, aug);
        None
    }
}

/// Relative step used by the finite-difference Hessian–vector product.
const FD_EPS: f64 = 1e-5;

/// Central-difference Hessian–vector product shared by the trait default.
fn finite_diff_hvp<M: Differentiable>(model: &M, x: &[f64], y: f64, v: &[f64], out: &mut [f64]) {
    let p = model.n_params();
    debug_assert_eq!(v.len(), p);
    debug_assert_eq!(out.len(), p);
    let vnorm = gopher_linalg::vecops::norm_inf(v);
    if vnorm == 0.0 {
        return;
    }
    // Scale the step to the direction's magnitude for stable differencing.
    let eps = FD_EPS / vnorm.max(1e-12);
    let mut plus = model.clone();
    for (t, vi) in plus.params_mut().iter_mut().zip(v) {
        *t += eps * vi;
    }
    let mut minus = model.clone();
    for (t, vi) in minus.params_mut().iter_mut().zip(v) {
        *t -= eps * vi;
    }
    let mut gp = vec![0.0; p];
    let mut gm = vec![0.0; p];
    plus.accumulate_grad(x, y, &mut gp);
    minus.accumulate_grad(x, y, &mut gm);
    let scale = 1.0 / (2.0 * eps);
    for ((o, a), b) in out.iter_mut().zip(&gp).zip(&gm) {
        *o += (a - b) * scale;
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable `ln(σ(z))`.
#[inline]
pub fn log_sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        -(-z).exp().ln_1p()
    } else {
        z - z.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(-1000.0) < 1e-300);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn log_sigmoid_matches_ln_of_sigmoid() {
        for &z in &[-3.0, -0.5, 0.0, 0.5, 3.0] {
            assert!((log_sigmoid(z) - sigmoid(z).ln()).abs() < 1e-12, "z={z}");
        }
        // And stays finite where naive ln(sigmoid) underflows.
        assert!(log_sigmoid(-800.0).is_finite());
        assert!((log_sigmoid(-800.0) + 800.0).abs() < 1e-9);
    }
}
