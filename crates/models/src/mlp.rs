//! One-hidden-layer feed-forward network (the paper's neural classifier).

use crate::{log_sigmoid, sigmoid, Differentiable, Model};
use gopher_linalg::vecops;
use gopher_prng::Rng;

/// A feed-forward network with one tanh hidden layer and a sigmoid output,
/// matching the paper's "1 layer, 10 nodes" configuration.
///
/// Architecture: `p(x) = σ(w₂ᵀ tanh(W₁ x + b₁) + b₂)` with cross-entropy
/// loss. Parameter layout (a single flat vector, enabling generic
/// finite-difference Hessians):
///
/// ```text
/// [ W₁ row 0 | W₁ row 1 | … | W₁ row h−1 | b₁ | w₂ | b₂ ]
/// ```
///
/// The loss is non-convex, so the Hessian at the optimum may be indefinite;
/// the influence engine damps it (see `gopher-influence`). There is no cheap
/// exact per-example Hessian, so this model keeps the trait's
/// finite-difference defaults (`has_analytic_hessian() == false`).
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    params: Vec<f64>,
    n_inputs: usize,
    hidden: usize,
    l2: f64,
}

/// Intermediate activations reused between forward and backward passes.
struct Forward {
    /// Hidden activations `tanh(W₁x + b₁)`.
    h: Vec<f64>,
    /// Output probability.
    p: f64,
    /// Pre-sigmoid output.
    z: f64,
}

impl Mlp {
    /// Creates an MLP with `hidden` tanh units and small random initial
    /// weights (scaled by 1/√fan-in, drawn from `rng`).
    ///
    /// # Panics
    /// If `hidden == 0` or `l2` is negative/non-finite.
    pub fn new(n_inputs: usize, hidden: usize, l2: f64, rng: &mut Rng) -> Self {
        assert!(hidden > 0, "mlp needs at least one hidden unit");
        assert!(
            l2 >= 0.0 && l2.is_finite(),
            "l2 must be a non-negative finite value"
        );
        let n_params = hidden * n_inputs + hidden + hidden + 1;
        let mut params = Vec::with_capacity(n_params);
        let w1_scale = 1.0 / (n_inputs as f64).sqrt();
        for _ in 0..hidden * n_inputs {
            params.push(rng.normal_with(0.0, w1_scale));
        }
        params.extend(std::iter::repeat_n(0.0, hidden)); // b₁
        let w2_scale = 1.0 / (hidden as f64).sqrt();
        for _ in 0..hidden {
            params.push(rng.normal_with(0.0, w2_scale));
        }
        params.push(0.0); // b₂
        Self {
            params,
            n_inputs,
            hidden,
            l2,
        }
    }

    /// Number of hidden units.
    pub fn hidden_units(&self) -> usize {
        self.hidden
    }

    #[inline]
    fn w1_row(&self, unit: usize) -> &[f64] {
        let start = unit * self.n_inputs;
        &self.params[start..start + self.n_inputs]
    }

    #[inline]
    fn b1(&self) -> &[f64] {
        let start = self.hidden * self.n_inputs;
        &self.params[start..start + self.hidden]
    }

    #[inline]
    fn w2(&self) -> &[f64] {
        let start = self.hidden * self.n_inputs + self.hidden;
        &self.params[start..start + self.hidden]
    }

    #[inline]
    fn b2(&self) -> f64 {
        self.params[self.params.len() - 1]
    }

    fn forward(&self, x: &[f64]) -> Forward {
        debug_assert_eq!(x.len(), self.n_inputs);
        let mut h = Vec::with_capacity(self.hidden);
        let b1 = self.b1();
        for unit in 0..self.hidden {
            let a = vecops::dot(self.w1_row(unit), x) + b1[unit];
            h.push(a.tanh());
        }
        let z = vecops::dot(self.w2(), &h) + self.b2();
        Forward {
            p: sigmoid(z),
            h,
            z,
        }
    }

    /// Backpropagates `dz` (the derivative of the scalar objective w.r.t. the
    /// pre-sigmoid output `z`) into the parameter-gradient buffer.
    fn backprop(&self, x: &[f64], fwd: &Forward, dz: f64, out: &mut [f64]) {
        let h = &fwd.h;
        let w2 = self.w2();
        let d = self.n_inputs;
        let hidden = self.hidden;
        // Output layer.
        let w2_start = hidden * d + hidden;
        for (i, &hi) in h.iter().enumerate() {
            out[w2_start + i] += dz * hi;
        }
        out[hidden * d + hidden + hidden] += dz; // b₂
                                                 // Hidden layer.
        for unit in 0..hidden {
            let da = dz * w2[unit] * (1.0 - h[unit] * h[unit]);
            if da == 0.0 {
                continue;
            }
            let row = &mut out[unit * d..(unit + 1) * d];
            vecops::axpy(da, x, row);
            out[hidden * d + unit] += da; // b₁
        }
    }
}

impl Model for Mlp {
    fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        self.forward(x).p
    }
}

impl Differentiable for Mlp {
    fn n_params(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> &[f64] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn l2(&self) -> f64 {
        self.l2
    }

    fn loss(&self, x: &[f64], y: f64) -> f64 {
        let fwd = self.forward(x);
        -(y * log_sigmoid(fwd.z) + (1.0 - y) * log_sigmoid(-fwd.z))
    }

    fn accumulate_grad(&self, x: &[f64], y: f64, out: &mut [f64]) {
        let fwd = self.forward(x);
        self.backprop(x, &fwd, fwd.p - y, out);
    }

    fn accumulate_grad_proba(&self, x: &[f64], out: &mut [f64]) {
        let fwd = self.forward(x);
        self.backprop(x, &fwd, fwd.p * (1.0 - fwd.p), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Mlp {
        let mut rng = Rng::new(42);
        Mlp::new(3, 4, 0.0, &mut rng)
    }

    #[test]
    fn parameter_layout_sizes() {
        let m = model();
        assert_eq!(m.n_params(), 4 * 3 + 4 + 4 + 1);
        assert_eq!(m.n_inputs(), 3);
        assert_eq!(m.hidden_units(), 4);
    }

    #[test]
    fn loss_matches_cross_entropy_of_proba() {
        let m = model();
        let x = [0.5, -1.0, 2.0];
        let p = m.predict_proba(&x);
        assert!((m.loss(&x, 1.0) + p.ln()).abs() < 1e-10);
        assert!((m.loss(&x, 0.0) + (1.0 - p).ln()).abs() < 1e-10);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let m = model();
        let x = [0.5, -1.0, 2.0];
        for &y in &[0.0, 1.0] {
            let mut g = vec![0.0; m.n_params()];
            m.accumulate_grad(&x, y, &mut g);
            let eps = 1e-6;
            for j in 0..m.n_params() {
                let mut mp = m.clone();
                mp.params_mut()[j] += eps;
                let mut mm = m.clone();
                mm.params_mut()[j] -= eps;
                let fd = (mp.loss(&x, y) - mm.loss(&x, y)) / (2.0 * eps);
                assert!(
                    (g[j] - fd).abs() < 1e-5,
                    "y={y} param {j}: analytic {} vs fd {fd}",
                    g[j]
                );
            }
        }
    }

    #[test]
    fn grad_proba_matches_finite_difference() {
        let m = model();
        let x = [0.2, 0.8, -0.4];
        let mut g = vec![0.0; m.n_params()];
        m.accumulate_grad_proba(&x, &mut g);
        let eps = 1e-6;
        for j in 0..m.n_params() {
            let mut mp = m.clone();
            mp.params_mut()[j] += eps;
            let mut mm = m.clone();
            mm.params_mut()[j] -= eps;
            let fd = (mp.predict_proba(&x) - mm.predict_proba(&x)) / (2.0 * eps);
            assert!((g[j] - fd).abs() < 1e-6, "param {j}: {} vs {fd}", g[j]);
        }
    }

    #[test]
    fn finite_diff_hessian_is_symmetric_enough() {
        let m = model();
        let x = [0.5, -1.0, 2.0];
        let p = m.n_params();
        let mut h = gopher_linalg::Matrix::zeros(p, p);
        m.accumulate_hessian(&x, 1.0, &mut h);
        for i in 0..p {
            for j in 0..p {
                assert!(
                    (h[(i, j)] - h[(j, i)]).abs() < 1e-4,
                    "asymmetry at ({i},{j}): {} vs {}",
                    h[(i, j)],
                    h[(j, i)]
                );
            }
        }
    }

    #[test]
    fn hessian_vec_matches_gradient_difference() {
        // Directly validate H·v ≈ (∇L(θ+εv) − ∇L(θ−εv)) / 2ε with an
        // independent ε from the one the default uses.
        let m = model();
        let x = [0.5, -1.0, 2.0];
        let y = 0.0;
        let pn = m.n_params();
        let v: Vec<f64> = (0..pn).map(|i| ((i % 5) as f64 - 2.0) * 0.3).collect();
        let mut hv = vec![0.0; pn];
        m.accumulate_hessian_vec(&x, y, &v, &mut hv);
        let eps = 3e-5;
        let mut mp = m.clone();
        for (t, vi) in mp.params_mut().iter_mut().zip(&v) {
            *t += eps * vi;
        }
        let mut mm = m.clone();
        for (t, vi) in mm.params_mut().iter_mut().zip(&v) {
            *t -= eps * vi;
        }
        let mut gp = vec![0.0; pn];
        let mut gm = vec![0.0; pn];
        mp.accumulate_grad(&x, y, &mut gp);
        mm.accumulate_grad(&x, y, &mut gm);
        for j in 0..pn {
            let fd = (gp[j] - gm[j]) / (2.0 * eps);
            assert!((hv[j] - fd).abs() < 1e-4, "param {j}: {} vs {fd}", hv[j]);
        }
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let mut r1 = Rng::new(7);
        let mut r2 = Rng::new(7);
        let a = Mlp::new(5, 3, 0.01, &mut r1);
        let b = Mlp::new(5, 3, 0.01, &mut r2);
        assert_eq!(a, b);
    }
}
