//! Deterministic pseudo-random number generation for reproducible experiments.
//!
//! Every experiment in this workspace must be bit-reproducible from a seed, so
//! instead of depending on an external RNG crate (whose output may change
//! across versions) we implement two small, well-known generators:
//!
//! * [`SplitMix64`] — used for seeding and for cheap hash-like mixing.
//! * [`Xoshiro256pp`] — the workhorse generator (xoshiro256++ by Blackman and
//!   Vigna), exposed through the [`Rng`] convenience wrapper.
//!
//! [`Rng`] layers sampling utilities on top: uniform floats, integer ranges,
//! Bernoulli draws, normal deviates (Box–Muller), categorical sampling,
//! Fisher–Yates shuffling and sampling without replacement.

#![forbid(unsafe_code)]

mod sampling;

pub use sampling::Categorical;

/// SplitMix64: a tiny 64-bit generator mainly used to expand a user seed into
/// the 256-bit state required by [`Xoshiro256pp`].
///
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014); constants from Vigna's public-domain C version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an arbitrary seed (any value is fine,
    /// including zero).
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 — a fast, high-quality 64-bit generator with 256 bits of
/// state and period 2^256 − 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the full 256-bit state by running SplitMix64 on `seed`, as the
    /// xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot produce
        // four consecutive zeros in practice, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Equivalent to 2^128 calls of [`next_u64`](Self::next_u64); used to
    /// derive independent streams from one seed.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
    }
}

/// Convenience RNG used throughout the workspace.
///
/// Wraps [`Xoshiro256pp`] and provides the sampling primitives the data
/// generators, model initializers and experiments need. Cloning an `Rng`
/// clones its state, producing two identical streams.
#[derive(Debug, Clone)]
pub struct Rng {
    core: Xoshiro256pp,
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl Rng {
    /// Creates an RNG from a seed. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        Self {
            core: Xoshiro256pp::seed_from_u64(seed),
            gauss_spare: None,
        }
    }

    /// Derives an independent child stream; useful for giving each component
    /// of an experiment its own generator while keeping a single master seed.
    pub fn fork(&mut self) -> Rng {
        let mut child = Rng {
            core: self.core.clone(),
            gauss_spare: None,
        };
        child.core.jump();
        // Advance the parent so repeated forks differ.
        self.core.next_u64();
        child
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // Take the top 53 bits: they are the best-mixed bits of xoshiro256++.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. `lo` must be `<= hi`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform_in: lo must be <= hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased multiply-shift
    /// rejection method. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below: n must be positive");
        // Lemire 2019: compute (x * n) >> 64 and reject the biased region.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "range: empty range [{lo}, {hi})");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal deviate via the Box–Muller transform (caching the
    /// second value of each pair).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // u1 in (0, 1] so ln(u1) is finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0, "normal_with: std_dev must be >= 0");
        mean + std_dev * self.normal()
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniformly chooses one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose: empty slice");
        &slice[self.range(0, slice.len())]
    }

    /// Samples `k` distinct indices from `0..n` (uniformly, without
    /// replacement) in random order. Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k={k} > n={n}");
        // Partial Fisher–Yates over an index vector: O(n) setup, O(k) swaps.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.range(i, n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        self.sample_indices(n, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic() {
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn splitmix_known_answer() {
        // First three outputs for seed 0, cross-checked against the reference
        // implementation (https://prng.di.unimi.it/splitmix64.c).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256pp::seed_from_u64(43);
        let equal = (0..100).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(equal < 3, "different seeds should disagree almost always");
    }

    #[test]
    fn jump_produces_disjoint_stream() {
        let mut base = Xoshiro256pp::seed_from_u64(7);
        let mut jumped = base.clone();
        jumped.jump();
        let a: Vec<u64> = (0..50).map(|_| base.next_u64()).collect();
        let b: Vec<u64> = (0..50).map(|_| jumped.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = Rng::new(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn below_is_unbiased_over_small_range() {
        let mut rng = Rng::new(2);
        let mut counts = [0usize; 5];
        let n = 50_000;
        for _ in 0..n {
            counts[rng.below(5) as usize] += 1;
        }
        for (v, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!(
                (frac - 0.2).abs() < 0.02,
                "value {v} has frequency {frac}, expected ~0.2"
            );
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(3);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let z = rng.normal();
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "normal variance {var}");
    }

    #[test]
    fn normal_with_scales_and_shifts() {
        let mut rng = Rng::new(4);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += rng.normal_with(10.0, 2.0);
        }
        assert!((sum / n as f64 - 10.0).abs() < 0.05);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(5);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Rng::new(6);
        let sample = rng.sample_indices(1000, 100);
        assert_eq!(sample.len(), 100);
        let mut seen = vec![false; 1000];
        for &i in &sample {
            assert!(i < 1000);
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
    }

    #[test]
    fn sample_indices_full_is_permutation() {
        let mut rng = Rng::new(7);
        let mut p = rng.sample_indices(10, 10);
        p.sort_unstable();
        assert_eq!(p, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "k=11 > n=10")]
    fn sample_indices_rejects_oversample() {
        let mut rng = Rng::new(8);
        let _ = rng.sample_indices(10, 11);
    }

    #[test]
    fn fork_streams_differ() {
        let mut parent = Rng::new(9);
        let mut child1 = parent.fork();
        let mut child2 = parent.fork();
        let a: Vec<u64> = (0..20).map(|_| child1.next_u64()).collect();
        let b: Vec<u64> = (0..20).map(|_| child2.next_u64()).collect();
        assert_ne!(a, b, "forked children should differ");
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = Rng::new(10);
        let n = 50_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "bernoulli(0.3) freq {frac}");
    }
}
