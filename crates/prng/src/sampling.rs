//! Weighted categorical sampling.

use crate::Rng;

/// A categorical (discrete) distribution over `0..k` built from non-negative
/// weights. Sampling is O(log k) via binary search over the cumulative sum.
///
/// Weights do not need to be normalized. Zero-weight categories are never
/// drawn; at least one weight must be positive.
///
/// ```
/// use gopher_prng::{Categorical, Rng};
/// let dist = Categorical::new(&[1.0, 0.0, 3.0]).unwrap();
/// let mut rng = Rng::new(0);
/// let x = dist.sample(&mut rng);
/// assert!(x == 0 || x == 2);
/// ```
#[derive(Debug, Clone)]
pub struct Categorical {
    /// Strictly increasing cumulative weights; last entry is the total.
    cumulative: Vec<f64>,
}

/// Error for invalid categorical weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CategoricalError {
    /// The weight slice was empty.
    Empty,
    /// A weight was negative or non-finite.
    InvalidWeight(usize),
    /// All weights were zero.
    ZeroTotal,
}

impl std::fmt::Display for CategoricalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "categorical distribution needs at least one weight"),
            Self::InvalidWeight(i) => write!(f, "weight {i} is negative or non-finite"),
            Self::ZeroTotal => write!(f, "all categorical weights are zero"),
        }
    }
}

impl std::error::Error for CategoricalError {}

impl Categorical {
    /// Builds the distribution, validating the weights.
    pub fn new(weights: &[f64]) -> Result<Self, CategoricalError> {
        if weights.is_empty() {
            return Err(CategoricalError::Empty);
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(CategoricalError::InvalidWeight(i));
            }
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return Err(CategoricalError::ZeroTotal);
        }
        Ok(Self { cumulative })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if there are no categories (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws a category index proportional to its weight.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let target = rng.uniform() * total;
        // partition_point returns the first index with cumulative > target.
        let idx = self.cumulative.partition_point(|&c| c <= target);
        idx.min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(Categorical::new(&[]).unwrap_err(), CategoricalError::Empty);
        assert_eq!(
            Categorical::new(&[1.0, -0.5]).unwrap_err(),
            CategoricalError::InvalidWeight(1)
        );
        assert_eq!(
            Categorical::new(&[1.0, f64::NAN]).unwrap_err(),
            CategoricalError::InvalidWeight(1)
        );
        assert_eq!(
            Categorical::new(&[0.0, 0.0]).unwrap_err(),
            CategoricalError::ZeroTotal
        );
    }

    #[test]
    fn frequencies_match_weights() {
        let dist = Categorical::new(&[1.0, 2.0, 7.0]).unwrap();
        let mut rng = Rng::new(11);
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[dist.sample(&mut rng)] += 1;
        }
        let expected = [0.1, 0.2, 0.7];
        for i in 0..3 {
            let frac = counts[i] as f64 / n as f64;
            assert!(
                (frac - expected[i]).abs() < 0.01,
                "category {i}: {frac} vs {}",
                expected[i]
            );
        }
    }

    #[test]
    fn zero_weight_category_never_drawn() {
        let dist = Categorical::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = Rng::new(12);
        for _ in 0..10_000 {
            assert_ne!(dist.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_category_always_drawn() {
        let dist = Categorical::new(&[5.0]).unwrap();
        let mut rng = Rng::new(13);
        for _ in 0..100 {
            assert_eq!(dist.sample(&mut rng), 0);
        }
    }
}
