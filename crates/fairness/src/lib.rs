//! Group fairness metrics with parameter gradients.
//!
//! Implements the three associational fairness notions of the paper
//! (Section 2) as signed *bias* values — positive means the privileged group
//! is favored:
//!
//! * **Statistical parity**: `P(Ŷ=1 | S=1) − P(Ŷ=1 | S=0)`
//! * **Equal opportunity**: `P(Ŷ=1 | Y=1, S=1) − P(Ŷ=1 | Y=1, S=0)`
//! * **Predictive parity**: `P(Y=1 | Ŷ=1, S=1) − P(Y=1 | Ŷ=1, S=0)`
//!
//! Each metric comes in two flavors:
//!
//! * [`bias`] — the *hard* metric over thresholded predictions. This is what
//!   gets reported (and what the paper calls ground truth bias).
//! * [`smooth_bias`] / [`bias_gradient`] — a differentiable surrogate that
//!   replaces the indicator `1[p ≥ 0.5]` with the probability `p` itself.
//!   The influence machinery (Eq. 11) needs `∇θ F`, which only exists for
//!   the smooth variant.
//!
//! A fourth differentiable metric, **average odds** — the mean of the TPR
//! and FPR gaps, `½[(TPR₁−TPR₀) + (FPR₁−FPR₀)]` — extends the paper's set
//! (it is the differentiable relative of equalized odds). Two report-only
//! extensions ([`disparate_impact_ratio`], [`equalized_odds_gap`]) round out
//! the audit surface.

#![forbid(unsafe_code)]

mod stats;

pub use stats::{group_confusion, ConfusionCounts, GroupStats};

use gopher_data::Encoded;
use gopher_models::{Differentiable, Model};

/// The fairness definitions from the paper (Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FairnessMetric {
    /// Equal positive-prediction rates across groups.
    StatisticalParity,
    /// Equal true-positive rates across groups.
    EqualOpportunity,
    /// Equal positive predictive values across groups.
    PredictiveParity,
    /// Equal average of TPR and FPR across groups (the differentiable
    /// relative of equalized odds; our extension beyond the paper's three).
    AverageOdds,
}

impl FairnessMetric {
    /// The paper's three metrics, for sweeps that reproduce its tables.
    pub const ALL: [FairnessMetric; 3] = [
        FairnessMetric::StatisticalParity,
        FairnessMetric::EqualOpportunity,
        FairnessMetric::PredictiveParity,
    ];

    /// Every supported metric, including extensions.
    pub const EXTENDED: [FairnessMetric; 4] = [
        FairnessMetric::StatisticalParity,
        FairnessMetric::EqualOpportunity,
        FairnessMetric::PredictiveParity,
        FairnessMetric::AverageOdds,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::StatisticalParity => "statistical parity",
            Self::EqualOpportunity => "equal opportunity",
            Self::PredictiveParity => "predictive parity",
            Self::AverageOdds => "average odds",
        }
    }
}

impl std::fmt::Display for FairnessMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether a test row participates in a metric, and with what numerator
/// weight. Shared by the hard and smooth paths so they can never diverge on
/// row selection.
#[inline]
fn row_in_scope(metric: FairnessMetric, y: f64) -> bool {
    match metric {
        FairnessMetric::StatisticalParity | FairnessMetric::PredictiveParity => true,
        FairnessMetric::EqualOpportunity => y == 1.0,
        FairnessMetric::AverageOdds => true,
    }
}

/// Average-odds bias from a per-row prediction accessor: the mean of the
/// per-label-stratum rate gaps. Shared by the hard and smooth paths.
fn average_odds(test: &Encoded, mut pred: impl FnMut(usize) -> f64) -> f64 {
    // cell[group][label] = (Σ pred, count)
    let mut num = [[0.0f64; 2]; 2];
    let mut den = [[0.0f64; 2]; 2];
    for r in 0..test.n_rows() {
        let g = usize::from(test.privileged[r]);
        let y = usize::from(test.y[r] == 1.0);
        num[g][y] += pred(r);
        den[g][y] += 1.0;
    }
    let tpr_gap = rate(num[1][1], den[1][1]) - rate(num[0][1], den[0][1]);
    let fpr_gap = rate(num[1][0], den[1][0]) - rate(num[0][0], den[0][0]);
    0.5 * (tpr_gap + fpr_gap)
}

/// The hard (thresholded) bias `F(θ, D_test)` of a model.
///
/// Groups with an empty denominator contribute a rate of 0 (documented
/// convention; the synthetic benchmarks never trigger it).
pub fn bias<M: Model>(metric: FairnessMetric, model: &M, test: &Encoded) -> f64 {
    match metric {
        FairnessMetric::AverageOdds => average_odds(test, |r| model.predict(test.x.row(r))),
        FairnessMetric::StatisticalParity | FairnessMetric::EqualOpportunity => {
            // rate = Σ ŷ / count per group.
            let mut num = [0.0f64; 2];
            let mut den = [0.0f64; 2];
            for r in 0..test.n_rows() {
                let y = test.y[r];
                if !row_in_scope(metric, y) {
                    continue;
                }
                let g = usize::from(test.privileged[r]);
                num[g] += model.predict(test.x.row(r));
                den[g] += 1.0;
            }
            rate(num[1], den[1]) - rate(num[0], den[0])
        }
        FairnessMetric::PredictiveParity => {
            // PPV = Σ y·ŷ / Σ ŷ per group.
            let mut num = [0.0f64; 2];
            let mut den = [0.0f64; 2];
            for r in 0..test.n_rows() {
                let pred = model.predict(test.x.row(r));
                let g = usize::from(test.privileged[r]);
                num[g] += test.y[r] * pred;
                den[g] += pred;
            }
            rate(num[1], den[1]) - rate(num[0], den[0])
        }
    }
}

/// The smooth (probability-based) bias used for gradients.
pub fn smooth_bias<M: Model>(metric: FairnessMetric, model: &M, test: &Encoded) -> f64 {
    match metric {
        FairnessMetric::AverageOdds => average_odds(test, |r| model.predict_proba(test.x.row(r))),
        FairnessMetric::StatisticalParity | FairnessMetric::EqualOpportunity => {
            let mut num = [0.0f64; 2];
            let mut den = [0.0f64; 2];
            for r in 0..test.n_rows() {
                let y = test.y[r];
                if !row_in_scope(metric, y) {
                    continue;
                }
                let g = usize::from(test.privileged[r]);
                num[g] += model.predict_proba(test.x.row(r));
                den[g] += 1.0;
            }
            rate(num[1], den[1]) - rate(num[0], den[0])
        }
        FairnessMetric::PredictiveParity => {
            let mut num = [0.0f64; 2];
            let mut den = [0.0f64; 2];
            for r in 0..test.n_rows() {
                let p = model.predict_proba(test.x.row(r));
                let g = usize::from(test.privileged[r]);
                num[g] += test.y[r] * p;
                den[g] += p;
            }
            rate(num[1], den[1]) - rate(num[0], den[0])
        }
    }
}

/// The gradient `∇θ F(θ, D_test)` of the smooth bias.
pub fn bias_gradient<M: Differentiable>(
    metric: FairnessMetric,
    model: &M,
    test: &Encoded,
) -> Vec<f64> {
    let p = model.n_params();
    match metric {
        FairnessMetric::AverageOdds => {
            // F = ½ Σ_y [mean_{priv,y} p − mean_{prot,y} p]: a weighted sum
            // of ∇θ p over the four (group, label) cells.
            let mut counts = [[0.0f64; 2]; 2];
            for r in 0..test.n_rows() {
                counts[usize::from(test.privileged[r])][usize::from(test.y[r] == 1.0)] += 1.0;
            }
            let mut grad = vec![0.0; p];
            let mut row_grad = vec![0.0; p];
            for r in 0..test.n_rows() {
                let g = usize::from(test.privileged[r]);
                let y = usize::from(test.y[r] == 1.0);
                if counts[g][y] == 0.0 {
                    continue;
                }
                let sign = if g == 1 { 0.5 } else { -0.5 };
                let w = sign / counts[g][y];
                row_grad.iter_mut().for_each(|v| *v = 0.0);
                model.accumulate_grad_proba(test.x.row(r), &mut row_grad);
                gopher_linalg::vecops::axpy(w, &row_grad, &mut grad);
            }
            grad
        }
        FairnessMetric::StatisticalParity | FairnessMetric::EqualOpportunity => {
            // F = mean_{priv} p_i − mean_{prot} p_i; the gradient is the
            // correspondingly weighted sum of ∇θ p_i.
            let mut counts = [0.0f64; 2];
            for r in 0..test.n_rows() {
                if row_in_scope(metric, test.y[r]) {
                    counts[usize::from(test.privileged[r])] += 1.0;
                }
            }
            let mut grad = vec![0.0; p];
            let mut row_grad = vec![0.0; p];
            for r in 0..test.n_rows() {
                if !row_in_scope(metric, test.y[r]) {
                    continue;
                }
                let g = usize::from(test.privileged[r]);
                if counts[g] == 0.0 {
                    continue;
                }
                let w = if g == 1 {
                    1.0 / counts[1]
                } else {
                    -1.0 / counts[0]
                };
                row_grad.iter_mut().for_each(|v| *v = 0.0);
                model.accumulate_grad_proba(test.x.row(r), &mut row_grad);
                gopher_linalg::vecops::axpy(w, &row_grad, &mut grad);
            }
            grad
        }
        FairnessMetric::PredictiveParity => {
            // F = A₁/B₁ − A₀/B₀ with A = Σ y p, B = Σ p per group;
            // ∇(A/B) = (B Σ y ∇p − A Σ ∇p) / B².
            let mut a = [0.0f64; 2];
            let mut b = [0.0f64; 2];
            let mut sum_y_gp = [vec![0.0; p], vec![0.0; p]];
            let mut sum_gp = [vec![0.0; p], vec![0.0; p]];
            let mut row_grad = vec![0.0; p];
            for r in 0..test.n_rows() {
                let g = usize::from(test.privileged[r]);
                let prob = model.predict_proba(test.x.row(r));
                a[g] += test.y[r] * prob;
                b[g] += prob;
                row_grad.iter_mut().for_each(|v| *v = 0.0);
                model.accumulate_grad_proba(test.x.row(r), &mut row_grad);
                gopher_linalg::vecops::axpy(test.y[r], &row_grad, &mut sum_y_gp[g]);
                gopher_linalg::vecops::axpy(1.0, &row_grad, &mut sum_gp[g]);
            }
            let mut grad = vec![0.0; p];
            for g in 0..2 {
                if b[g] == 0.0 {
                    continue;
                }
                let sign = if g == 1 { 1.0 } else { -1.0 };
                let b2 = b[g] * b[g];
                for j in 0..p {
                    grad[j] += sign * (b[g] * sum_y_gp[g][j] - a[g] * sum_gp[g][j]) / b2;
                }
            }
            grad
        }
    }
}

/// Disparate impact: `P(Ŷ=1 | S=0) / P(Ŷ=1 | S=1)` (the "80% rule" ratio).
/// Returns 1 when both rates are 0, and infinity when only the privileged
/// rate is 0.
pub fn disparate_impact_ratio<M: Model>(model: &M, test: &Encoded) -> f64 {
    let mut num = [0.0f64; 2];
    let mut den = [0.0f64; 2];
    for r in 0..test.n_rows() {
        let g = usize::from(test.privileged[r]);
        num[g] += model.predict(test.x.row(r));
        den[g] += 1.0;
    }
    let prot = rate(num[0], den[0]);
    let priv_ = rate(num[1], den[1]);
    if priv_ == 0.0 {
        if prot == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        prot / priv_
    }
}

/// Equalized-odds gap: `max(|ΔTPR|, |ΔFPR|)` between groups.
pub fn equalized_odds_gap<M: Model>(model: &M, test: &Encoded) -> f64 {
    let stats = group_confusion(model, test);
    let tpr_gap = (stats.privileged.tpr() - stats.protected.tpr()).abs();
    let fpr_gap = (stats.privileged.fpr() - stats.protected.fpr()).abs();
    tpr_gap.max(fpr_gap)
}

#[inline]
fn rate(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopher_data::generators::{adult, german};
    use gopher_data::Encoder;
    use gopher_models::train::{fit_newton, NewtonConfig};
    use gopher_models::LogisticRegression;

    fn trained_german() -> (LogisticRegression, Encoded) {
        let d = german(800, 11);
        let enc = Encoder::fit(&d);
        let data = enc.transform(&d);
        let mut model = LogisticRegression::new(data.n_cols(), 1e-3);
        fit_newton(&mut model, &data, &NewtonConfig::default());
        (model, data)
    }

    #[test]
    fn trained_model_exhibits_planted_bias() {
        let (model, data) = trained_german();
        for metric in FairnessMetric::ALL {
            let b = bias(metric, &model, &data);
            assert!(
                b > 0.0,
                "{metric} should favor the privileged group, got {b}"
            );
        }
    }

    #[test]
    fn smooth_bias_tracks_hard_bias() {
        let (model, data) = trained_german();
        for metric in FairnessMetric::ALL {
            let hard = bias(metric, &model, &data);
            let smooth = smooth_bias(metric, &model, &data);
            assert_eq!(hard.signum(), smooth.signum(), "{metric} sign mismatch");
            assert!(
                (hard - smooth).abs() < 0.3,
                "{metric}: hard {hard} vs smooth {smooth}"
            );
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let (model, data) = trained_german();
        for metric in FairnessMetric::ALL {
            let grad = bias_gradient(metric, &model, &data);
            let eps = 1e-6;
            // Probe a handful of parameters.
            for j in [0usize, 3, 7, model.n_params() - 1] {
                let mut mp = model.clone();
                mp.params_mut()[j] += eps;
                let mut mm = model.clone();
                mm.params_mut()[j] -= eps;
                let fd = (smooth_bias(metric, &mp, &data) - smooth_bias(metric, &mm, &data))
                    / (2.0 * eps);
                assert!(
                    (grad[j] - fd).abs() < 1e-5,
                    "{metric} param {j}: {} vs {fd}",
                    grad[j]
                );
            }
        }
    }

    #[test]
    fn statistical_parity_on_constant_model_is_zero() {
        let d = german(200, 12);
        let enc = Encoder::fit(&d);
        let data = enc.transform(&d);
        // Untrained model: p = 0.5 everywhere → identical rates.
        let model = LogisticRegression::new(data.n_cols(), 0.0);
        assert_eq!(bias(FairnessMetric::StatisticalParity, &model, &data), 0.0);
        assert!(smooth_bias(FairnessMetric::StatisticalParity, &model, &data).abs() < 1e-12);
    }

    #[test]
    fn adult_gender_bias_is_detected() {
        let d = adult(2000, 13);
        let enc = Encoder::fit(&d);
        let data = enc.transform(&d);
        let mut model = LogisticRegression::new(data.n_cols(), 1e-3);
        fit_newton(&mut model, &data, &NewtonConfig::default());
        let b = bias(FairnessMetric::StatisticalParity, &model, &data);
        assert!(b > 0.05, "adult statistical parity bias {b}");
    }

    #[test]
    fn disparate_impact_below_one_for_biased_model() {
        let (model, data) = trained_german();
        let di = disparate_impact_ratio(&model, &data);
        assert!(di < 1.0, "disparate impact {di}");
        assert!(di >= 0.0);
    }

    #[test]
    fn equalized_odds_gap_positive_for_biased_model() {
        let (model, data) = trained_german();
        let gap = equalized_odds_gap(&model, &data);
        assert!(gap > 0.0);
        assert!(gap <= 1.0);
    }

    #[test]
    fn average_odds_relates_to_component_gaps() {
        let (model, data) = trained_german();
        let stats = group_confusion(&model, &data);
        let expected = 0.5
            * ((stats.privileged.tpr() - stats.protected.tpr())
                + (stats.privileged.fpr() - stats.protected.fpr()));
        let measured = bias(FairnessMetric::AverageOdds, &model, &data);
        assert!(
            (measured - expected).abs() < 1e-12,
            "{measured} vs {expected}"
        );
        // And it is bounded by the equalized-odds gap.
        assert!(measured.abs() <= equalized_odds_gap(&model, &data) + 1e-12);
    }

    #[test]
    fn average_odds_gradient_matches_finite_difference() {
        let (model, data) = trained_german();
        let grad = bias_gradient(FairnessMetric::AverageOdds, &model, &data);
        let eps = 1e-6;
        for j in [0usize, 5, model.n_params() - 1] {
            let mut mp = model.clone();
            mp.params_mut()[j] += eps;
            let mut mm = model.clone();
            mm.params_mut()[j] -= eps;
            let fd = (smooth_bias(FairnessMetric::AverageOdds, &mp, &data)
                - smooth_bias(FairnessMetric::AverageOdds, &mm, &data))
                / (2.0 * eps);
            assert!(
                (grad[j] - fd).abs() < 1e-6,
                "param {j}: {} vs {fd}",
                grad[j]
            );
        }
    }

    #[test]
    fn extended_metric_set_is_superset() {
        for m in FairnessMetric::ALL {
            assert!(FairnessMetric::EXTENDED.contains(&m));
        }
        assert_eq!(FairnessMetric::EXTENDED.len(), 4);
    }

    #[test]
    fn metric_names_are_stable() {
        assert_eq!(
            FairnessMetric::StatisticalParity.to_string(),
            "statistical parity"
        );
        assert_eq!(
            FairnessMetric::EqualOpportunity.to_string(),
            "equal opportunity"
        );
        assert_eq!(
            FairnessMetric::PredictiveParity.to_string(),
            "predictive parity"
        );
    }
}
