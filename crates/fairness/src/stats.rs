//! Per-group confusion statistics for audit reports.

use gopher_data::Encoded;
use gopher_models::Model;

/// Confusion counts for one group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionCounts {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl ConfusionCounts {
    /// Group size.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Positive-prediction rate `P(Ŷ=1)`.
    pub fn positive_rate(&self) -> f64 {
        ratio(self.tp + self.fp, self.total())
    }

    /// True-positive rate `P(Ŷ=1 | Y=1)`.
    pub fn tpr(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// False-positive rate `P(Ŷ=1 | Y=0)`.
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// Positive predictive value `P(Y=1 | Ŷ=1)`.
    pub fn ppv(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Accuracy within the group.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Confusion statistics split by group membership.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Counts over privileged rows.
    pub privileged: ConfusionCounts,
    /// Counts over protected rows.
    pub protected: ConfusionCounts,
}

impl GroupStats {
    /// Overall accuracy across both groups.
    pub fn overall_accuracy(&self) -> f64 {
        let correct =
            self.privileged.tp + self.privileged.tn + self.protected.tp + self.protected.tn;
        ratio(correct, self.privileged.total() + self.protected.total())
    }
}

/// Computes per-group confusion counts of a model on a test set.
pub fn group_confusion<M: Model>(model: &M, test: &Encoded) -> GroupStats {
    let mut stats = GroupStats::default();
    for r in 0..test.n_rows() {
        let pred = model.predict(test.x.row(r)) == 1.0;
        let truth = test.y[r] == 1.0;
        let counts = if test.privileged[r] {
            &mut stats.privileged
        } else {
            &mut stats.protected
        };
        match (pred, truth) {
            (true, true) => counts.tp += 1,
            (true, false) => counts.fp += 1,
            (false, false) => counts.tn += 1,
            (false, true) => counts.fn_ += 1,
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_from_known_counts() {
        let c = ConfusionCounts {
            tp: 30,
            fp: 10,
            tn: 40,
            fn_: 20,
        };
        assert_eq!(c.total(), 100);
        assert!((c.positive_rate() - 0.4).abs() < 1e-12);
        assert!((c.tpr() - 0.6).abs() < 1e-12);
        assert!((c.fpr() - 0.2).abs() < 1e-12);
        assert!((c.ppv() - 0.75).abs() < 1e-12);
        assert!((c.accuracy() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_are_zero_not_nan() {
        let c = ConfusionCounts::default();
        assert_eq!(c.positive_rate(), 0.0);
        assert_eq!(c.tpr(), 0.0);
        assert_eq!(c.ppv(), 0.0);
    }

    #[test]
    fn overall_accuracy_combines_groups() {
        let stats = GroupStats {
            privileged: ConfusionCounts {
                tp: 5,
                fp: 0,
                tn: 5,
                fn_: 0,
            },
            protected: ConfusionCounts {
                tp: 0,
                fp: 5,
                tn: 0,
                fn_: 5,
            },
        };
        assert!((stats.overall_accuracy() - 0.5).abs() < 1e-12);
    }
}
