//! Dependency-free JSON support shared by the `gopher` CLI and the
//! `gopher serve` daemon: a [`Json`] value tree, a writer (`Display`), and a
//! strict recursive-descent [`parse`]r.
//!
//! The container has no crates.io access, so `serde_json` is off the table;
//! the workspace's report and wire formats are small and flat enough that
//! ~200 lines of hand-rolled JSON are the simpler dependency anyway. The
//! parser exists so integration tests can round-trip the CLI's own output
//! instead of grepping for substrings — and, since PR 7, so the serving
//! daemon can decode request bodies.
//!
//! Because the daemon feeds this parser **untrusted network input**, parsing
//! is hardened: input size and container nesting depth are bounded
//! ([`ParseLimits`]), so a deeply-nested body comes back as a clean `Err`
//! (an HTTP 400 at the server) instead of blowing the parser's stack, and a
//! huge body is rejected before any work is done. [`parse`] applies the
//! defaults; [`parse_with_limits`] lets servers tighten them per endpoint.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects use a [`BTreeMap`] so output is deterministically
/// key-ordered (stable across runs, friendly to golden tests).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Non-finite floats must be mapped to [`Json::Null`]
    /// before construction (use [`Json::num`]).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with key-ordered members.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Wraps a float, mapping NaN/±∞ (not representable in JSON) to `null`.
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// Wraps a string-like value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => {
                if *v == v.trunc() && v.abs() < 1e15 {
                    write!(f, "{}", *v as i64)
                } else {
                    write!(f, "{v}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Bounds enforced while parsing untrusted input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum input length in bytes; longer documents are rejected before
    /// any parsing work happens.
    pub max_bytes: usize,
    /// Maximum container nesting depth (arrays/objects). The parser is
    /// recursive-descent, so this bound is what keeps a `[[[[…]]]]` body
    /// from overflowing the stack; every level costs one stack frame.
    pub max_depth: usize,
}

/// Default input-size bound of [`parse`]: 16 MiB, comfortably above any
/// report the workspace emits and any request body the server accepts.
pub const DEFAULT_MAX_BYTES: usize = 16 << 20;

/// Default nesting-depth bound of [`parse`]. The workspace's own documents
/// nest 4–5 levels; 64 leaves an order-of-magnitude headroom while keeping
/// worst-case recursion far below any thread's stack budget.
pub const DEFAULT_MAX_DEPTH: usize = 64;

impl Default for ParseLimits {
    fn default() -> Self {
        Self {
            max_bytes: DEFAULT_MAX_BYTES,
            max_depth: DEFAULT_MAX_DEPTH,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected) under the default [`ParseLimits`].
pub fn parse(input: &str) -> Result<Json, String> {
    parse_with_limits(input, ParseLimits::default())
}

/// Parses a complete JSON document under explicit [`ParseLimits`]. Oversized
/// input and over-deep nesting return descriptive errors — never a stack
/// overflow — so servers can surface them as 400s.
pub fn parse_with_limits(input: &str, limits: ParseLimits) -> Result<Json, String> {
    if input.len() > limits.max_bytes {
        return Err(format!(
            "input too large: {} bytes exceeds the {}-byte limit",
            input.len(),
            limits.max_bytes
        ));
    }
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, limits.max_depth)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, pos))
    }
}

/// `depth` is the *remaining* container allowance: entering an array or an
/// object consumes one level, scalars consume none.
fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            let depth = enter_container(depth, *pos)?;
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos, depth)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            let depth = enter_container(depth, *pos)?;
            *pos += 1;
            let mut members = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                members.insert(key, parse_value(b, pos, depth)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn enter_container(depth: usize, at: usize) -> Result<usize, String> {
    depth
        .checked_sub(1)
        .ok_or_else(|| format!("nesting deeper than the configured limit at byte {at}"))
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: must be followed by `\uDC00..DFFF`;
                            // combine the pair into one scalar (RFC 8259 §7).
                            if b.get(*pos + 1..*pos + 3) != Some(br"\u".as_slice()) {
                                return Err("high surrogate without a low surrogate".into());
                            }
                            let low = parse_hex4(b, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(format!("invalid low surrogate {low:04x}"));
                            }
                            *pos += 6;
                            let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            out.push(char::from_u32(scalar).expect("valid by construction"));
                        } else {
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("lone low surrogate {code:04x}"))?,
                            );
                        }
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (b is valid UTF-8 by construction).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u32, String> {
    let hex = b.get(at..at + 4).ok_or("truncated \\u escape")?;
    u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
        .map_err(|e| e.to_string())
}

/// Parses a number with the exact RFC 8259 grammar
/// (`-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`) — Rust's `f64`
/// `FromStr` is laxer (`+1`, `1.`, `.5`) and would mask malformed input.
fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    let err = |at: usize| format!("invalid number at byte {at}");
    let mut p = *pos;
    if b.get(p) == Some(&b'-') {
        p += 1;
    }
    match b.get(p) {
        Some(b'0') => p += 1,
        Some(b'1'..=b'9') => {
            while matches!(b.get(p), Some(b'0'..=b'9')) {
                p += 1;
            }
        }
        _ => return Err(err(start)),
    }
    if b.get(p) == Some(&b'.') {
        p += 1;
        if !matches!(b.get(p), Some(b'0'..=b'9')) {
            return Err(err(start));
        }
        while matches!(b.get(p), Some(b'0'..=b'9')) {
            p += 1;
        }
    }
    if matches!(b.get(p), Some(b'e' | b'E')) {
        p += 1;
        if matches!(b.get(p), Some(b'+' | b'-')) {
            p += 1;
        }
        if !matches!(b.get(p), Some(b'0'..=b'9')) {
            return Err(err(start));
        }
        while matches!(b.get(p), Some(b'0'..=b'9')) {
            p += 1;
        }
    }
    *pos = p;
    let text = std::str::from_utf8(&b[start..p]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let v = Json::obj([
            (
                "a",
                Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Null]),
            ),
            ("b", Json::str("quote \" backslash \\ newline \n")),
            ("c", Json::Bool(true)),
            ("d", Json::obj([("nested", Json::num(f64::NAN))])),
        ]);
        let text = v.to_string();
        let back = parse(&text).expect("own output must parse");
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("123 xyz").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn enforces_rfc8259_number_grammar() {
        for bad in ["+1", ".5", "1.", "01", "1e", "1e+", "-", "--1", "1.e3"] {
            assert!(parse(bad).is_err(), "`{bad}` must be rejected");
        }
        for (good, want) in [
            ("-0.5", -0.5),
            ("0", 0.0),
            ("1e-3", 1e-3),
            ("12.25E2", 1225.0),
        ] {
            assert_eq!(parse(good).unwrap(), Json::Num(want), "`{good}`");
        }
    }

    #[test]
    fn decodes_surrogate_pairs_and_rejects_lone_surrogates() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".to_string())
        );
        assert!(parse("\"\\ud83d\"").is_err(), "lone high surrogate");
        assert!(parse("\"\\ude00\"").is_err(), "lone low surrogate");
        assert!(parse("\"\\ud83d\\u0041\"").is_err(), "high + non-low");
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(0.25).to_string(), "0.25");
    }

    /// The hardening property: a pathologically nested document — far deeper
    /// than any thread's stack could recurse through — must come back as a
    /// clean `Err`, not a stack overflow. This is what lets the server turn
    /// a hostile body into a 400.
    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
            let depth = 200_000;
            let mut doc = open.repeat(depth);
            doc.push('1');
            doc.push_str(&close.repeat(depth));
            let err = parse(&doc).expect_err("over-deep document must be rejected");
            assert!(err.contains("nesting deeper"), "unexpected error: {err}");
        }
    }

    #[test]
    fn depth_limit_is_exact() {
        // depth-3 document: [[[1]]]
        let doc = "[[[1]]]";
        assert!(parse_with_limits(
            doc,
            ParseLimits {
                max_depth: 3,
                ..ParseLimits::default()
            }
        )
        .is_ok());
        assert!(parse_with_limits(
            doc,
            ParseLimits {
                max_depth: 2,
                ..ParseLimits::default()
            }
        )
        .is_err());
        // Scalars cost no depth at all.
        assert!(parse_with_limits(
            "42",
            ParseLimits {
                max_depth: 0,
                ..ParseLimits::default()
            }
        )
        .is_ok());
    }

    #[test]
    fn oversized_input_is_rejected_up_front() {
        let doc = format!("\"{}\"", "x".repeat(1024));
        let limits = ParseLimits {
            max_bytes: 64,
            ..ParseLimits::default()
        };
        let err = parse_with_limits(&doc, limits).expect_err("must reject oversized input");
        assert!(err.contains("too large"), "unexpected error: {err}");
        // Under the default limits the same document is fine.
        assert!(parse(&doc).is_ok());
    }
}
