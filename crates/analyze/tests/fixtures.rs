//! Each seeded bad-pattern fixture must trip exactly its rule: injecting
//! any of these shapes into the workspace turns the gate red, naming the
//! rule (the PR's acceptance criterion, also exercised over the real
//! binary by CI's negative smoke step).

use gopher_analyze::{analyze_paths, RULES};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures/bad")
        .join(name)
}

/// Runs all rules over one fixture; returns the distinct rule ids found.
fn rules_hit(name: &str) -> Vec<String> {
    let enabled: Vec<&str> = RULES.iter().map(|r| r.id).collect();
    let path = fixture(name);
    assert!(path.is_file(), "missing fixture {}", path.display());
    let analysis =
        analyze_paths(std::slice::from_ref(&path), &path, &enabled).expect("analyze fixture");
    let mut rules: Vec<String> = analysis.findings.iter().map(|v| v.rule.clone()).collect();
    rules.sort();
    rules.dedup();
    rules
}

#[test]
fn raw_lock_fixture_trips_its_rule() {
    // The PR 3 class: cache locks unwrapped, poison bricks the session.
    assert_eq!(rules_hit("raw_lock.rs"), ["raw-lock"]);
}

#[test]
fn nan_sort_fixture_trips_its_rule() {
    // The PR 2 class: partial_cmp comparators fall over on NaN scores.
    assert_eq!(rules_hit("nan_sort.rs"), ["nan-sort"]);
}

#[test]
fn float_bits_key_fixture_trips_its_rule() {
    // The PR 5 class: τ keyed by bit pattern, -0.0 duplicates artifacts.
    assert_eq!(rules_hit("float_bits_key.rs"), ["float-bits-key"]);
}

#[test]
fn undocumented_unsafe_fixture_trips_its_rule() {
    assert_eq!(rules_hit("undocumented_unsafe.rs"), ["undocumented-unsafe"]);
}

#[test]
fn guard_held_call_fixture_trips_its_rule() {
    // The PR 3 deadlock: re-entering a lock-taking method under the guard.
    assert_eq!(rules_hit("guard_held_call.rs"), ["guard-held-call"]);
}

#[test]
fn env_literal_fixture_trips_its_rule() {
    assert_eq!(rules_hit("env_literal.rs"), ["env-literal"]);
}

#[test]
fn hashmap_ordered_output_fixture_trips_its_rule() {
    // The incremental-update class: a HashMap-backed cache iterated
    // straight into a report, reordering the output every run.
    assert_eq!(
        rules_hit("hashmap_ordered_output.rs"),
        ["hashmap-ordered-output"]
    );
}

#[test]
fn instant_now_scored_path_fixture_trips_its_rule() {
    // The timing-nondeterminism class: wall-clock reads inside a scorer or
    // a cached record make identical queries produce unequal artifacts.
    assert_eq!(
        rules_hit("instant_now_scored_path.rs"),
        ["instant-now-scored-path"]
    );
}

#[test]
fn fixture_findings_carry_file_line_spans() {
    let enabled: Vec<&str> = RULES.iter().map(|r| r.id).collect();
    let path = fixture("raw_lock.rs");
    let root = path.parent().expect("fixtures dir").to_path_buf();
    let analysis = analyze_paths(&[path], &root, &enabled).expect("analyze fixture");
    assert_eq!(analysis.findings.len(), 2, "{:?}", analysis.findings);
    for v in &analysis.findings {
        assert_eq!(v.file, "raw_lock.rs");
        assert!(v.line > 0 && v.col > 0);
    }
}
