//! The self-check: the analyzer runs over the real workspace inside
//! `cargo test`, so tier-1 tests enforce the invariants even when CI's
//! dedicated `gopher-analyze --deny-all` step is not in the loop.

use gopher_analyze::{analyze_paths, RULES};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/analyze -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/analyze")
        .to_path_buf()
}

#[test]
fn workspace_has_zero_findings() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let enabled: Vec<&str> = RULES.iter().map(|r| r.id).collect();
    let analysis =
        analyze_paths(std::slice::from_ref(&root), &root, &enabled).expect("scan workspace");
    assert!(
        analysis.files_scanned > 50,
        "suspiciously few files scanned ({}) — did the walker break?",
        analysis.files_scanned
    );
    let rendered: Vec<String> = analysis
        .findings
        .iter()
        .map(|v| format!("{}:{}:{}: {}: {}", v.file, v.line, v.col, v.rule, v.message))
        .collect();
    assert!(
        analysis.findings.is_empty(),
        "the workspace must carry zero findings — fix them or add a reasoned \
         `gopher-lint: allow`:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn every_workspace_suppression_carries_a_reason() {
    // `analyze_paths` already turns a reasonless allow into a `bare-allow`
    // finding (covered above); this asserts the suppressions that *do*
    // exist were parsed as reasoned, i.e. the counter works end to end.
    let root = workspace_root();
    let enabled: Vec<&str> = RULES.iter().map(|r| r.id).collect();
    let analysis =
        analyze_paths(std::slice::from_ref(&root), &root, &enabled).expect("scan workspace");
    for v in &analysis.suppressed {
        assert!(
            gopher_analyze::rules::is_known_rule(&v.rule),
            "suppressed finding for unknown rule {:?}",
            v.rule
        );
    }
}
