//! A comment- and string-literal-aware Rust lexer.
//!
//! The rule engine works on token *sequences*, never on raw text, so a
//! decoy like the string `".lock().unwrap()"` inside a test snippet, or a
//! code sample quoted in a doc comment, can never trip a rule: string
//! literals become single [`TokenKind::Str`] tokens and comments are
//! diverted into a separate [`Comment`] stream (which the engine scans for
//! `SAFETY:` documentation and `gopher-lint:` suppressions).
//!
//! This is a lexer, not a parser: it understands exactly enough Rust
//! lexical structure to be reliable — nested block comments, raw strings
//! with arbitrary `#` fences, byte/char literals, lifetimes vs chars, and
//! numeric literals with method calls on them (`1.0.to_bits()` lexes as a
//! number followed by `.` and an ident).

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`lock`, `unsafe`, `fn`, …).
    Ident,
    /// Single punctuation character (`.`, `(`, `{`, …).
    Punct,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (`42`, `1.5e-3`, `0xff_u64`).
    Num,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token's text. For [`TokenKind::Str`] this is the literal's
    /// *content* (rules never match inside it; it is kept for diagnostics).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

impl Token {
    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One comment (line or block), with the line span it occupies.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` framing (doc-comment `/` and
    /// `!` markers are kept — callers trim what they care about).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equal to `line` for line comments).
    pub end_line: u32,
}

/// The output of [`lex`]: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(source: &str) -> Self {
        Self {
            chars: source.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens and comments. Never fails: unterminated
/// literals or comments simply run to end of input (the analyzer lints
/// code that already compiles, so this only matters for robustness).
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor::new(source);
    let mut out = Lexed::default();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            cur.bump();
            cur.bump();
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(Comment {
                text,
                line,
                end_line: line,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            let mut text = String::new();
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        text.push_str("/*");
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                        if depth > 0 {
                            text.push_str("*/");
                        }
                    }
                    (Some(ch), _) => {
                        text.push(ch);
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            out.comments.push(Comment {
                text,
                line,
                end_line: cur.line,
            });
            continue;
        }
        // Raw strings and byte literals: r"…", r#"…"#, br"…", b"…", b'…'.
        if c == 'r' || c == 'b' {
            if let Some(token) = try_lex_prefixed_literal(&mut cur, line, col) {
                out.tokens.push(token);
                continue;
            }
        }
        // Plain strings.
        if c == '"' {
            cur.bump();
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: lex_escaped_until(&mut cur, '"'),
                line,
                col,
            });
            continue;
        }
        // Lifetime/label vs char literal.
        if c == '\'' {
            let next = cur.peek(1);
            let after = cur.peek(2);
            let is_lifetime =
                next.is_some_and(is_ident_start) && after != Some('\'') || next == Some('_');
            cur.bump();
            if is_lifetime {
                let mut text = String::new();
                while let Some(ch) = cur.peek(0) {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text,
                    line,
                    col,
                });
            } else {
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: lex_escaped_until(&mut cur, '\''),
                    line,
                    col,
                });
            }
            continue;
        }
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if !is_ident_continue(ch) {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }
        if c.is_ascii_digit() {
            out.tokens.push(Token {
                kind: TokenKind::Num,
                text: lex_number(&mut cur),
                line,
                col,
            });
            continue;
        }
        cur.bump();
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    out
}

/// Consumes an escaped literal body up to the unescaped `close` delimiter,
/// returning the content (delimiter consumed, not included).
fn lex_escaped_until(cur: &mut Cursor, close: char) -> String {
    let mut text = String::new();
    while let Some(ch) = cur.peek(0) {
        if ch == '\\' {
            text.push(ch);
            cur.bump();
            if let Some(escaped) = cur.bump() {
                text.push(escaped);
            }
            continue;
        }
        cur.bump();
        if ch == close {
            break;
        }
        text.push(ch);
    }
    text
}

/// Attempts to lex an `r`/`b`-prefixed literal at the cursor. Returns
/// `None` (consuming nothing) when the prefix turns out to start a plain
/// identifier like `rows` or `bits`.
fn try_lex_prefixed_literal(cur: &mut Cursor, line: u32, col: u32) -> Option<Token> {
    let c = cur.peek(0)?;
    // Work out the shape by lookahead only; consume once decided.
    let mut k = 1; // chars consumed by the prefix beyond the first
    let mut raw = c == 'r';
    if c == 'b' {
        match cur.peek(1) {
            Some('r') => {
                raw = true;
                k = 2;
            }
            Some('"') => {
                // b"…": byte string with escapes.
                cur.bump();
                cur.bump();
                return Some(Token {
                    kind: TokenKind::Str,
                    text: lex_escaped_until(cur, '"'),
                    line,
                    col,
                });
            }
            Some('\'') => {
                // b'…': byte char with escapes.
                cur.bump();
                cur.bump();
                return Some(Token {
                    kind: TokenKind::Char,
                    text: lex_escaped_until(cur, '\''),
                    line,
                    col,
                });
            }
            _ => return None,
        }
    }
    if !raw {
        return None;
    }
    // Count the `#` fence after the `r`.
    let mut hashes = 0usize;
    while cur.peek(k + hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(k + hashes) != Some('"') {
        return None; // `r` / `br` starting an identifier
    }
    for _ in 0..(k + hashes + 1) {
        cur.bump();
    }
    // Scan for `"` followed by `hashes` hashes.
    let mut text = String::new();
    while let Some(ch) = cur.peek(0) {
        if ch == '"' && (0..hashes).all(|h| cur.peek(1 + h) == Some('#')) {
            for _ in 0..(hashes + 1) {
                cur.bump();
            }
            return Some(Token {
                kind: TokenKind::Str,
                text,
                line,
                col,
            });
        }
        text.push(ch);
        cur.bump();
    }
    Some(Token {
        kind: TokenKind::Str,
        text,
        line,
        col,
    })
}

/// Lexes a numeric literal: decimal with optional fraction/exponent/suffix,
/// or a `0x`/`0o`/`0b` radix literal. Stops before `..` (range) and before
/// a `.` that starts a method call (`1.0.to_bits()`).
fn lex_number(cur: &mut Cursor) -> String {
    let mut text = String::new();
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'o' | 'b')) {
        for _ in 0..2 {
            text.push(cur.bump().expect("peeked"));
        }
        while let Some(ch) = cur.peek(0) {
            if !is_ident_continue(ch) {
                break;
            }
            text.push(ch);
            cur.bump();
        }
        return text;
    }
    let consume_digits = |cur: &mut Cursor, text: &mut String| {
        while let Some(ch) = cur.peek(0) {
            if !ch.is_ascii_digit() && ch != '_' {
                break;
            }
            text.push(ch);
            cur.bump();
        }
    };
    consume_digits(cur, &mut text);
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        text.push('.');
        cur.bump();
        consume_digits(cur, &mut text);
    }
    if matches!(cur.peek(0), Some('e' | 'E'))
        && (cur.peek(1).is_some_and(|c| c.is_ascii_digit())
            || matches!(cur.peek(1), Some('+' | '-'))
                && cur.peek(2).is_some_and(|c| c.is_ascii_digit()))
    {
        text.push(cur.bump().expect("peeked"));
        if matches!(cur.peek(0), Some('+' | '-')) {
            text.push(cur.bump().expect("peeked"));
        }
        consume_digits(cur, &mut text);
    }
    // Type suffix (`u64`, `f32`, …).
    while let Some(ch) = cur.peek(0) {
        if !is_ident_continue(ch) {
            break;
        }
        text.push(ch);
        cur.bump();
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn decoys_in_strings_and_comments_never_become_idents() {
        let src = r##"
            // calling .lock().unwrap() here would be bad
            /* and so would partial_cmp */
            let a = ".lock().unwrap()";
            let b = r#"sort_by(partial_cmp)"#;
            let c = b"to_bits";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        for decoy in ["lock", "unwrap", "partial_cmp", "sort_by", "to_bits"] {
            assert!(!ids.contains(&decoy.to_string()), "decoy leaked: {decoy}");
        }
    }

    #[test]
    fn comments_carry_text_and_line_spans() {
        let src = "let x = 1; // trailing note\n/* multi\nline */ let y = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].text, " trailing note");
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
        assert_eq!(lexed.comments[1].end_line, 3);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner */ still comment */ token";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.tokens.len(), 1);
        assert!(lexed.tokens[0].is_ident("token"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let esc = '\\''; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn method_call_on_float_literal_splits_at_the_dot() {
        let lexed = lex("let k = 1.5.to_bits();");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"1.5"));
        assert!(texts.contains(&"to_bits"));
    }

    #[test]
    fn raw_string_fences_respect_hash_count() {
        let lexed = lex(r###"let s = r##"has "# inside"##; after"###);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, r##"has "# inside"##);
        assert!(lexed.tokens.last().expect("tokens").is_ident("after"));
    }

    #[test]
    fn line_and_col_are_one_based_and_accurate() {
        let lexed = lex("ab cd\n  ef");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (1, 4));
        assert_eq!((lexed.tokens[2].line, lexed.tokens[2].col), (2, 3));
    }
}
