//! The eight project-invariant rules.
//!
//! Each rule encodes a bug class this workspace has already shipped a fix
//! for (see the README's rule catalog for the history). Rules operate on
//! the token stream from [`crate::lexer`] — string literals and comments
//! can never produce findings — and report 1-based `line:col` spans.

use crate::lexer::{Comment, Lexed, Token, TokenKind};

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Id of the rule that fired (one of [`RULES`], or `bare-allow`).
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Static description of one rule, for `--list` and `--rules` validation.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// The rule id used in `--rules` and `gopher-lint: allow(...)`.
    pub id: &'static str,
    /// One-line summary of the invariant.
    pub summary: &'static str,
}

/// Environment variables the workspace documents as tuning knobs; any other
/// string literal fed to `env::var` trips the `env-literal` rule. Extend
/// this list (and the README knob table) when adding a knob.
pub const KNOWN_ENV_KNOBS: &[&str] = &["GOPHER_THREADS", "GOPHER_SIMD"];

/// All deny-by-default rules, in catalog order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "raw-lock",
        summary: "`.lock().unwrap()`/`.lock().expect(..)` — use the shared `lock_recover` helper",
    },
    RuleInfo {
        id: "nan-sort",
        summary: "`sort_by`/`max_by`/`min_by` with `partial_cmp` — use `f64::total_cmp`",
    },
    RuleInfo {
        id: "float-bits-key",
        summary: "`f64::to_bits` in a key/hash position — `-0.0`/`0.0` split cache entries",
    },
    RuleInfo {
        id: "undocumented-unsafe",
        summary: "`unsafe` block/fn without a `// SAFETY:` comment",
    },
    RuleInfo {
        id: "guard-held-call",
        summary: "method call on `self` while a MutexGuard binding is live in scope",
    },
    RuleInfo {
        id: "env-literal",
        summary: "`env::var` with a string outside the documented knob list",
    },
    RuleInfo {
        id: "hashmap-ordered-output",
        summary: "HashMap/HashSet iteration flowing into ordered output without a sort",
    },
    RuleInfo {
        id: "instant-now-scored-path",
        summary: "`Instant::now()` inside a scoring fn or a cache-insert statement",
    },
];

/// True if `id` names a rule in [`RULES`].
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Runs every rule in `enabled` over one lexed file.
pub fn check_all(lexed: &Lexed, enabled: &[&str]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for &id in enabled {
        let rule_findings = match id {
            "raw-lock" => raw_lock(&lexed.tokens),
            "nan-sort" => nan_sort(&lexed.tokens),
            "float-bits-key" => float_bits_key(&lexed.tokens),
            "undocumented-unsafe" => undocumented_unsafe(&lexed.tokens, &lexed.comments),
            "guard-held-call" => guard_held_call(&lexed.tokens),
            "env-literal" => env_literal(&lexed.tokens),
            "hashmap-ordered-output" => hashmap_ordered_output(&lexed.tokens),
            "instant-now-scored-path" => instant_now_scored_path(&lexed.tokens),
            other => panic!("unknown rule id {other:?} (validate with is_known_rule)"),
        };
        findings.extend(rule_findings);
    }
    findings.sort_by_key(|f| (f.line, f.col));
    findings
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    let t = tokens.get(i)?;
    (t.kind == TokenKind::Ident).then_some(t.text.as_str())
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(c))
}

/// Index of the `)` matching the `(` at `open`, if balanced.
fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// **raw-lock** — `.lock().unwrap()` / `.lock().expect(..)`.
///
/// A panicking thread poisons a `std::sync::Mutex`; unwrapping the lock
/// result turns every later access into a panic, bricking a shared session
/// (the PR 3 class). All workspace caches hold values that are valid even
/// after a panic mid-insert, so the only sanctioned pattern is
/// `gopher_par::lock_recover`, which recovers the guard.
fn raw_lock(tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if punct_at(tokens, i, '.')
            && ident_at(tokens, i + 1) == Some("lock")
            && punct_at(tokens, i + 2, '(')
            && punct_at(tokens, i + 3, ')')
            && punct_at(tokens, i + 4, '.')
            && matches!(ident_at(tokens, i + 5), Some("unwrap" | "expect"))
            && punct_at(tokens, i + 6, '(')
        {
            let t = &tokens[i + 1];
            out.push(Finding {
                rule: "raw-lock",
                line: t.line,
                col: t.col,
                message: format!(
                    ".lock().{}() panics forever once a holder panics (mutex poisoning); \
                     use gopher_par::lock_recover instead",
                    tokens[i + 5].text
                ),
            });
        }
    }
    out
}

/// **nan-sort** — a comparator built from `partial_cmp` inside
/// `sort_by`-family calls.
///
/// `partial_cmp` is `None` on NaN: `.unwrap()` panics on the first NaN
/// score, `.unwrap_or(Equal)` silently breaks total-order laws and makes
/// the ranking nondeterministic (the PR 2 class). `f64::total_cmp` is
/// total, identical on all finite values, and costs the same.
fn nan_sort(tokens: &[Token]) -> Vec<Finding> {
    const SORTERS: &[&str] = &[
        "sort_by",
        "sort_unstable_by",
        "max_by",
        "min_by",
        "binary_search_by",
    ];
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let Some(name) = ident_at(tokens, i) else {
            continue;
        };
        if !SORTERS.contains(&name) || !punct_at(tokens, i + 1, '(') {
            continue;
        }
        let Some(close) = matching_paren(tokens, i + 1) else {
            continue;
        };
        if tokens[i + 2..close]
            .iter()
            .any(|t| t.is_ident("partial_cmp"))
        {
            let t = &tokens[i];
            out.push(Finding {
                rule: "nan-sort",
                line: t.line,
                col: t.col,
                message: format!(
                    "{name} with partial_cmp panics or loses total order on NaN; \
                     use f64::total_cmp"
                ),
            });
        }
    }
    out
}

/// **float-bits-key** — `f64::to_bits` flowing into a key/hash position.
///
/// `-0.0 == 0.0` but their bit patterns differ, so bit-pattern keys split
/// one logical key into two cache entries (the PR 5 structural-key bug).
/// Heuristic "key position": the call happens inside a fn whose name
/// contains `key`, inside an `impl` whose header names a `*Key*` type or
/// `Hash`, or in a statement that also mentions `insert`/`entry`/
/// `contains_key`/`*hash*`.
fn float_bits_key(tokens: &[Token]) -> Vec<Finding> {
    const STMT_MARKERS: &[&str] = &["insert", "entry", "contains_key"];
    // Per-scope flags: (inside fn named *key*, inside keyish impl).
    let mut scopes: Vec<(bool, bool)> = Vec::new();
    let mut pending_fn_key = false;
    let mut pending_impl_key = false;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Ident if t.text == "fn" => {
                if let Some(name) = ident_at(tokens, i + 1) {
                    pending_fn_key = name.to_ascii_lowercase().contains("key");
                }
            }
            TokenKind::Ident if t.text == "impl" => {
                // Scan the header (up to the body `{` or a `;`).
                let mut keyish = false;
                for h in tokens.iter().skip(i + 1) {
                    if h.is_punct('{') || h.is_punct(';') {
                        break;
                    }
                    if h.kind == TokenKind::Ident && (h.text.contains("Key") || h.text == "Hash") {
                        keyish = true;
                    }
                }
                pending_impl_key = keyish;
            }
            TokenKind::Punct if t.text == "{" => {
                let inherited = scopes.last().copied().unwrap_or((false, false));
                scopes.push((
                    inherited.0 || pending_fn_key,
                    inherited.1 || pending_impl_key,
                ));
                pending_fn_key = false;
                pending_impl_key = false;
            }
            TokenKind::Punct if t.text == "}" => {
                scopes.pop();
            }
            TokenKind::Punct if t.text == ";" => {
                // A bodiless `fn`/`impl` declaration never opened its scope.
                pending_fn_key = false;
                pending_impl_key = false;
            }
            TokenKind::Ident if t.text == "to_bits" => {
                let (in_key_fn, in_key_impl) = scopes.last().copied().unwrap_or((false, false));
                let in_key_stmt = statement_window(tokens, i).any(|w| {
                    w.kind == TokenKind::Ident
                        && (STMT_MARKERS.contains(&w.text.as_str())
                            || w.text.to_ascii_lowercase().contains("hash"))
                });
                if in_key_fn || in_key_impl || in_key_stmt {
                    out.push(Finding {
                        rule: "float-bits-key",
                        line: t.line,
                        col: t.col,
                        message: "f64::to_bits in a key/hash position: -0.0 and 0.0 are equal \
                                  floats with distinct bit patterns, so they split one logical \
                                  key into two entries; canonicalize the zero sign (or key on \
                                  an integer) first"
                            .to_string(),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Tokens of the statement containing index `i`: between the nearest
/// `;`/`{`/`}` on each side, exclusive.
fn statement_window(tokens: &[Token], i: usize) -> impl Iterator<Item = &Token> {
    let boundary = |t: &Token| t.is_punct(';') || t.is_punct('{') || t.is_punct('}');
    let start = (0..i)
        .rev()
        .find(|&j| boundary(&tokens[j]))
        .map_or(0, |j| j + 1);
    let end = (i..tokens.len())
        .find(|&j| boundary(&tokens[j]))
        .unwrap_or(tokens.len());
    tokens[start..end].iter()
}

/// **undocumented-unsafe** — every `unsafe` block or item needs a nearby
/// `SAFETY` comment (`// SAFETY: …` above a block, `/// # Safety` on an
/// `unsafe fn`'s docs).
///
/// `unsafe` in *type* position (`let f: unsafe extern "C" fn(i32)`) is not
/// an obligation and is skipped.
fn undocumented_unsafe(tokens: &[Token], comments: &[Comment]) -> Vec<Finding> {
    let documented = |line: u32| {
        comments.iter().any(|c| {
            c.end_line <= line
                && c.end_line + 6 >= line
                && c.text.to_ascii_lowercase().contains("safety")
        })
    };
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if !t.is_ident("unsafe") {
            continue;
        }
        let obligation = if punct_at(tokens, i + 1, '{') {
            true // unsafe block
        } else if matches!(
            ident_at(tokens, i + 1),
            Some("fn" | "extern" | "impl" | "trait")
        ) {
            // Item definition unless the keyword sits in type position.
            !tokens.get(i.wrapping_sub(1)).is_some_and(|p| {
                p.kind == TokenKind::Punct
                    && matches!(p.text.as_str(), ":" | "=" | "," | "<" | "(" | "&" | ">")
            }) || i == 0
        } else {
            false
        };
        if obligation && !documented(t.line) {
            out.push(Finding {
                rule: "undocumented-unsafe",
                line: t.line,
                col: t.col,
                message: "unsafe without a SAFETY comment: state the invariant the caller or \
                          block relies on (within the 6 lines above, e.g. `// SAFETY: ...`)"
                    .to_string(),
            });
        }
    }
    out
}

/// **guard-held-call** — a method call on `self` while a `MutexGuard`
/// binding is live in scope.
///
/// The PR 3 deadlock: a sweep-cache recompute path re-entered
/// `run_sweeps` — which takes the same lock — while the `match` scrutinee
/// still held the guard. Intra-function heuristic: a `let` whose
/// initializer calls `lock_recover(..)`, `.lock()`, or a local `lock(..)`
/// helper starts a live guard; the guard dies at the end of its block or
/// at `drop(binding)`; in between, any `self.method(..)` call is flagged.
/// Over-approximate by design — a call that provably takes no lock can
/// carry an inline allow with its reason.
fn guard_held_call(tokens: &[Token]) -> Vec<Finding> {
    struct Guard {
        name: String,
        depth: usize,
        line: u32,
    }
    let mut out = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // The binding currently being built: Some((name, let-depth, saw lockish
    // call)) between `let` and its terminating `;`.
    let mut pending: Option<(String, usize, bool)> = None;
    for i in 0..tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct if t.text == "{" => depth += 1,
            TokenKind::Punct if t.text == "}" => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            TokenKind::Punct if t.text == ";" => {
                if let Some((name, let_depth, lockish)) = pending.take() {
                    if depth == let_depth && lockish {
                        guards.push(Guard {
                            name,
                            depth,
                            line: t.line,
                        });
                    } else if depth != let_depth {
                        // `;` inside a nested block of the initializer —
                        // the binding is still forming.
                        pending = Some((name, let_depth, lockish));
                    }
                }
            }
            TokenKind::Ident if t.text == "let" => {
                let mut j = i + 1;
                if ident_at(tokens, j) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = ident_at(tokens, j) {
                    pending = Some((name.to_string(), depth, false));
                }
            }
            TokenKind::Ident
                if (t.text == "lock_recover" || t.text == "lock")
                    && punct_at(tokens, i + 1, '(') =>
            {
                // A lock call whose result is immediately method-chained
                // (`lock_recover(&m).get(k)`) is a temporary consumed within
                // this statement, not a live binding.
                let chained = matching_paren(tokens, i + 1)
                    .is_some_and(|close| punct_at(tokens, close + 1, '.'));
                if !chained {
                    if let Some(p) = pending.as_mut() {
                        p.2 = true;
                    }
                }
            }
            TokenKind::Ident if t.text == "drop" && punct_at(tokens, i + 1, '(') => {
                if let Some(name) = ident_at(tokens, i + 2) {
                    if punct_at(tokens, i + 3, ')') {
                        guards.retain(|g| g.name != name);
                    }
                }
            }
            TokenKind::Ident
                if t.text == "self"
                    && punct_at(tokens, i + 1, '.')
                    && ident_at(tokens, i + 2).is_some()
                    && punct_at(tokens, i + 3, '(') =>
            {
                if let Some(g) = guards.last() {
                    let method = &tokens[i + 2].text;
                    out.push(Finding {
                        rule: "guard-held-call",
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "self.{method}(..) called while MutexGuard `{}` (bound near line \
                             {}) is live — if the callee takes the same lock this deadlocks \
                             (the PR 3 class); drop the guard first",
                            g.name, g.line
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// **env-literal** — `env::var("…")` with a literal outside
/// [`KNOWN_ENV_KNOBS`].
///
/// Every environment knob must be documented (README + the knob list here);
/// ad-hoc `env::var` literals become load-bearing configuration nobody can
/// discover. Non-literal arguments (named constants) are exempt — the
/// constant's definition site carries the documentation.
fn env_literal(tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if ident_at(tokens, i) == Some("env")
            && punct_at(tokens, i + 1, ':')
            && punct_at(tokens, i + 2, ':')
            && ident_at(tokens, i + 3) == Some("var")
            && punct_at(tokens, i + 4, '(')
        {
            let Some(arg) = tokens.get(i + 5) else {
                continue;
            };
            if arg.kind == TokenKind::Str && !KNOWN_ENV_KNOBS.contains(&arg.text.as_str()) {
                out.push(Finding {
                    rule: "env-literal",
                    line: arg.line,
                    col: arg.col,
                    message: format!(
                        "env::var({:?}) is not a documented knob (known: {}); add it to \
                         KNOWN_ENV_KNOBS and the README knob table, or read it through a \
                         documented const",
                        arg.text,
                        KNOWN_ENV_KNOBS.join(", ")
                    ),
                });
            }
        }
    }
    out
}

/// **hashmap-ordered-output** — a statement that iterates a `HashMap` /
/// `HashSet` straight into order-sensitive output.
///
/// Hash iteration order is arbitrary and changes across runs (the seed is
/// randomized per process), so a `map.keys().collect::<Vec<_>>()` that
/// reaches a report, a JSON array, or printed lines makes the output
/// nondeterministic — the bug class the incremental-update work had to dodge
/// when patching cached artifacts. The rule tracks bindings declared as
/// `HashMap`/`HashSet` in the file, then flags statements where such a
/// binding is iterated (`keys`/`values`/`iter`/`into_iter`/`drain`) *and*
/// the same statement funnels the order into a sink (`collect`, `push`,
/// `extend`, `join`, `format!`/`write!`-family, `Json`). Statements that
/// sort in place, mention a `BTree` container, or are immediately followed
/// by a sorting statement (the collect-then-sort idiom) are exempt; plain
/// `for` loops are out of scope because order-independent accumulation over
/// a map is the workspace's bread and butter.
fn hashmap_ordered_output(tokens: &[Token]) -> Vec<Finding> {
    const ITERS: &[&str] = &["keys", "values", "iter", "into_iter", "drain"];
    const SINKS: &[&str] = &[
        "collect", "push", "extend", "join", "format", "write", "writeln", "print", "println",
        "Json",
    ];
    const SORTS: &[&str] = &[
        "sort",
        "sort_by",
        "sort_by_key",
        "sort_unstable",
        "sort_unstable_by",
        "sort_unstable_by_key",
    ];
    // Pass 1: names declared as hash containers anywhere in the file —
    // `let [mut] name = ... HashMap ...`, or a `name: HashMap<..>` field /
    // parameter declaration.
    let mut names: Vec<String> = Vec::new();
    for i in 0..tokens.len() {
        if !matches!(ident_at(tokens, i), Some("HashMap" | "HashSet")) {
            continue;
        }
        let boundary = |t: &Token| t.is_punct(';') || t.is_punct('{') || t.is_punct('}');
        let start = (0..i)
            .rev()
            .find(|&j| boundary(&tokens[j]))
            .map_or(0, |j| j + 1);
        let mut named = None;
        // A `let` in the statement wins; otherwise the nearest `name :`
        // (single colon — `::` path segments don't count) before the type.
        for j in start..i {
            if ident_at(tokens, j) == Some("let") {
                let mut k = j + 1;
                if ident_at(tokens, k) == Some("mut") {
                    k += 1;
                }
                named = ident_at(tokens, k).map(str::to_string);
                break;
            }
        }
        if named.is_none() {
            for j in (start..i).rev() {
                if punct_at(tokens, j, ':')
                    && !punct_at(tokens, j + 1, ':')
                    && (j == 0 || !punct_at(tokens, j - 1, ':'))
                {
                    if let Some(name) = (j > 0).then(|| ident_at(tokens, j - 1)).flatten() {
                        named = Some(name.to_string());
                        break;
                    }
                }
            }
        }
        if let Some(name) = named {
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    // Pass 2: iteration of a known container whose statement also sinks the
    // order somewhere ordered, with no sort in this or the next statement.
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !(punct_at(tokens, i, '.')
            && matches!(ident_at(tokens, i + 1), Some(m) if ITERS.contains(&m))
            && punct_at(tokens, i + 2, '('))
        {
            continue;
        }
        let Some(receiver) = (i > 0).then(|| ident_at(tokens, i - 1)).flatten() else {
            continue;
        };
        if !names.iter().any(|n| n == receiver) {
            continue;
        }
        let window: Vec<&Token> = statement_window(tokens, i).collect();
        let has = |set: &[&str]| {
            window
                .iter()
                .any(|t| t.kind == TokenKind::Ident && set.contains(&t.text.as_str()))
        };
        if !has(SINKS) || has(SORTS) || window.iter().any(|t| t.text.contains("BTree")) {
            continue;
        }
        // Collect-then-sort: a sorting call in the immediately following
        // statement sanctions the collected order.
        let boundary = |t: &Token| t.is_punct(';') || t.is_punct('{') || t.is_punct('}');
        let end = (i..tokens.len())
            .find(|&j| boundary(&tokens[j]))
            .unwrap_or(tokens.len());
        let next_end = (end + 1..tokens.len())
            .find(|&j| boundary(&tokens[j]))
            .unwrap_or(tokens.len());
        let next_sorts = tokens[(end + 1).min(tokens.len())..next_end]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && SORTS.contains(&t.text.as_str()));
        if next_sorts {
            continue;
        }
        let t = &tokens[i + 1];
        out.push(Finding {
            rule: "hashmap-ordered-output",
            line: t.line,
            col: t.col,
            message: format!(
                "`{receiver}.{}()` iterates a hash container into ordered output — hash \
                 iteration order is nondeterministic across runs; sort the collected items \
                 or use a BTreeMap/BTreeSet",
                t.text
            ),
        });
    }
    out
}

/// **instant-now-scored-path** — `Instant::now()` inside a scored or cached
/// computation path.
///
/// Responsibility scores and cached artifacts must be pure functions of the
/// data and the knobs: a wall-clock read inside the computation makes the
/// value (or the cached record it lands in) differ run to run — the
/// timing-nondeterminism cousin of `hashmap-ordered-output`. Two "scored
/// path" signals, both token-local like the other rules:
///
/// * the call sits inside a fn whose name mentions scoring
///   (`score`/`responsibility`/`rank`), where the clock can leak into the
///   returned value;
/// * the call's own statement also writes a cache
///   (`insert`/`entry`/`get_or_insert*`/`or_insert*`), i.e. a timestamp is
///   being recorded into a keyed artifact at insert time.
///
/// Timing *around* a pass — `let t0 = Instant::now();` in a build or query
/// fn, with `t0.elapsed()` stored as diagnostic metadata — stays legal:
/// those statements neither live in a scoring fn nor touch a cache.
fn instant_now_scored_path(tokens: &[Token]) -> Vec<Finding> {
    const SCORED_NAMES: &[&str] = &["score", "responsibility", "rank"];
    const CACHE_MARKERS: &[&str] = &[
        "insert",
        "entry",
        "get_or_insert",
        "get_or_insert_with",
        "or_insert",
        "or_insert_with",
    ];
    // Scope stack: true while inside a fn whose name looks like scoring.
    let mut scopes: Vec<bool> = Vec::new();
    let mut pending_scored_fn = false;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Ident if t.text == "fn" => {
                if let Some(name) = ident_at(tokens, i + 1) {
                    let lower = name.to_ascii_lowercase();
                    pending_scored_fn = SCORED_NAMES.iter().any(|m| lower.contains(m));
                }
            }
            TokenKind::Punct if t.text == "{" => {
                let inherited = scopes.last().copied().unwrap_or(false);
                scopes.push(inherited || pending_scored_fn);
                pending_scored_fn = false;
            }
            TokenKind::Punct if t.text == "}" => {
                scopes.pop();
            }
            TokenKind::Punct if t.text == ";" => {
                // A bodiless declaration never opened its scope.
                pending_scored_fn = false;
            }
            TokenKind::Ident
                if t.text == "Instant"
                    && punct_at(tokens, i + 1, ':')
                    && punct_at(tokens, i + 2, ':')
                    && ident_at(tokens, i + 3) == Some("now")
                    && punct_at(tokens, i + 4, '(') =>
            {
                let in_scored_fn = scopes.last().copied().unwrap_or(false);
                let in_cache_stmt = statement_window(tokens, i).any(|w| {
                    w.kind == TokenKind::Ident && CACHE_MARKERS.contains(&w.text.as_str())
                });
                if in_scored_fn || in_cache_stmt {
                    out.push(Finding {
                        rule: "instant-now-scored-path",
                        line: t.line,
                        col: t.col,
                        message: if in_cache_stmt {
                            "Instant::now() recorded into a cache entry: the stored artifact \
                             differs run to run; keep timestamps out of keyed records (store \
                             them beside the cache, or drop them)"
                                .to_string()
                        } else {
                            "Instant::now() inside a scoring path: responsibility values must \
                             be pure functions of data and knobs, never of wall-clock; hoist \
                             the timing to the caller"
                                .to_string()
                        },
                    });
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rule: &'static str, src: &str) -> Vec<Finding> {
        check_all(&lex(src), &[rule])
    }

    #[test]
    fn raw_lock_flags_unwrap_and_expect_but_not_recover() {
        let bad = "let g = self.cache.lock().unwrap();\nlet h = m.lock().expect(\"poisoned\");";
        let found = run("raw-lock", bad);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].line, 1);
        assert_eq!(found[1].line, 2);
        let good = "let g = lock_recover(&self.cache);\nlet h = m.lock().unwrap_or_else(|e| e.into_inner());";
        assert!(run("raw-lock", good).is_empty());
        // Decoy inside a string literal.
        assert!(run("raw-lock", r#"let s = ".lock().unwrap()";"#).is_empty());
    }

    #[test]
    fn nan_sort_flags_partial_cmp_comparators_only() {
        let bad = "v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));";
        assert_eq!(run("nan-sort", bad).len(), 1);
        let bad2 = "let m = xs.iter().max_by(|a, b| a.partial_cmp(b).unwrap());";
        assert_eq!(run("nan-sort", bad2).len(), 1);
        let good = "v.sort_by(f64::total_cmp);\nv.sort_by(|a, b| a.0.cmp(&b.0));";
        assert!(run("nan-sort", good).is_empty());
        // partial_cmp outside a sort call is not this rule's business.
        let unrelated = "let o = a.partial_cmp(&b);";
        assert!(run("nan-sort", unrelated).is_empty());
        // Decoy in a comment.
        assert!(run(
            "nan-sort",
            "// v.sort_by(partial_cmp)\nv.sort_by(f64::total_cmp);"
        )
        .is_empty());
    }

    #[test]
    fn float_bits_key_needs_a_key_context() {
        let in_key_fn = "fn estimator_key(x: f64) -> u64 { x.to_bits() }";
        assert_eq!(run("float-bits-key", in_key_fn).len(), 1);
        let in_key_impl = "impl StructuralKey { fn of(t: f64) -> u64 { t.to_bits() } }";
        assert_eq!(run("float-bits-key", in_key_impl).len(), 1);
        let in_hash_impl =
            "impl Hash for P { fn hash<H>(&self, h: &mut H) { self.x.to_bits().hash(h); } }";
        assert!(!run("float-bits-key", in_hash_impl).is_empty());
        let in_insert_stmt = "fn f(m: &mut M, x: f64) { m.insert(x.to_bits(), 1); }";
        assert_eq!(run("float-bits-key", in_insert_stmt).len(), 1);
        // A sort comparator tie-breaking on bits is deterministic ordering,
        // not keying — must not fire.
        let comparator =
            "fn order(v: &mut Vec<C>) { v.sort_by(|a, b| a.s.to_bits().cmp(&b.s.to_bits())); }";
        assert!(run("float-bits-key", comparator).is_empty());
        // Bit-identity assertions in tests are not keys either.
        let assertion = "fn check(a: f64, b: f64) { assert_eq!(a.to_bits(), b.to_bits()); }";
        assert!(run("float-bits-key", assertion).is_empty());
    }

    #[test]
    fn undocumented_unsafe_wants_a_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        assert_eq!(run("undocumented-unsafe", bad).len(), 1);
        let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: p is valid for reads, checked by the caller.\n    unsafe { *p }\n}";
        assert!(run("undocumented-unsafe", good).is_empty());
        let doc_fn = "/// # Safety\n/// Caller must ensure AVX2.\npub unsafe fn kernel() {}";
        assert!(run("undocumented-unsafe", doc_fn).is_empty());
        let bad_fn = "pub unsafe fn kernel() {}";
        assert_eq!(run("undocumented-unsafe", bad_fn).len(), 1);
        // Type position is not an obligation.
        let type_pos = "let f: unsafe extern \"C\" fn(i32) = handler;";
        assert!(run("undocumented-unsafe", type_pos).is_empty());
        // The comment must be close (within 6 lines).
        let far = "// SAFETY: stale note\n\n\n\n\n\n\n\nfn f(p: *const u8) -> u8 { unsafe { *p } }";
        assert_eq!(run("undocumented-unsafe", far).len(), 1);
    }

    #[test]
    fn guard_held_call_tracks_scope_and_drop() {
        let bad = "fn f(&self) {\n    let mut cache = lock_recover(&self.cache);\n    self.run_sweeps(&cache);\n}";
        let found = run("guard-held-call", bad);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
        // Guard dropped before the call: fine.
        let dropped = "fn f(&self) {\n    let g = lock_recover(&self.cache);\n    drop(g);\n    self.run_sweeps();\n}";
        assert!(run("guard-held-call", dropped).is_empty());
        // Guard confined to an inner block: fine.
        let scoped = "fn f(&self) {\n    {\n        let g = self.inner.lock();\n        g.insert(1);\n    }\n    self.recompute();\n}";
        assert!(run("guard-held-call", scoped).is_empty());
        // Field access and chained field paths are not method calls.
        let fields = "fn f(&self) {\n    let g = lock_recover(&self.cache);\n    let n = self.threads;\n    let p = self.prefilter.as_ref();\n}";
        assert!(run("guard-held-call", fields).is_empty());
        // A temporary (no binding) holds no guard past its statement.
        let temporary =
            "fn f(&self) {\n    lock_recover(&self.cache).insert(1);\n    self.recompute();\n}";
        assert!(run("guard-held-call", temporary).is_empty());
        // A binding that *consumes* the guard inline (method-chained lock
        // call) holds no guard either — the session's eviction-fallback
        // `let cached = … lock_recover(&cache).get_quiet(key) …` idiom.
        let consumed = "fn f(&self) {\n    let cached = lock_recover(&self.cache).get_quiet(key);\n    self.recompute(cached);\n}";
        assert!(run("guard-held-call", consumed).is_empty());
    }

    #[test]
    fn guard_held_call_survives_blocky_initializers() {
        // An initializer containing a block (`match`/`if`) must not lose
        // the binding at the inner `;`.
        let bad = "fn f(&self) {\n    let g = match self.kind {\n        K::A => lock_recover(&self.a),\n        K::B => lock_recover(&self.b),\n    };\n    self.recompute();\n}";
        assert_eq!(run("guard-held-call", bad).len(), 1);
    }

    #[test]
    fn env_literal_enforces_the_knob_list() {
        assert!(run("env-literal", "let v = std::env::var(\"GOPHER_THREADS\");").is_empty());
        assert!(run("env-literal", "let v = std::env::var(\"GOPHER_SIMD\");").is_empty());
        let bad = "let v = std::env::var(\"GOPHER_SECRET_MODE\");";
        let found = run("env-literal", bad);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("GOPHER_SECRET_MODE"));
        // Named constants are exempt: the const site documents the knob.
        assert!(run("env-literal", "let v = std::env::var(THREADS_ENV);").is_empty());
        // Other env:: functions are fine.
        assert!(run("env-literal", "let d = std::env::temp_dir();").is_empty());
    }

    #[test]
    fn hashmap_ordered_output_flags_unsorted_sinks_only() {
        // A map iterated into a collected Vec that reaches output: flagged.
        let bad = "fn f() {\n    let m: HashMap<String, u64> = HashMap::new();\n    let keys: Vec<&String> = m.keys().collect();\n    emit(&keys);\n}";
        let found = run("hashmap-ordered-output", bad);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 3);
        assert!(found[0].message.contains("m.keys()"));

        // Collect-then-sort is the sanctioned idiom: not flagged.
        let sorted = "fn f() {\n    let m: HashMap<String, u64> = HashMap::new();\n    let mut keys: Vec<&String> = m.keys().collect();\n    keys.sort();\n}";
        assert!(run("hashmap-ordered-output", sorted).is_empty());

        // A sort inside the same statement chain also sanctions it.
        let inline = "fn f(m: &HashMap<u64, u64>) {\n    let mut v: Vec<u64> = m.values().copied().collect(); v.sort_unstable();\n}";
        assert!(run("hashmap-ordered-output", inline).is_empty());

        // Iterating into a counter (no ordered sink): order-independent, fine.
        let counter = "fn f(m: &HashMap<u64, u64>) {\n    let mut n = 0;\n    for k in m.keys() { n += 1; }\n}";
        assert!(run("hashmap-ordered-output", counter).is_empty());

        // BTreeMap iteration is ordered by definition: fine.
        let btree = "fn f(m: &BTreeMap<u64, u64>) {\n    let v: Vec<&u64> = m.keys().collect();\n    emit(&v);\n}";
        assert!(run("hashmap-ordered-output", btree).is_empty());

        // A Vec binding iterated into output is not this rule's business.
        let vec_ok = "fn f() {\n    let v: Vec<u64> = Vec::new();\n    let out: Vec<&u64> = v.iter().collect();\n    emit(&out);\n}";
        assert!(run("hashmap-ordered-output", vec_ok).is_empty());

        // Struct fields declared as HashMap are tracked too.
        let field = "struct S { entries: HashMap<u64, u64> }\nimpl S {\n    fn dump(&self) -> String {\n        let parts: Vec<String> = entries.values().map(|v| v.to_string()).collect();\n        parts.join(\",\")\n    }\n}";
        assert_eq!(run("hashmap-ordered-output", field).len(), 1);
    }

    #[test]
    fn instant_now_scored_path_needs_a_scored_or_cached_context() {
        // Inside a fn whose name says "score": flagged.
        let in_scorer = "fn score_subset(&self, rows: &[u32]) -> f64 {\n    let t0 = Instant::now();\n    self.eval(rows)\n}";
        let found = run("instant-now-scored-path", in_scorer);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 2);
        // "responsibility" and "rank" count as scoring vocabulary too.
        let in_resp = "fn responsibility(&self) -> f64 { let t = Instant::now(); 0.0 }";
        assert_eq!(run("instant-now-scored-path", in_resp).len(), 1);
        // A timestamp written into a cache entry: flagged regardless of fn name.
        let in_insert = "fn record(&self) { self.cache.insert(key, Instant::now()); }";
        assert_eq!(run("instant-now-scored-path", in_insert).len(), 1);
        let in_or_insert = "fn record(&self) { map.entry(key).or_insert_with(|| Instant::now()); }";
        assert_eq!(run("instant-now-scored-path", in_or_insert).len(), 1);
        // Timing *around* a build pass, stored as diagnostic metadata: legal.
        let around = "fn build(&self) -> Artifact {\n    let t0 = Instant::now();\n    let a = self.sweep();\n    Artifact { build_time: t0.elapsed(), a }\n}";
        assert!(run("instant-now-scored-path", around).is_empty());
        // A query fn timing its own phases: legal.
        let query = "fn answer(&self, req: &Req) -> Resp {\n    let t_query = Instant::now();\n    self.run(req)\n}";
        assert!(run("instant-now-scored-path", query).is_empty());
        // Decoy in a comment.
        assert!(run(
            "instant-now-scored-path",
            "// fn score() { Instant::now() }\nfn build() { let t = Instant::now(); }"
        )
        .is_empty());
    }

    #[test]
    fn findings_come_back_in_source_order() {
        let src = "let b = m.lock().unwrap();\nv.sort_by(|a, c| a.partial_cmp(c).unwrap());";
        let all: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        let found = check_all(&lex(src), &all);
        assert_eq!(found.len(), 2);
        assert!(found[0].line <= found[1].line);
        assert_eq!(found[0].rule, "raw-lock");
        assert_eq!(found[1].rule, "nan-sort");
    }
}
