//! Workspace walking, suppression handling, and report assembly.
//!
//! Suppressions are inline comments of the form
//! `// gopher-lint: allow(rule-id) — reason`: the rule list is mandatory,
//! and so is the reason — an allow without one is itself a finding
//! (`bare-allow`), because an unexplained suppression is exactly the kind
//! of reviewer-memory this tool exists to replace. An allow covers its own
//! line and the line directly below it (the trailing-comment and
//! line-above idioms), and suppressed findings stay counted in the report.

use crate::lexer::{lex, Comment};
use crate::rules::{check_all, is_known_rule, Finding};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// One finding located in a file.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path of the offending file (as given / relative to the scan root).
    pub file: String,
    /// The rule id.
    pub rule: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

/// The outcome of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Active findings — each one fails the run.
    pub findings: Vec<Violation>,
    /// Findings silenced by a reasoned `gopher-lint: allow`.
    pub suppressed: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// A parsed `gopher-lint: allow(...)` comment.
struct Allow {
    rules: Vec<String>,
    /// Lines the allow covers (its own line and the next).
    lines: [u32; 2],
}

/// Parses suppression comments. Returns the allows plus `bare-allow`
/// findings for any allow missing its rule list or its reason.
fn parse_allows(comments: &[Comment]) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut bare = Vec::new();
    for c in comments {
        let text = c.text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = text.strip_prefix("gopher-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let mut fail = |message: String| {
            bare.push(Finding {
                rule: "bare-allow",
                line: c.line,
                col: 1,
                message,
            });
        };
        let Some(open) = rest.strip_prefix("allow").map(str::trim_start) else {
            fail(format!("unrecognized gopher-lint directive: {text:?}"));
            continue;
        };
        let Some((ids, reason)) = open.strip_prefix('(').and_then(|s| s.split_once(')')) else {
            fail("gopher-lint: allow needs a parenthesized rule list".to_string());
            continue;
        };
        let rules: Vec<String> = ids
            .split(',')
            .map(|id| id.trim().to_string())
            .filter(|id| !id.is_empty())
            .collect();
        if rules.is_empty() {
            fail("gopher-lint: allow() names no rules".to_string());
            continue;
        }
        if let Some(unknown) = rules.iter().find(|id| !is_known_rule(id)) {
            fail(format!("gopher-lint: allow names unknown rule {unknown:?}"));
            continue;
        }
        // The reason follows the rule list after any dash/colon separator.
        let reason = reason
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':', ','])
            .trim();
        if reason.is_empty() {
            fail(
                "gopher-lint: allow without a reason — say why the invariant holds here, e.g. \
                 `// gopher-lint: allow(raw-lock) — guard never crosses a panic boundary`"
                    .to_string(),
            );
            continue;
        }
        allows.push(Allow {
            rules,
            lines: [c.end_line, c.end_line + 1],
        });
    }
    (allows, bare)
}

/// Analyzes one source text. Returns `(active, suppressed)` findings.
pub fn analyze_source(source: &str, enabled: &[&str]) -> (Vec<Finding>, Vec<Finding>) {
    let lexed = lex(source);
    let (allows, bare) = parse_allows(&lexed.comments);
    let mut covered: HashMap<&str, Vec<u32>> = HashMap::new();
    for allow in &allows {
        for rule in &allow.rules {
            covered.entry(rule).or_default().extend(allow.lines);
        }
    }
    let mut active = Vec::new();
    let mut suppressed = Vec::new();
    for finding in check_all(&lexed, enabled) {
        let is_covered = covered
            .get(finding.rule)
            .is_some_and(|lines| lines.contains(&finding.line));
        if is_covered {
            suppressed.push(finding);
        } else {
            active.push(finding);
        }
    }
    // Malformed allows always fail the run — they cannot suppress anything,
    // least of all themselves.
    active.extend(bare);
    active.sort_by_key(|f| (f.line, f.col));
    (active, suppressed)
}

/// Directories never descended into: build artifacts, VCS internals, and
/// the analyzer's own deliberately-bad rule fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "node_modules"];

/// Collects every `.rs` file under `root` (sorted for deterministic
/// output), skipping `target`, `.git`, `fixtures`, `node_modules`, and
/// hidden directories (see `SKIP_DIRS`).
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Analyzes every `.rs` file reachable from `paths` (files are taken as-is,
/// directories are walked). File labels in the report are made relative to
/// `relative_to` when possible.
pub fn analyze_paths(
    paths: &[PathBuf],
    relative_to: &Path,
    enabled: &[&str],
) -> std::io::Result<Analysis> {
    let mut files = Vec::new();
    for path in paths {
        if path.is_dir() {
            files.extend(collect_rs_files(path)?);
        } else {
            files.push(path.clone());
        }
    }
    let mut analysis = Analysis::default();
    for file in &files {
        let source = std::fs::read_to_string(file)?;
        let label = file
            .strip_prefix(relative_to)
            .unwrap_or(file)
            .display()
            .to_string();
        let (active, suppressed) = analyze_source(&source, enabled);
        let locate = |f: Finding| Violation {
            file: label.clone(),
            rule: f.rule.to_string(),
            line: f.line,
            col: f.col,
            message: f.message,
        };
        analysis.findings.extend(active.into_iter().map(locate));
        analysis
            .suppressed
            .extend(suppressed.into_iter().map(locate));
        analysis.files_scanned += 1;
    }
    Ok(analysis)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: &[&str] = &[
        "raw-lock",
        "nan-sort",
        "float-bits-key",
        "undocumented-unsafe",
        "guard-held-call",
        "env-literal",
        "hashmap-ordered-output",
    ];

    #[test]
    fn allow_with_reason_suppresses_and_is_counted() {
        let src = "\
// gopher-lint: allow(raw-lock) — this test asserts the poisoned-lock panic itself.
let g = m.lock().unwrap();
";
        let (active, suppressed) = analyze_source(src, ALL);
        assert!(active.is_empty(), "unexpected findings: {active:?}");
        assert_eq!(suppressed.len(), 1);
        assert_eq!(suppressed[0].rule, "raw-lock");
    }

    #[test]
    fn trailing_allow_on_the_same_line_works() {
        let src = "let g = m.lock().unwrap(); // gopher-lint: allow(raw-lock) — poisoning is the point here\n";
        let (active, suppressed) = analyze_source(src, ALL);
        assert!(active.is_empty());
        assert_eq!(suppressed.len(), 1);
    }

    #[test]
    fn allow_without_reason_is_its_own_finding_and_suppresses_nothing() {
        let src = "\
// gopher-lint: allow(raw-lock)
let g = m.lock().unwrap();
";
        let (active, suppressed) = analyze_source(src, ALL);
        assert!(suppressed.is_empty());
        assert_eq!(active.len(), 2, "{active:?}");
        assert!(active.iter().any(|f| f.rule == "bare-allow"));
        assert!(active.iter().any(|f| f.rule == "raw-lock"));
    }

    #[test]
    fn allow_for_the_wrong_rule_does_not_suppress() {
        let src = "\
// gopher-lint: allow(nan-sort) — wrong rule on purpose
let g = m.lock().unwrap();
";
        let (active, _) = analyze_source(src, ALL);
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].rule, "raw-lock");
    }

    #[test]
    fn allow_with_unknown_rule_id_is_flagged() {
        let src = "// gopher-lint: allow(made-up-rule) — whatever\n";
        let (active, _) = analyze_source(src, ALL);
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].rule, "bare-allow");
        assert!(active[0].message.contains("made-up-rule"));
    }

    #[test]
    fn one_allow_can_cover_multiple_rules() {
        let src = "\
// gopher-lint: allow(raw-lock, nan-sort) — crafted snippet exercising both classes at once
let g = m.lock().unwrap(); v.sort_by(|a, b| a.partial_cmp(b).unwrap());
";
        let (active, suppressed) = analyze_source(src, ALL);
        assert!(active.is_empty(), "{active:?}");
        assert_eq!(suppressed.len(), 2);
    }

    #[test]
    fn walker_skips_fixture_and_target_dirs() {
        let dir = std::env::temp_dir().join(format!("gopher-analyze-walk-{}", std::process::id()));
        for sub in ["src", "fixtures", "target/debug"] {
            std::fs::create_dir_all(dir.join(sub)).expect("mkdir");
        }
        std::fs::write(dir.join("src/ok.rs"), "fn main() {}\n").expect("write");
        std::fs::write(dir.join("fixtures/bad.rs"), "bad\n").expect("write");
        std::fs::write(dir.join("target/debug/gen.rs"), "generated\n").expect("write");
        let files = collect_rs_files(&dir).expect("walk");
        let names: Vec<String> = files
            .iter()
            .map(|p| p.strip_prefix(&dir).expect("prefix").display().to_string())
            .collect();
        assert_eq!(names, vec!["src/ok.rs".to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
