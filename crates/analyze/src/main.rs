//! CLI for the workspace invariant linter. See `gopher-analyze --help`.

#![forbid(unsafe_code)]

use gopher_analyze::{analyze_paths, Analysis, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
gopher-analyze — workspace invariant linter (deny-by-default)

USAGE:
    gopher-analyze [OPTIONS] [PATHS...]

Scans every .rs file under PATHS (default: the workspace root, i.e. the
current directory), skipping target/, hidden dirs, and fixtures/.
Exits 0 when clean, 1 when any finding is active, 2 on usage errors.

OPTIONS:
    --deny-all        Enable every rule (the default; kept explicit for CI)
    --rules <a,b>     Run only the named rules
    --list            List the rules and the suppression syntax, then exit
    --json            Machine-readable report on stdout
    --root <DIR>      Directory findings are reported relative to, and the
                      default scan target (default: current directory)
    -h, --help        This help

Suppressing a finding requires a reason, which is counted in the report:
    // gopher-lint: allow(rule-id) — reason the invariant holds here
";

struct Options {
    json: bool,
    list: bool,
    rules: Vec<String>,
    root: PathBuf,
    paths: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        list: false,
        rules: Vec::new(),
        root: PathBuf::from("."),
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--list" => opts.list = true,
            "--deny-all" => opts.rules.clear(),
            "--rules" => {
                let list = it.next().ok_or("--rules needs a comma-separated list")?;
                opts.rules = list.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--root" => {
                opts.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    for id in &opts.rules {
        if !gopher_analyze::rules::is_known_rule(id) {
            return Err(format!("unknown rule {id:?} (see gopher-analyze --list)"));
        }
    }
    Ok(opts)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json(analysis: &Analysis) -> String {
    let render_list = |items: &[gopher_analyze::Violation]| {
        let entries: Vec<String> = items
            .iter()
            .map(|v| {
                format!(
                    "{{\"file\": \"{}\", \"rule\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
                    json_escape(&v.file),
                    json_escape(&v.rule),
                    v.line,
                    v.col,
                    json_escape(&v.message)
                )
            })
            .collect();
        format!("[{}]", entries.join(", "))
    };
    format!(
        "{{\"findings\": {}, \"suppressed\": {}, \"files_scanned\": {}, \"counts\": {{\"findings\": {}, \"suppressed\": {}}}}}",
        render_list(&analysis.findings),
        render_list(&analysis.suppressed),
        analysis.files_scanned,
        analysis.findings.len(),
        analysis.suppressed.len()
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("gopher-analyze: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.list {
        println!("rules (all deny-by-default):");
        for rule in RULES {
            println!("  {:20} {}", rule.id, rule.summary);
        }
        println!("\nsuppression (reason mandatory, counted in the report):");
        println!("  // gopher-lint: allow(<rule-id>) — <reason>");
        return ExitCode::SUCCESS;
    }
    let enabled: Vec<&str> = if opts.rules.is_empty() {
        RULES.iter().map(|r| r.id).collect()
    } else {
        opts.rules.iter().map(String::as_str).collect()
    };
    let targets = if opts.paths.is_empty() {
        vec![opts.root.clone()]
    } else {
        opts.paths.clone()
    };
    let analysis = match analyze_paths(&targets, &opts.root, &enabled) {
        Ok(analysis) => analysis,
        Err(err) => {
            eprintln!("gopher-analyze: {err}");
            return ExitCode::from(2);
        }
    };
    if opts.json {
        println!("{}", render_json(&analysis));
    } else {
        for v in &analysis.findings {
            println!("{}:{}:{}: {}: {}", v.file, v.line, v.col, v.rule, v.message);
        }
        println!(
            "gopher-analyze: {} finding(s), {} suppressed (with reasons), {} file(s) scanned",
            analysis.findings.len(),
            analysis.suppressed.len(),
            analysis.files_scanned
        );
    }
    if analysis.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
