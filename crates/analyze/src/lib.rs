//! **gopher-analyze** — the workspace invariant linter.
//!
//! Four of this repository's first six PRs shipped fixes for recurring,
//! mechanically-detectable bug families: mutex-poisoning panics, NaN-unsafe
//! `partial_cmp` sorts, the `-0.0` `f64::to_bits` cache-key collision, and
//! a re-entrant-while-holding-a-guard deadlock. This crate turns each
//! class into a deny-by-default static check so CI catches a
//! reintroduction the moment it happens, not at the next review.
//!
//! In the same offline spirit as `criterion-shim`/`proptest-shim` it is
//! **dependency-free**: a comment- and string-literal-aware Rust
//! [`lexer`], a token-sequence [`rules`] engine, and an [`engine`] that
//! walks the workspace, honors inline suppressions, and renders human or
//! `--json` reports.
//!
//! Run it over the workspace with:
//!
//! ```text
//! cargo run -p gopher-analyze --release -- --deny-all
//! ```
//!
//! Suppress a finding only with a reasoned inline allow (the reason is
//! mandatory and suppressions stay counted in the report):
//!
//! ```text
//! // gopher-lint: allow(raw-lock) — this test asserts the poison panic itself.
//! ```

#![forbid(unsafe_code)]

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{analyze_paths, analyze_source, collect_rs_files, Analysis, Violation};
pub use rules::{Finding, RuleInfo, KNOWN_ENV_KNOBS, RULES};
