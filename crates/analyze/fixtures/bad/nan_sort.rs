//! Seeded bad fixture for the `nan-sort` rule: the exact shape PR 2
//! removed from the explainer's ranking paths — `partial_cmp` comparators
//! that panic (unwrap) or silently break total order (unwrap_or(Equal))
//! the moment a NaN responsibility score appears.
//! (Not compiled into the workspace; consumed by the analyzer's tests and
//! the CI negative smoke.)

fn rank_candidates(scores: &mut Vec<(usize, f64)>) {
    // BAD: one NaN score and the ranking is nondeterministic.
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
}

fn best(scores: &[f64]) -> Option<&f64> {
    // BAD: panics on the first NaN.
    scores.iter().max_by(|a, b| a.partial_cmp(b).unwrap())
}
