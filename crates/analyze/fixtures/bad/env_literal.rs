//! Seeded bad fixture for the `env-literal` rule: an ad-hoc environment
//! knob nobody documented — configuration that silently changes behavior
//! and that no README, `--help`, or knob table will ever surface.
//! (Not compiled into the workspace; consumed by the analyzer's tests and
//! the CI negative smoke.)

fn worker_count() -> usize {
    // Documented knob: fine.
    if let Ok(v) = std::env::var("GOPHER_THREADS") {
        if let Ok(n) = v.parse() {
            return n;
        }
    }
    // BAD: an undocumented knob, invisible to every operator.
    if std::env::var("GOPHER_TURBO_MODE").is_ok() {
        return 64;
    }
    1
}
