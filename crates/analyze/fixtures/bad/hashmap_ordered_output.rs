//! Seeded bad fixture for the `hashmap-ordered-output` rule: the shape the
//! incremental-update work had to dodge — iterating a HashMap-backed cache
//! straight into a report, so the emitted order changes from run to run.
//! (Not compiled into the workspace; consumed by the analyzer's tests and
//! the CI negative smoke.)

use std::collections::HashMap;

struct Registry {
    entries: HashMap<String, u64>,
}

impl Registry {
    fn report(&self) -> String {
        // BAD: hash iteration order is seeded per process; this report's
        // line order is different on every run.
        let lines: Vec<String> = self.entries.keys().map(|k| format!("- {k}")).collect();
        lines.join("\n")
    }

    fn survivors(&self) -> usize {
        // Order-independent accumulation over the same map is fine.
        let mut n = 0;
        for _ in self.entries.values() {
            n += 1;
        }
        n
    }
}
