//! Seeded bad fixture for the `instant-now-scored-path` rule: wall-clock
//! reads leaking into a responsibility score and into a cached record —
//! both make "the same query" produce bit-different artifacts run to run.
//! (Not compiled into the workspace; consumed by the analyzer's tests and
//! the CI negative smoke.)

use std::time::Instant;

struct Scorer {
    cache: std::collections::HashMap<u64, (f64, Instant)>,
}

impl Scorer {
    // BAD: a scoring fn reading the clock — the returned responsibility
    // depends on when it ran, not only on the data and the knobs.
    fn score_subset(&self, rows: &[u32]) -> f64 {
        let started = Instant::now();
        let raw = rows.len() as f64;
        raw / started.elapsed().as_secs_f64().max(1e-9)
    }

    // BAD: a timestamp recorded into a keyed cache entry — two runs that
    // compute identical scores store unequal records.
    fn remember(&mut self, key: u64, score: f64) {
        self.cache.insert(key, (score, Instant::now()));
    }
}
