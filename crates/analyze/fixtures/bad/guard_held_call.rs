//! Seeded bad fixture for the `guard-held-call` rule: the exact shape of
//! PR 3's deadlock — the sweep-cache recompute path re-entered
//! `run_sweeps` (which takes the same lock) while the `match` scrutinee
//! still held the cache guard.
//! (Not compiled into the workspace; consumed by the analyzer's tests and
//! the CI negative smoke.)

use std::sync::{Mutex, MutexGuard};

struct Session {
    sweep_cache: Mutex<Vec<u64>>,
}

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Session {
    fn run_sweeps(&self) -> u64 {
        lock_recover(&self.sweep_cache).iter().sum()
    }

    fn answer(&self) -> u64 {
        let cache = lock_recover(&self.sweep_cache);
        match cache.first() {
            Some(&hit) => hit,
            // BAD: re-enters run_sweeps — which takes the same lock —
            // while `cache` is still live. Deadlock.
            None => self.run_sweeps(),
        }
    }
}
