//! Seeded bad fixture for the `float-bits-key` rule: the exact shape of
//! PR 5's structural-key bug — keying a cache on `f64::to_bits` of the
//! support threshold, so `-0.0` and `0.0` (equal floats, distinct bit
//! patterns) built duplicate sweep artifacts.
//! (Not compiled into the workspace; consumed by the analyzer's tests and
//! the CI negative smoke.)

use std::collections::HashMap;

struct StructuralKey {
    support_bits: u64,
}

impl StructuralKey {
    fn of(support_threshold: f64) -> Self {
        Self {
            // BAD: -0.0 and 0.0 are the same threshold but different keys.
            support_bits: support_threshold.to_bits(),
        }
    }
}

fn cache_sweep(cache: &mut HashMap<u64, Vec<usize>>, tau: f64, sweep: Vec<usize>) {
    cache.insert(tau.to_bits(), sweep);
}
