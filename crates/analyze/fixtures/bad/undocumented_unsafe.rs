//! Seeded bad fixture for the `undocumented-unsafe` rule: SIMD-style
//! kernels and FFI whose obligations are stated nowhere — the real tree's
//! AVX2 bitset kernels and `signal(2)` wiring document theirs inline.
//! (Not compiled into the workspace; consumed by the analyzer's tests and
//! the CI negative smoke.)

fn spacer() {}

unsafe fn gather(ptr: *const u64, len: usize) -> u64 {
    let mut acc = 0;
    for i in 0..len {
        acc += unsafe { *ptr.add(i) };
    }
    acc
}

fn install_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(2, 0);
    }
}
