//! Seeded bad fixture for the `raw-lock` rule: the exact shape PR 3 fixed
//! in `ExplainSession` — unwrapping a cache lock, so one panicking query
//! thread poisons the mutex and bricks the shared session forever.
//! (Not compiled into the workspace; consumed by the analyzer's tests and
//! the CI negative smoke.)

use std::sync::Mutex;

struct Session {
    sweep_cache: Mutex<Vec<u64>>,
}

impl Session {
    fn cached_sweeps(&self) -> usize {
        // BAD: a scorer panic under this lock poisons it; every later
        // query then panics here instead of answering.
        self.sweep_cache.lock().unwrap().len()
    }

    fn insert(&self, value: u64) {
        self.sweep_cache.lock().expect("cache poisoned").push(value);
    }
}
