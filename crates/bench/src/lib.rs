//! Shared experiment machinery for the reproduction harness.
//!
//! Every table and figure of the paper's evaluation (Section 6) is
//! regenerated either by the `repro` binary (quality results: Figures 3,
//! Tables 1–7, §6.7) or by the Criterion benches in `benches/` (timing
//! results: Figures 4–5, Table 7 timings). This library holds the workload
//! builders both entry points share.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod workloads;

pub use workloads::{DatasetKind, Prepared, Scale};
