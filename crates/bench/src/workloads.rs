//! Workload construction: datasets, models, and subset samplers.

use gopher_data::generators::{adult, german, sqf};
use gopher_data::{Dataset, Encoded, Encoder};
use gopher_models::train::{fit_default, fit_gd, GdConfig};
use gopher_models::{LinearSvm, LogisticRegression, Mlp};
use gopher_prng::Rng;

/// Which synthetic benchmark to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// German Credit (age bias).
    German,
    /// Adult Income (gender bias).
    Adult,
    /// Stop-Question-Frisk (race bias; label 1 = not frisked).
    Sqf,
}

impl DatasetKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::German => "German",
            Self::Adult => "Adult",
            Self::Sqf => "SQF",
        }
    }

    /// Generates `n` rows with the given seed.
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        match self {
            Self::German => german(n, seed),
            Self::Adult => adult(n, seed),
            Self::Sqf => sqf(n, seed),
        }
    }
}

/// Experiment scale: `Small` keeps everything laptop-interactive; `Paper`
/// matches the paper's dataset sizes (minutes of runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes for quick runs and CI.
    Small,
    /// The paper's sizes (German 1k, Adult 48k, SQF 72k, Fig. 5 up to 1.6M).
    Paper,
}

impl Scale {
    /// Rows for a dataset at this scale.
    pub fn rows(&self, kind: DatasetKind) -> usize {
        match (self, kind) {
            (Scale::Small, DatasetKind::German) => 1_000,
            (Scale::Small, DatasetKind::Adult) => 4_000,
            (Scale::Small, DatasetKind::Sqf) => 6_000,
            (Scale::Paper, DatasetKind::German) => 1_000,
            (Scale::Paper, DatasetKind::Adult) => 48_000,
            (Scale::Paper, DatasetKind::Sqf) => 72_000,
        }
    }
}

/// A prepared experiment: raw splits plus their encodings.
pub struct Prepared {
    /// Raw training split.
    pub train_raw: Dataset,
    /// Raw test split.
    pub test_raw: Dataset,
    /// Encoder fit on the training split.
    pub encoder: Encoder,
    /// Encoded training data.
    pub train: Encoded,
    /// Encoded test data.
    pub test: Encoded,
}

/// Generates, splits (70/30) and encodes a dataset.
pub fn prepare(kind: DatasetKind, n: usize, seed: u64) -> Prepared {
    let full = kind.generate(n, seed);
    let mut rng = Rng::new(seed ^ 0x53_50_4c_49_54); // "SPLIT"
    let (train_raw, test_raw) = full.train_test_split(0.3, &mut rng);
    let encoder = Encoder::fit(&train_raw);
    let train = encoder.transform(&train_raw);
    let test = encoder.transform(&test_raw);
    Prepared {
        train_raw,
        test_raw,
        encoder,
        train,
        test,
    }
}

/// Trains logistic regression (Newton) on the prepared data.
pub fn train_lr(p: &Prepared) -> LogisticRegression {
    let mut model = LogisticRegression::new(p.train.n_cols(), 1e-3);
    fit_default(&mut model, &p.train);
    model
}

/// Trains a squared-hinge SVM (Newton) on the prepared data.
pub fn train_svm(p: &Prepared) -> LinearSvm {
    let mut model = LinearSvm::new(p.train.n_cols(), 1e-3);
    fit_default(&mut model, &p.train);
    model
}

/// Trains the paper's 1×10 MLP with gradient descent.
pub fn train_mlp(p: &Prepared, hidden: usize, seed: u64) -> Mlp {
    let mut rng = Rng::new(seed);
    let mut model = Mlp::new(p.train.n_cols(), hidden, 1e-3, &mut rng);
    fit_gd(
        &mut model,
        &p.train,
        &GdConfig {
            learning_rate: 0.3,
            max_epochs: 4000,
            grad_tol: 1e-5,
            momentum: 0.9,
        },
    );
    model
}

/// Samples a random subset of the given fraction of training rows.
pub fn random_subset(n_rows: usize, fraction: f64, rng: &mut Rng) -> Vec<u32> {
    let m = ((n_rows as f64) * fraction).round().max(1.0) as usize;
    rng.sample_indices(n_rows, m.min(n_rows))
        .into_iter()
        .map(|r| r as u32)
        .collect()
}

/// Samples a *cohesive* subset: rows agreeing with a randomly chosen row on
/// a few categorical features (this mimics pattern coverage sets, which is
/// where second-order influence shines — paper §4.1).
pub fn cohesive_subset(data: &Dataset, target_fraction: f64, rng: &mut Rng) -> Vec<u32> {
    let n = data.n_rows();
    let anchor = rng.range(0, n);
    // Try increasingly specific feature agreements until the subset is
    // close to the target size.
    let cat_features: Vec<usize> = (0..data.n_features())
        .filter(|&f| {
            matches!(
                data.schema().feature(f).kind,
                gopher_data::FeatureKind::Categorical { .. }
            )
        })
        .collect();
    let mut chosen: Vec<usize> = Vec::new();
    let mut rows: Vec<u32> = (0..n as u32).collect();
    let mut features = cat_features.clone();
    rng.shuffle(&mut features);
    for &f in &features {
        let anchor_val = data.value(anchor, f).as_level();
        let filtered: Vec<u32> = rows
            .iter()
            .copied()
            .filter(|&r| data.value(r as usize, f).as_level() == anchor_val)
            .collect();
        if (filtered.len() as f64) < target_fraction * n as f64 {
            break;
        }
        rows = filtered;
        chosen.push(f);
        if rows.len() as f64 <= 1.5 * target_fraction * n as f64 {
            break;
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_splits_and_encodes() {
        let p = prepare(DatasetKind::German, 500, 1);
        assert_eq!(p.train_raw.n_rows() + p.test_raw.n_rows(), 500);
        assert_eq!(p.train.n_rows(), p.train_raw.n_rows());
        assert_eq!(p.train.n_cols(), p.test.n_cols());
    }

    #[test]
    fn models_train_on_all_datasets() {
        for kind in [DatasetKind::German, DatasetKind::Adult, DatasetKind::Sqf] {
            let p = prepare(kind, 600, 2);
            let lr = train_lr(&p);
            let acc = gopher_models::train::accuracy(&lr, &p.test);
            assert!(acc > 0.6, "{} LR accuracy {acc}", kind.name());
        }
    }

    #[test]
    fn random_subset_size() {
        let mut rng = Rng::new(3);
        let s = random_subset(100, 0.25, &mut rng);
        assert_eq!(s.len(), 25);
    }

    #[test]
    fn cohesive_subset_is_homogeneous() {
        let d = DatasetKind::German.generate(500, 4);
        let mut rng = Rng::new(5);
        let rows = cohesive_subset(&d, 0.1, &mut rng);
        assert!(!rows.is_empty());
        assert!(rows.len() < 500);
    }
}
