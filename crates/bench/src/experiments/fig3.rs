//! Figure 3: accuracy of influence approximations against ground truth.
//!
//! For each classifier (LR / NN / SVM) and fairness metric, we sample
//! training subsets (random and cohesive, various sizes), compute the ground
//! truth bias change by retraining, bucket subsets by their *relative*
//! ground-truth influence (% of baseline bias), and report the mean absolute
//! error of each estimator's bias-change estimate — the paper's y-axis.

use crate::workloads::{
    cohesive_subset, prepare, random_subset, train_lr, train_mlp, train_svm, DatasetKind,
};
use gopher_core::report::TextTable;
use gopher_fairness::FairnessMetric;
use gopher_influence::{
    retrain_without, BiasEval, BiasInfluence, Estimator, InfluenceConfig, InfluenceEngine,
};
use gopher_models::Differentiable;
use gopher_prng::Rng;

/// Per-bucket error accumulator.
#[derive(Default, Clone)]
struct BucketErr {
    fo: f64,
    so: f64,
    gd: f64,
    n: usize,
}

/// Which model family to evaluate.
#[derive(Clone, Copy, PartialEq)]
pub(crate) enum ModelKind {
    Lr,
    Svm,
    Mlp,
}

impl ModelKind {
    fn name(&self) -> &'static str {
        match self {
            Self::Lr => "Logistic regression",
            Self::Svm => "SVM",
            Self::Mlp => "Neural network",
        }
    }
}

/// Runs the Figure 3 experiment. `n_subsets` controls how many subsets are
/// sampled per model (the paper does not state its count; 24 gives stable
/// bucket means at German scale).
pub fn fig3(n_rows: usize, n_subsets: usize, seed: u64, include_mlp: bool) -> String {
    let mut out = String::new();
    out.push_str("== Figure 3: influence estimation absolute error vs ground truth ==\n");
    out.push_str("(error = |estimated ΔF − ground-truth ΔF|, absolute bias units;\n");
    out.push_str(" buckets = ground-truth influence as % of baseline bias)\n\n");

    let mut models = vec![ModelKind::Lr, ModelKind::Svm];
    if include_mlp {
        models.insert(1, ModelKind::Mlp);
    }
    for model_kind in models {
        out.push_str(&fig3_for_model(model_kind, n_rows, n_subsets, seed));
        out.push('\n');
    }
    out
}

fn fig3_for_model(kind: ModelKind, n_rows: usize, n_subsets: usize, seed: u64) -> String {
    let p = prepare(DatasetKind::German, n_rows, seed);
    match kind {
        ModelKind::Lr => fig3_generic(kind, train_lr(&p), &p, n_subsets, seed),
        ModelKind::Svm => fig3_generic(kind, train_svm(&p), &p, n_subsets, seed),
        ModelKind::Mlp => fig3_generic(kind, train_mlp(&p, 10, seed), &p, n_subsets, seed),
    }
}

fn fig3_generic<M: Differentiable>(
    kind: ModelKind,
    model: M,
    p: &crate::workloads::Prepared,
    n_subsets: usize,
    seed: u64,
) -> String {
    let engine = InfluenceEngine::new(model, &p.train, InfluenceConfig::default());
    let mut rng = Rng::new(seed ^ 0xF163);
    let n = p.train.n_rows();

    // Sample subsets once; reuse across metrics.
    let mut subsets: Vec<Vec<u32>> = Vec::new();
    for i in 0..n_subsets {
        let fraction = [0.02, 0.05, 0.10, 0.15, 0.20, 0.30][i % 6];
        if i % 2 == 0 {
            subsets.push(random_subset(n, fraction, &mut rng));
        } else {
            subsets.push(cohesive_subset(&p.train_raw, fraction, &mut rng));
        }
    }

    let mut table = TextTable::new(&[
        "Metric",
        "GT influence bucket",
        "First-order IF",
        "Second-order IF",
        "One-step GD",
        "#subsets",
    ]);
    for metric in FairnessMetric::ALL {
        let bi = BiasInfluence::new(&engine, metric, &p.test);
        let base = bi.base_bias();
        if base.abs() < 1e-9 {
            continue;
        }
        // Paper buckets: wider for SP/EO, narrower for predictive parity.
        let edges: [f64; 4] = if metric == FairnessMetric::PredictiveParity {
            [-15.0, -5.0, 5.0, 15.0]
        } else {
            [-60.0, -20.0, 20.0, 60.0]
        };
        let mut buckets = vec![BucketErr::default(); 3];
        for rows in &subsets {
            let outcome = retrain_without(engine.model(), &p.train, rows);
            let gt_change = gopher_fairness::smooth_bias(metric, &outcome.model, &p.test)
                - bi.base_smooth_bias();
            let rel = 100.0 * (-gt_change) / base;
            let Some(bucket) = bucket_of(rel, &edges) else {
                continue;
            };
            let fo = bi.bias_change(&p.train, rows, Estimator::FirstOrder, BiasEval::ChainRule);
            let so = bi.bias_change(&p.train, rows, Estimator::SecondOrder, BiasEval::ChainRule);
            let gd = bi.bias_change(
                &p.train,
                rows,
                Estimator::OneStepGd { learning_rate: 1.0 },
                BiasEval::ChainRule,
            );
            let b = &mut buckets[bucket];
            b.fo += (fo - gt_change).abs();
            b.so += (so - gt_change).abs();
            b.gd += (gd - gt_change).abs();
            b.n += 1;
        }
        for (i, b) in buckets.iter().enumerate() {
            if b.n == 0 {
                continue;
            }
            let label = format!("[{:.0}%, {:.0}%]", edges[i], edges[i + 1]);
            let inv = 1.0 / b.n as f64;
            table.row_owned(vec![
                metric.name().to_string(),
                label,
                format!("{:.4}", b.fo * inv),
                format!("{:.4}", b.so * inv),
                format!("{:.4}", b.gd * inv),
                b.n.to_string(),
            ]);
        }
    }
    format!("-- {} --\n{}", kind.name(), table.render())
}

fn bucket_of(rel: f64, edges: &[f64; 4]) -> Option<usize> {
    if rel < edges[0] || rel > edges[3] {
        return None;
    }
    if rel < edges[1] {
        Some(0)
    } else if rel < edges[2] {
        Some(1)
    } else {
        Some(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_runs_and_reports_buckets() {
        let report = fig3(350, 6, 1, false);
        assert!(report.contains("Figure 3"));
        assert!(report.contains("Logistic regression"));
        assert!(report.contains("SVM"));
        assert!(report.contains("statistical parity"));
    }

    #[test]
    fn bucket_assignment() {
        let edges = [-60.0, -20.0, 20.0, 60.0];
        assert_eq!(bucket_of(-30.0, &edges), Some(0));
        assert_eq!(bucket_of(0.0, &edges), Some(1));
        assert_eq!(bucket_of(45.0, &edges), Some(2));
        assert_eq!(bucket_of(99.0, &edges), None);
        assert_eq!(bucket_of(-99.0, &edges), None);
    }
}
