//! One function per paper table/figure. Each returns the rendered report so
//! the `repro` binary can print it and integration tests can assert on it.

mod calibration;
mod fig3;
mod fotree;
mod lattice_scaling;
mod poisoning;
mod runtime;
mod tables;

pub use calibration::calibration;
pub use fig3::fig3;
pub use fotree::fotree;
pub use lattice_scaling::{ablations, table7};
pub use poisoning::poison;
pub use runtime::{fig4, fig5};
pub use tables::{table_explanations, table_updates, SessionAny};

use std::time::{Duration, Instant};

/// Times `f` over `reps` repetitions and returns the mean duration.
pub(crate) fn time_mean<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    assert!(reps > 0);
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed() / reps as u32
}
