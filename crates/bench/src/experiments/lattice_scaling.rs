//! Table 7 (lattice scalability) and the design-choice ablations.

use crate::workloads::{prepare, train_lr, DatasetKind};
use gopher_core::report::{fmt_duration, TextTable};
use gopher_core::{ExplainRequest, SessionBuilder};
use gopher_fairness::FairnessMetric;
use gopher_influence::{
    retrain_without, BiasEval, BiasInfluence, Estimator, InfluenceConfig, InfluenceEngine,
};
use gopher_patterns::{generate_predicates, lattice, topk, LatticeConfig};
use gopher_prng::Rng;

/// Table 7: per-level execution time, diversity-filtering time and candidate
/// counts as the maximum number of predicates (lattice level) grows.
pub fn table7(n_rows: usize, max_level: usize, seed: u64) -> String {
    let p = prepare(DatasetKind::German, n_rows, seed);
    let model = train_lr(&p);
    let engine = InfluenceEngine::new(model, &p.train, InfluenceConfig::default());
    let bi = BiasInfluence::new(&engine, FairnessMetric::StatisticalParity, &p.test);
    let table_pred = generate_predicates(&p.train_raw, 4);

    let config = LatticeConfig {
        support_threshold: 0.05,
        max_predicates: max_level,
        prune_by_responsibility: false, // count the raw space, as the paper's Table 7 does
        max_level_candidates: None,
    };
    let (candidates, stats) = lattice::compute_candidates(
        &table_pred,
        |cov| {
            let rows = cov.to_indices();
            bi.responsibility(&p.train, &rows, Estimator::FirstOrder, BiasEval::ChainRule)
        },
        &config,
    );

    let mut out = String::new();
    out.push_str(&format!(
        "== Table 7: lattice scalability (German, τ = 5%, top-5 filtering, n = {n_rows}) ==\n\n"
    ));
    let mut table = TextTable::new(&[
        "Level",
        "Execution",
        "Filtering",
        "#candidates (level)",
        "#cumulative",
    ]);
    let mut cumulative = 0usize;
    let mut upto: Vec<gopher_patterns::Candidate> = Vec::new();
    let mut by_level: std::collections::BTreeMap<usize, Vec<&gopher_patterns::Candidate>> =
        std::collections::BTreeMap::new();
    for c in &candidates {
        by_level.entry(c.pattern.len()).or_default().push(c);
    }
    for level in &stats.levels {
        cumulative += level.kept;
        if let Some(cands) = by_level.get(&level.level) {
            upto.extend(cands.iter().map(|c| (*c).clone()));
        }
        // Filtering time: diversity-aware top-5 over all candidates up to
        // this level (the paper's "filtering" column).
        let t0 = std::time::Instant::now();
        let _top = topk::top_k(&upto, 5, 0.75);
        let filtering = t0.elapsed();
        table.row_owned(vec![
            level.level.to_string(),
            fmt_duration(level.duration),
            fmt_duration(filtering),
            level.kept.to_string(),
            cumulative.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\ntotal responsibility evaluations: {}\n",
        stats.total_scored
    ));
    out
}

/// Design-choice ablations called out in DESIGN.md:
///
/// 1. **Hessian damping** — accuracy of the second-order estimate as the
///    damping grows (too much damping washes the curvature out).
/// 2. **Bias evaluation** — chain rule vs re-evaluating the smooth/hard
///    metric at the shifted parameters.
/// 3. **Responsibility pruning** — candidate counts, search time, and
///    whether the kept top-3 quality survives the pruning.
pub fn ablations(n_rows: usize, seed: u64) -> String {
    let mut out = String::new();
    out.push_str("== Ablations ==\n\n");
    let p = prepare(DatasetKind::German, n_rows, seed);
    let model = train_lr(&p);

    // Shared ground truth for a fixed evaluation set of subsets.
    let mut rng = Rng::new(seed ^ 0xAB1A);
    let subsets: Vec<Vec<u32>> = (0..8)
        .map(|i| {
            let fraction = [0.05, 0.10, 0.20, 0.30][i % 4];
            crate::workloads::random_subset(p.train.n_rows(), fraction, &mut rng)
        })
        .collect();
    let metric = FairnessMetric::StatisticalParity;
    let base_engine = InfluenceEngine::new(model.clone(), &p.train, InfluenceConfig::default());
    let bi0 = BiasInfluence::new(&base_engine, metric, &p.test);
    let gt: Vec<f64> = subsets
        .iter()
        .map(|rows| {
            let outcome = retrain_without(&model, &p.train, rows);
            gopher_fairness::smooth_bias(metric, &outcome.model, &p.test) - bi0.base_smooth_bias()
        })
        .collect();

    // (1) damping sweep.
    out.push_str("-- (1) Hessian damping vs second-order accuracy --\n");
    let mut t1 = TextTable::new(&["Damping", "Mean |ΔF_est − ΔF_gt|"]);
    for damping in [1e-8, 1e-6, 1e-4, 1e-2, 1e-1] {
        let engine = InfluenceEngine::new(
            model.clone(),
            &p.train,
            InfluenceConfig {
                damping,
                ..Default::default()
            },
        );
        let bi = BiasInfluence::new(&engine, metric, &p.test);
        let err: f64 = subsets
            .iter()
            .zip(&gt)
            .map(|(rows, &g)| {
                (bi.bias_change(&p.train, rows, Estimator::SecondOrder, BiasEval::ChainRule) - g)
                    .abs()
            })
            .sum::<f64>()
            / subsets.len() as f64;
        t1.row_owned(vec![format!("{damping:.0e}"), format!("{err:.5}")]);
    }
    out.push_str(&t1.render());

    // (2) bias evaluation mode.
    out.push_str("\n-- (2) Bias-change evaluation mode (second-order estimator) --\n");
    let mut t2 = TextTable::new(&["Evaluation", "Mean |ΔF_est − ΔF_gt|"]);
    for (name, eval) in [
        ("chain rule (Eq. 11)", BiasEval::ChainRule),
        ("re-eval smooth", BiasEval::ReEvalSmooth),
        ("re-eval hard", BiasEval::ReEvalHard),
    ] {
        let err: f64 = subsets
            .iter()
            .zip(&gt)
            .map(|(rows, &g)| {
                (bi0.bias_change(&p.train, rows, Estimator::SecondOrder, eval) - g).abs()
            })
            .sum::<f64>()
            / subsets.len() as f64;
        t2.row_owned(vec![name.to_string(), format!("{err:.5}")]);
    }
    out.push_str(&t2.render());

    // (3) responsibility pruning.
    out.push_str("\n-- (3) Lattice responsibility pruning --\n");
    let mut t3 = TextTable::new(&[
        "Pruning",
        "Candidates",
        "Search time",
        "Top-3 mean GT responsibility",
    ]);
    // One session serves both ablation arms: only the lattice config (a
    // per-request knob) differs between them.
    let session = SessionBuilder::new().build(model.clone(), &p.train_raw, &p.test_raw);
    for prune in [true, false] {
        let request = ExplainRequest {
            lattice: LatticeConfig {
                prune_by_responsibility: prune,
                max_predicates: 3,
                ..Default::default()
            },
            ground_truth_for_topk: true,
            ..Default::default()
        };
        let report = session.explain(&request).report;
        let mean_gt = report
            .explanations
            .iter()
            .filter_map(|e| e.ground_truth_responsibility)
            .sum::<f64>()
            / report.explanations.len().max(1) as f64;
        t3.row_owned(vec![
            if prune { "on (paper)" } else { "off" }.to_string(),
            report.stats.total_kept().to_string(),
            fmt_duration(report.search_time),
            format!("{mean_gt:.3}"),
        ]);
    }
    out.push_str(&t3.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_reports_levels() {
        let report = table7(300, 3, 5);
        assert!(report.contains("Level"));
        assert!(report.contains("Filtering"));
        // Levels 1..=3 present.
        assert!(
            report
                .lines()
                .filter(|l| l.trim_start().starts_with(char::is_numeric))
                .count()
                >= 2
        );
    }

    #[test]
    fn ablations_cover_three_axes() {
        let report = ablations(300, 6);
        assert!(report.contains("damping"));
        assert!(report.contains("chain rule"));
        assert!(report.contains("pruning") || report.contains("Pruning"));
    }
}
