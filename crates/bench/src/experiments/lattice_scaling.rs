//! Table 7 (lattice scalability) and the design-choice ablations.

use crate::workloads::{prepare, train_lr, DatasetKind};
use gopher_core::report::{fmt_duration, TextTable};
use gopher_core::{ExplainRequest, SessionBuilder};
use gopher_fairness::FairnessMetric;
use gopher_influence::{
    retrain_without, BiasEval, BiasInfluence, Estimator, InfluenceConfig, InfluenceEngine,
};
use gopher_patterns::LatticeConfig;
use gopher_prng::Rng;

/// Table 7: per-level execution time, diversity-filtering time and candidate
/// counts as the maximum number of predicates (lattice level) grows — plus a
/// support-threshold sweep over the same session.
///
/// Runs through [`gopher_core::ExplainSession`] (not the raw lattice API)
/// on purpose: the
/// per-level numbers come from one staged sweep, and the τ-sweep section
/// exercises the session's **τ-monotone structure cache** — after the
/// loosest τ builds its artifact, every tighter τ is served by re-filtering
/// (`structure_range_hits` counts the serves), which is what makes sweeping
/// min-support near-free for an analyst.
pub fn table7(n_rows: usize, max_level: usize, seed: u64) -> String {
    let p = prepare(DatasetKind::German, n_rows, seed);
    let model = train_lr(&p);
    let session = SessionBuilder::new().build(model, &p.train_raw, &p.test_raw);
    let request_at = |tau: f64| ExplainRequest {
        lattice: LatticeConfig {
            support_threshold: tau,
            max_predicates: max_level,
            prune_by_responsibility: false, // count the raw space, as the paper's Table 7 does
            max_level_candidates: None,
        },
        k: 5,
        estimator: Estimator::FirstOrder,
        ground_truth_for_topk: false,
        ..Default::default()
    };

    let response = session.explain(&request_at(0.05));
    let stats = &response.report.stats;

    let mut out = String::new();
    out.push_str(&format!(
        "== Table 7: lattice scalability (German, τ = 5%, top-5 filtering, n = {n_rows}) ==\n\n"
    ));
    let mut table = TextTable::new(&["Level", "Execution", "#candidates (level)", "#cumulative"]);
    let mut cumulative = 0usize;
    for level in &stats.levels {
        cumulative += level.kept;
        table.row_owned(vec![
            level.level.to_string(),
            fmt_duration(level.duration),
            level.kept.to_string(),
            cumulative.to_string(),
        ]);
    }
    out.push_str(&table.render());
    let sweep_time: std::time::Duration = stats.levels.iter().map(|l| l.duration).sum();
    out.push_str(&format!(
        "\nFiltering (top-5 diversity selection over all {} candidates): {}\n",
        stats.total_kept(),
        fmt_duration(response.report.search_time.saturating_sub(sweep_time)),
    ));
    out.push_str(&format!(
        "total responsibility evaluations: {}\n",
        stats.total_scored
    ));

    // The analyst's min-support sweep, loosest τ first: 0.02 builds a fresh
    // artifact, 0.05 repeats the request above verbatim (answered from the
    // scored sweep tier — it never reaches the structure cache), and the
    // tighter thresholds are range-served by re-filtering — zero coverage
    // intersections after the first pass.
    out.push_str(&format!(
        "\n== Support-threshold sweep (same session, depth {max_level}) ==\n\n"
    ));
    let mut sweep = TextTable::new(&["τ", "Query", "#candidates", "Structure artifact"]);
    for tau in [0.02, 0.05, 0.1, 0.2] {
        let before = session.stats();
        let r = session.explain(&request_at(tau));
        let after = session.stats();
        let path = if after.structure_range_hits > before.structure_range_hits {
            "range-served (re-filtered)"
        } else if after.structure_hits > before.structure_hits {
            "cached (exact)"
        } else if after.structure_misses > before.structure_misses {
            "built"
        } else {
            "scored-cache hit"
        };
        sweep.row_owned(vec![
            format!("{tau:.2}"),
            fmt_duration(r.query_time),
            r.report.stats.total_kept().to_string(),
            path.to_string(),
        ]);
    }
    out.push_str(&sweep.render());
    let final_stats = session.stats();
    out.push_str(&format!(
        "\nstructure cache: {} built, {} exact hits, {} range-served of {} entries\n",
        final_stats.structure_misses,
        final_stats.structure_hits,
        final_stats.structure_range_hits,
        final_stats.structure_entries,
    ));
    out
}

/// Design-choice ablations called out in DESIGN.md:
///
/// 1. **Hessian damping** — accuracy of the second-order estimate as the
///    damping grows (too much damping washes the curvature out).
/// 2. **Bias evaluation** — chain rule vs re-evaluating the smooth/hard
///    metric at the shifted parameters.
/// 3. **Responsibility pruning** — candidate counts, search time, and
///    whether the kept top-3 quality survives the pruning.
pub fn ablations(n_rows: usize, seed: u64) -> String {
    let mut out = String::new();
    out.push_str("== Ablations ==\n\n");
    let p = prepare(DatasetKind::German, n_rows, seed);
    let model = train_lr(&p);

    // Shared ground truth for a fixed evaluation set of subsets.
    let mut rng = Rng::new(seed ^ 0xAB1A);
    let subsets: Vec<Vec<u32>> = (0..8)
        .map(|i| {
            let fraction = [0.05, 0.10, 0.20, 0.30][i % 4];
            crate::workloads::random_subset(p.train.n_rows(), fraction, &mut rng)
        })
        .collect();
    let metric = FairnessMetric::StatisticalParity;
    let base_engine = InfluenceEngine::new(model.clone(), &p.train, InfluenceConfig::default());
    let bi0 = BiasInfluence::new(&base_engine, metric, &p.test);
    let gt: Vec<f64> = subsets
        .iter()
        .map(|rows| {
            let outcome = retrain_without(&model, &p.train, rows);
            gopher_fairness::smooth_bias(metric, &outcome.model, &p.test) - bi0.base_smooth_bias()
        })
        .collect();

    // (1) damping sweep.
    out.push_str("-- (1) Hessian damping vs second-order accuracy --\n");
    let mut t1 = TextTable::new(&["Damping", "Mean |ΔF_est − ΔF_gt|"]);
    for damping in [1e-8, 1e-6, 1e-4, 1e-2, 1e-1] {
        let engine = InfluenceEngine::new(
            model.clone(),
            &p.train,
            InfluenceConfig {
                damping,
                ..Default::default()
            },
        );
        let bi = BiasInfluence::new(&engine, metric, &p.test);
        let err: f64 = subsets
            .iter()
            .zip(&gt)
            .map(|(rows, &g)| {
                (bi.bias_change(&p.train, rows, Estimator::SecondOrder, BiasEval::ChainRule) - g)
                    .abs()
            })
            .sum::<f64>()
            / subsets.len() as f64;
        t1.row_owned(vec![format!("{damping:.0e}"), format!("{err:.5}")]);
    }
    out.push_str(&t1.render());

    // (2) bias evaluation mode.
    out.push_str("\n-- (2) Bias-change evaluation mode (second-order estimator) --\n");
    let mut t2 = TextTable::new(&["Evaluation", "Mean |ΔF_est − ΔF_gt|"]);
    for (name, eval) in [
        ("chain rule (Eq. 11)", BiasEval::ChainRule),
        ("re-eval smooth", BiasEval::ReEvalSmooth),
        ("re-eval hard", BiasEval::ReEvalHard),
    ] {
        let err: f64 = subsets
            .iter()
            .zip(&gt)
            .map(|(rows, &g)| {
                (bi0.bias_change(&p.train, rows, Estimator::SecondOrder, eval) - g).abs()
            })
            .sum::<f64>()
            / subsets.len() as f64;
        t2.row_owned(vec![name.to_string(), format!("{err:.5}")]);
    }
    out.push_str(&t2.render());

    // (3) responsibility pruning.
    out.push_str("\n-- (3) Lattice responsibility pruning --\n");
    let mut t3 = TextTable::new(&[
        "Pruning",
        "Candidates",
        "Search time",
        "Top-3 mean GT responsibility",
    ]);
    // One session serves both ablation arms: only the lattice config (a
    // per-request knob) differs between them.
    let session = SessionBuilder::new().build(model.clone(), &p.train_raw, &p.test_raw);
    for prune in [true, false] {
        let request = ExplainRequest {
            lattice: LatticeConfig {
                prune_by_responsibility: prune,
                max_predicates: 3,
                ..Default::default()
            },
            ground_truth_for_topk: true,
            ..Default::default()
        };
        let report = session.explain(&request).report;
        let mean_gt = report
            .explanations
            .iter()
            .filter_map(|e| e.ground_truth_responsibility)
            .sum::<f64>()
            / report.explanations.len().max(1) as f64;
        t3.row_owned(vec![
            if prune { "on (paper)" } else { "off" }.to_string(),
            report.stats.total_kept().to_string(),
            fmt_duration(report.search_time),
            format!("{mean_gt:.3}"),
        ]);
    }
    out.push_str(&t3.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_reports_levels() {
        let report = table7(300, 3, 5);
        assert!(report.contains("Level"));
        assert!(report.contains("Filtering"));
        // Levels 1..=3 present.
        assert!(
            report
                .lines()
                .filter(|l| l.trim_start().starts_with(char::is_numeric))
                .count()
                >= 2
        );
        // The τ sweep must exercise the range-capable structure cache: the
        // thresholds above the primed artifacts are served by re-filtering.
        assert!(report.contains("Support-threshold sweep"));
        assert!(report.contains("range-served"));
    }

    #[test]
    fn ablations_cover_three_axes() {
        let report = ablations(300, 6);
        assert!(report.contains("damping"));
        assert!(report.contains("chain rule"));
        assert!(report.contains("pruning") || report.contains("Pruning"));
    }
}
