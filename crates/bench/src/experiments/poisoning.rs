//! §6.7: detecting injected data errors (anchoring-attack poisons).

use crate::workloads::DatasetKind;
use gopher_core::poison_detect::{detect_poison, PoisonDetectionConfig};
use gopher_core::report::{pct, TextTable};
use gopher_data::poison::AnchoringAttack;
use gopher_data::Encoder;
use gopher_fairness::FairnessMetric;
use gopher_influence::{InfluenceConfig, InfluenceEngine};
use gopher_models::train::fit_default;
use gopher_models::LogisticRegression;
use gopher_prng::Rng;

/// Sweeps the poison fraction and reports detection quality for the
/// influence-ranked-cluster detector vs the LOF baseline.
pub fn poison(n_rows: usize, seed: u64) -> String {
    let mut out = String::new();
    out.push_str("== §6.7: poisoning detection (anchoring attack on German) ==\n");
    out.push_str("(detector flags the top-2 clusters by second-order influence;\n");
    out.push_str(" LOF baseline flags the n_poison highest-LOF points)\n\n");
    let mut table = TextTable::new(&[
        "Poison fraction",
        "Δbias from attack",
        "Top-2 cluster recall",
        "Top-2 cluster precision",
        "LOF recall",
    ]);
    let clean = DatasetKind::German.generate(n_rows, seed);
    for fraction in [0.04, 0.08, 0.12] {
        let mut rng = Rng::new(seed ^ (fraction * 1000.0) as u64);
        let attack = AnchoringAttack {
            poison_fraction: fraction,
            ..Default::default()
        };
        let poisoned = attack.run(&clean, &mut rng);

        let encoder = Encoder::fit(&poisoned.data);
        let train = encoder.transform(&poisoned.data);
        let audit = encoder.transform(&clean);
        let mut model = LogisticRegression::new(train.n_cols(), 1e-3);
        fit_default(&mut model, &train);

        // Bias increase caused by the attack (model trained on clean data
        // vs model trained on poisoned data, both audited on clean data).
        let mut clean_model = LogisticRegression::new(train.n_cols(), 1e-3);
        let clean_train = encoder.transform(&clean);
        fit_default(&mut clean_model, &clean_train);
        let bias_clean =
            gopher_fairness::bias(FairnessMetric::StatisticalParity, &clean_model, &audit);
        let bias_poisoned =
            gopher_fairness::bias(FairnessMetric::StatisticalParity, &model, &audit);

        let engine = InfluenceEngine::new(model, &train, InfluenceConfig::default());
        let outcome = detect_poison(
            &engine,
            &train,
            &audit,
            FairnessMetric::StatisticalParity,
            &poisoned.is_poison,
            &PoisonDetectionConfig::default(),
            &mut rng,
        );
        table.row_owned(vec![
            pct(fraction),
            format!("{:+.4}", bias_poisoned - bias_clean),
            pct(outcome.cluster_recall),
            pct(outcome.cluster_precision),
            pct(outcome.lof_recall),
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poison_report_has_all_fractions() {
        let report = poison(500, 7);
        assert!(report.contains("4.0%"));
        assert!(report.contains("8.0%"));
        assert!(report.contains("12.0%"));
        assert!(report.contains("LOF recall"));
    }
}
