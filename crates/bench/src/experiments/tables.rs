//! Tables 1–6: top-k explanations and update-based explanations for the
//! three benchmark datasets.

use crate::workloads::{prepare, DatasetKind, Prepared, Scale};
use gopher_core::report::{fmt_duration, pct, TextTable};
use gopher_core::{ExplainRequest, ExplainSession, SessionBuilder, UpdateConfig};
use gopher_models::{LinearSvm, LogisticRegression, Mlp};
use gopher_prng::Rng;

/// Which classifier a table uses (the paper: LR for German/SQF, NN for
/// Adult).
fn model_for(kind: DatasetKind) -> &'static str {
    match kind {
        DatasetKind::German | DatasetKind::Sqf => "logistic regression",
        DatasetKind::Adult => "neural network (1×10)",
    }
}

fn session_for(kind: DatasetKind, p: &Prepared, seed: u64) -> SessionAny {
    match kind {
        DatasetKind::German | DatasetKind::Sqf => SessionAny::Lr(SessionBuilder::new().fit(
            |cols| LogisticRegression::new(cols, 1e-3),
            &p.train_raw,
            &p.test_raw,
        )),
        DatasetKind::Adult => {
            let mut rng = Rng::new(seed ^ 0xAD);
            SessionAny::Mlp(SessionBuilder::new().fit(
                |cols| Mlp::new(cols, 10, 1e-3, &mut rng),
                &p.train_raw,
                &p.test_raw,
            ))
        }
    }
}

/// Type-erased explain session over the model families used by the tables.
/// (Enum dispatch keeps the public API monomorphic while letting the
/// harness pick the model per dataset, as the paper does.)
pub enum SessionAny {
    /// Logistic-regression-backed session.
    Lr(ExplainSession<LogisticRegression>),
    /// SVM-backed session.
    Svm(ExplainSession<LinearSvm>),
    /// MLP-backed session.
    Mlp(ExplainSession<Mlp>),
}

impl SessionAny {
    /// Runs the removal-explanation pipeline for one request.
    pub fn explain(&self, request: &ExplainRequest) -> gopher_core::ExplanationReport {
        match self {
            Self::Lr(s) => s.explain(request).report,
            Self::Svm(s) => s.explain(request).report,
            Self::Mlp(s) => s.explain(request).report,
        }
    }

    /// Runs the pipeline plus update-based explanations.
    pub fn explain_with_updates(
        &self,
        request: &ExplainRequest,
        cfg: &UpdateConfig,
    ) -> (
        gopher_core::ExplanationReport,
        Vec<gopher_core::UpdateExplanation>,
    ) {
        match self {
            Self::Lr(s) => s.explain_with_updates(request, cfg),
            Self::Svm(s) => s.explain_with_updates(request, cfg),
            Self::Mlp(s) => s.explain_with_updates(request, cfg),
        }
    }

    /// The raw training schema (for rendering).
    pub fn schema(&self) -> &gopher_data::Schema {
        match self {
            Self::Lr(s) => s.train_raw().schema(),
            Self::Svm(s) => s.train_raw().schema(),
            Self::Mlp(s) => s.train_raw().schema(),
        }
    }
}

/// Tables 1–3: top-3 explanations for one dataset.
pub fn table_explanations(kind: DatasetKind, scale: Scale, seed: u64) -> String {
    let n = scale.rows(kind);
    let p = prepare(kind, n, seed);
    let t0 = std::time::Instant::now();
    let session = session_for(kind, &p, seed);
    let report = session.explain(&ExplainRequest::default().with_ground_truth(true));
    let total = t0.elapsed();

    let mut table = TextTable::new(&["Pattern", "Support", "Δbias (ground truth)"]);
    for e in &report.explanations {
        table.row_owned(vec![
            e.pattern_text.clone(),
            pct(e.support),
            e.ground_truth_responsibility
                .map(pct)
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    format!(
        "== Top-{} explanations for {} (τ = 5%, {}, runtime = {}) ==\nbaseline {} bias = {:.4}, test accuracy = {:.3}\n\n{}",
        report.explanations.len(),
        kind.name(),
        model_for(kind),
        fmt_duration(total),
        report.metric,
        report.base_bias,
        report.accuracy,
        table.render()
    )
}

/// Tables 4–6: update-based explanations for one dataset.
pub fn table_updates(kind: DatasetKind, scale: Scale, seed: u64) -> String {
    let n = scale.rows(kind);
    let p = prepare(kind, n, seed);
    let session = session_for(kind, &p, seed);
    let request = ExplainRequest::default().with_ground_truth(true);
    let t0 = std::time::Instant::now();
    let (report, updates) = session.explain_with_updates(&request, &UpdateConfig::default());
    let total = t0.elapsed();

    let mut table = TextTable::new(&[
        "Pattern",
        "Support",
        "Removal Δbias",
        "Update",
        "Update Δbias",
        "vs removal",
    ]);
    let schema = session.schema();
    for (e, u) in report.explanations.iter().zip(&updates) {
        let removal = e.ground_truth_responsibility.unwrap_or(f64::NAN);
        let update = u.ground_truth_responsibility.unwrap_or(f64::NAN);
        let arrow = if update >= removal { "↑" } else { "↓" };
        let changes = if u.changes.is_empty() {
            "(numeric/sub-threshold changes only)".to_string()
        } else {
            u.changes
                .iter()
                .map(|c| c.render(schema))
                .collect::<Vec<_>>()
                .join("; ")
        };
        table.row_owned(vec![
            e.pattern_text.clone(),
            pct(e.support),
            pct(removal),
            changes,
            pct(update),
            arrow.to_string(),
        ]);
    }
    let per_point: f64 = {
        let updated_points: usize = updates.iter().map(|u| u.n_rows).sum();
        if updated_points == 0 {
            0.0
        } else {
            total.as_secs_f64() / updated_points as f64
        }
    };
    format!(
        "== Update-based explanations for {} (τ = 5%, {}) ==\n(avg time per updated point = {:.3}s)\n\n{}",
        kind.name(),
        model_for(kind),
        per_point,
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn german_table_reports_patterns_with_ground_truth() {
        let report = table_explanations(DatasetKind::German, Scale::Small, 3);
        assert!(report.contains("German"));
        assert!(report.contains("%"), "{report}");
        assert!(report.contains("Pattern"));
    }

    #[test]
    fn svm_backed_explainer_works() {
        let p = prepare(DatasetKind::German, 400, 5);
        let s = SessionAny::Svm(SessionBuilder::new().fit(
            |cols| LinearSvm::new(cols, 1e-3),
            &p.train_raw,
            &p.test_raw,
        ));
        let report = s.explain(&ExplainRequest::default().with_k(2).with_ground_truth(false));
        assert!(report.base_bias > 0.0);
        assert!(!s.schema().features().is_empty());
    }

    #[test]
    fn update_table_renders_direction_arrows() {
        // Tiny run just to exercise the path end to end.
        let p = prepare(DatasetKind::German, 400, 4);
        let session = session_for(DatasetKind::German, &p, 4);
        let (report, updates) = session.explain_with_updates(
            &ExplainRequest::default().with_k(1).with_ground_truth(true),
            &UpdateConfig {
                max_iters: 20,
                ..Default::default()
            },
        );
        assert_eq!(report.explanations.len(), updates.len());
    }
}
