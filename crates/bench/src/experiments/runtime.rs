//! Figures 4 and 5: runtime of subset-influence computation.
//!
//! * **Figure 4** — time to estimate the influence of one subset as the
//!   removed fraction grows (0–50%), for each estimator and for retraining,
//!   per model. The expected shape: influence functions are orders of
//!   magnitude below retraining; one-step GD sits between.
//! * **Figure 5** — the same query at a fixed 5% subset as the dataset is
//!   replicated ×50…×1600 (50k–1.6M rows).

use super::time_mean;
use crate::workloads::{prepare, random_subset, train_lr, train_mlp, train_svm, DatasetKind};
use gopher_core::report::{fmt_duration, TextTable};
use gopher_data::Encoder;
use gopher_influence::{retrain_without, Estimator, InfluenceConfig, InfluenceEngine};
use gopher_models::Differentiable;
use gopher_prng::Rng;

/// Runs the Figure 4 experiment.
pub fn fig4(n_rows: usize, seed: u64, include_mlp: bool) -> String {
    let mut out = String::new();
    out.push_str("== Figure 4: influence runtime vs fraction of training data removed ==\n\n");
    let p = prepare(DatasetKind::German, n_rows, seed);

    out.push_str(&fig4_model("Logistic regression", train_lr(&p), &p, seed));
    out.push_str(&fig4_model("SVM", train_svm(&p), &p, seed));
    if include_mlp {
        out.push_str(&fig4_model(
            "Neural network",
            train_mlp(&p, 10, seed),
            &p,
            seed,
        ));
    }
    out
}

fn fig4_model<M: Differentiable>(
    name: &str,
    model: M,
    p: &crate::workloads::Prepared,
    seed: u64,
) -> String {
    let engine = InfluenceEngine::new(model, &p.train, InfluenceConfig::default());
    let mut rng = Rng::new(seed ^ 0xF164);
    let mut table = TextTable::new(&[
        "Fraction removed",
        "First-order IF",
        "Second-order IF",
        "One-step GD",
        "Retrain",
    ]);
    for fraction in [0.05, 0.10, 0.20, 0.30, 0.40, 0.50] {
        let rows = random_subset(p.train.n_rows(), fraction, &mut rng);
        let reps = 5;
        let fo = time_mean(reps, || {
            std::hint::black_box(engine.param_change(&p.train, &rows, Estimator::FirstOrder));
        });
        let so = time_mean(reps, || {
            std::hint::black_box(engine.param_change(&p.train, &rows, Estimator::SecondOrder));
        });
        let gd = time_mean(reps, || {
            std::hint::black_box(engine.param_change(
                &p.train,
                &rows,
                Estimator::OneStepGd { learning_rate: 1.0 },
            ));
        });
        let retrain = time_mean(2, || {
            std::hint::black_box(retrain_without(engine.model(), &p.train, &rows));
        });
        table.row_owned(vec![
            format!("{:.0}%", 100.0 * fraction),
            fmt_duration(fo),
            fmt_duration(so),
            fmt_duration(gd),
            fmt_duration(retrain),
        ]);
    }
    format!("-- {name} --\n{}\n", table.render())
}

/// Runs the Figure 5 experiment (dataset-size scaling with German ×factor).
/// `factors` are replication multiples of the 1,000-row base (the paper
/// uses 50–1,600).
pub fn fig5(factors: &[usize], seed: u64) -> String {
    let mut out = String::new();
    out.push_str("== Figure 5: influence runtime vs dataset size (German ×factor) ==\n");
    out.push_str("(logistic regression; subset fixed at 5% of the data; the\n");
    out.push_str(" precompute column is the one-time gradient+Hessian pass)\n\n");
    let base = DatasetKind::German.generate(1_000, seed);
    let mut table = TextTable::new(&[
        "Rows",
        "Precompute",
        "First-order IF",
        "Second-order IF",
        "One-step GD",
        "Retrain",
    ]);
    for &factor in factors {
        let data = base.replicate(factor);
        let encoder = Encoder::fit(&data);
        let train = encoder.transform(&data);
        let mut model = gopher_models::LogisticRegression::new(train.n_cols(), 1e-3);
        gopher_models::train::fit_default(&mut model, &train);

        let t0 = std::time::Instant::now();
        let engine = InfluenceEngine::new(model, &train, InfluenceConfig::default());
        let precompute = t0.elapsed();

        let mut rng = Rng::new(seed ^ factor as u64);
        let rows = random_subset(train.n_rows(), 0.05, &mut rng);
        let fo = time_mean(3, || {
            std::hint::black_box(engine.param_change(&train, &rows, Estimator::FirstOrder));
        });
        let so = time_mean(3, || {
            std::hint::black_box(engine.param_change(&train, &rows, Estimator::SecondOrder));
        });
        let gd = time_mean(3, || {
            std::hint::black_box(engine.param_change(
                &train,
                &rows,
                Estimator::OneStepGd { learning_rate: 1.0 },
            ));
        });
        let retrain = time_mean(1, || {
            std::hint::black_box(retrain_without(engine.model(), &train, &rows));
        });
        table.row_owned(vec![
            format!("{}k", train.n_rows() / 1_000),
            fmt_duration(precompute),
            fmt_duration(fo),
            fmt_duration(so),
            fmt_duration(gd),
            fmt_duration(retrain),
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_renders_all_fractions() {
        let report = fig4(250, 1, false);
        assert!(report.contains("50%"));
        assert!(report.contains("Retrain"));
        assert!(report.contains("Logistic regression"));
    }

    #[test]
    fn fig5_scales_dataset() {
        let report = fig5(&[2], 1);
        assert!(report.contains("2k"));
        assert!(report.contains("Precompute"));
    }
}
