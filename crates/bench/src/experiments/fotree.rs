//! §6.4 baseline comparison: Gopher vs FO-tree.
//!
//! The FO-tree fits a regression tree on per-point first-order influences
//! and reads explanations off its most influential nodes. The paper's
//! finding (which this experiment reproduces in shape): FO-tree patterns
//! tend to have *higher support and lower bias reduction* — i.e. lower
//! interestingness — than Gopher's.

use crate::workloads::{prepare, train_lr, DatasetKind, Scale};
use gopher_core::fo_tree::{FoTree, FoTreeConfig};
use gopher_core::report::{pct, TextTable};
use gopher_core::{ExplainRequest, SessionBuilder};
use gopher_fairness::FairnessMetric;
use gopher_influence::{BiasEval, BiasInfluence, Estimator};

/// Runs the comparison on one dataset.
pub fn fotree(kind: DatasetKind, scale: Scale, seed: u64) -> String {
    let n = scale.rows(kind);
    let p = prepare(kind, n, seed);
    let model = train_lr(&p);

    // Gopher's side: one session answers the explanation query *and* backs
    // the FO-tree's per-point influence scores with the same engine handle.
    let session = SessionBuilder::new().build(model, &p.train_raw, &p.test_raw);
    let report = session
        .explain(&ExplainRequest::default().with_ground_truth(true))
        .report;

    // FO-tree side: per-point first-order responsibilities.
    let bi = BiasInfluence::new(session.engine(), FairnessMetric::StatisticalParity, &p.test);
    let influence: Vec<f64> = (0..p.train.n_rows())
        .map(|r| {
            bi.responsibility(
                &p.train,
                &[r as u32],
                Estimator::FirstOrder,
                BiasEval::ChainRule,
            )
        })
        .collect();
    let tree = FoTree::fit(&p.train_raw, &influence, &FoTreeConfig::default());
    let nodes = tree.top_nodes(&p.train_raw, report.explanations.len().max(3));

    let mut out = String::new();
    out.push_str(&format!(
        "== FO-tree baseline comparison on {} (both sides ground-truth verified) ==\n\n",
        kind.name()
    ));
    let mut table = TextTable::new(&["Method", "Pattern", "Support", "Δbias (ground truth)"]);
    for e in &report.explanations {
        table.row_owned(vec![
            "Gopher".into(),
            e.pattern_text.clone(),
            pct(e.support),
            e.ground_truth_responsibility
                .map(pct)
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    for node in &nodes {
        let (gt, _) =
            session.ground_truth_responsibility(FairnessMetric::StatisticalParity, &node.rows);
        table.row_owned(vec![
            "FO-tree".into(),
            node.pattern_text.clone(),
            pct(node.support),
            pct(gt),
        ]);
    }
    out.push_str(&table.render());

    // Summary line: mean interestingness (GT responsibility / support).
    let mean_u = |items: Vec<(f64, f64)>| -> f64 {
        if items.is_empty() {
            return 0.0;
        }
        items.iter().map(|(r, s)| r / s).sum::<f64>() / items.len() as f64
    };
    let gopher_u = mean_u(
        report
            .explanations
            .iter()
            .filter_map(|e| e.ground_truth_responsibility.map(|r| (r, e.support)))
            .collect(),
    );
    let tree_u = mean_u(
        nodes
            .iter()
            .map(|n| {
                (
                    session
                        .ground_truth_responsibility(FairnessMetric::StatisticalParity, &n.rows)
                        .0,
                    n.support,
                )
            })
            .collect(),
    );
    out.push_str(&format!(
        "\nmean ground-truth interestingness — Gopher: {gopher_u:.2}, FO-tree: {tree_u:.2}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_renders_both_methods() {
        let report = fotree(DatasetKind::German, Scale::Small, 9);
        assert!(report.contains("Gopher"));
        assert!(report.contains("FO-tree"));
        assert!(report.contains("mean ground-truth interestingness"));
    }
}
