//! Estimator-fidelity calibration: second-order influence vs. ground-truth
//! retraining across dataset sizes (the ROADMAP's open item).
//!
//! At small n the second-order estimator can rank a pattern whose
//! ground-truth Δbias is negative (observed at n = 300 during PR 1
//! verification). This experiment quantifies that: for each n ∈ {300, 1k,
//! 3k}, explain German credit with the second-order estimator and report,
//! for every top-k pattern, the estimated responsibility next to the
//! retraining ground truth — plus the per-n mean absolute error and
//! sign-agreement rate an analyst needs to decide whether the cheap
//! estimate can be trusted at their data scale.

use crate::workloads::{prepare, DatasetKind};
use gopher_core::report::TextTable;
use gopher_core::{ExplainRequest, SessionBuilder};
use gopher_models::LogisticRegression;

/// Rows per explanation request (top-k of the calibration sweeps).
const K: usize = 5;

/// Runs the calibration table across n ∈ {300, 1000, 3000}.
pub fn calibration(seed: u64) -> String {
    let mut out = String::new();
    out.push_str("== Estimator-fidelity calibration: second-order vs ground truth ==\n");
    out.push_str("(German credit, logistic regression, statistical parity; top-5\n");
    out.push_str(" patterns per n; ground truth = responsibility after retraining\n");
    out.push_str(" without the pattern's rows)\n\n");

    let mut table = TextTable::new(&[
        "n",
        "rank",
        "pattern",
        "SO estimate",
        "ground truth",
        "abs err",
        "sign",
    ]);
    let mut summaries: Vec<String> = Vec::new();
    for &n in &[300usize, 1_000, 3_000] {
        let p = prepare(DatasetKind::German, n, seed);
        let session = SessionBuilder::new().fit(
            |cols| LogisticRegression::new(cols, 1e-3),
            &p.train_raw,
            &p.test_raw,
        );
        let response =
            session.explain(&ExplainRequest::default().with_k(K).with_ground_truth(true));
        let mut abs_err_sum = 0.0;
        let mut sign_matches = 0usize;
        let explanations = &response.report.explanations;
        for (rank, e) in explanations.iter().enumerate() {
            let gt = e
                .ground_truth_responsibility
                .expect("ground truth requested");
            let err = (e.est_responsibility - gt).abs();
            abs_err_sum += err;
            let agree = e.est_responsibility.signum() == gt.signum();
            sign_matches += usize::from(agree);
            table.row_owned(vec![
                n.to_string(),
                (rank + 1).to_string(),
                e.pattern_text.clone(),
                format!("{:+.4}", e.est_responsibility),
                format!("{gt:+.4}"),
                format!("{err:.4}"),
                if agree { "ok".into() } else { "FLIP".into() },
            ]);
        }
        let count = explanations.len().max(1);
        summaries.push(format!(
            "n={n}: mean |err| {:.4}, sign agreement {}/{} (base bias {:+.4})",
            abs_err_sum / count as f64,
            sign_matches,
            explanations.len(),
            response.report.base_bias,
        ));
    }
    out.push_str(&table.render());
    out.push('\n');
    for line in summaries {
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(
        "\nReading: the second-order estimate is conservative — it consistently \
         understates how much retraining without a top pattern reduces bias — \
         so treat it as a ranking signal, not a magnitude; a sign FLIP marks a \
         pattern whose removal would actually move bias the other way (seen \
         at small n / marginal patterns), which only a ground-truth retrain \
         (`--ground-truth`) rules out.\n",
    );
    out
}
