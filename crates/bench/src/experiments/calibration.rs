//! Estimator-fidelity calibration: cheap influence estimates vs.
//! ground-truth retraining across dataset sizes (the ROADMAP's open item).
//!
//! At small n the second-order estimator can rank a pattern whose
//! ground-truth Δbias is negative (observed at n = 300 during PR 1
//! verification). This experiment quantifies that for **both estimator
//! families**: for each n ∈ {300, 1k, 3k}, explain German credit and
//! report, for every top-k pattern, the estimated responsibility next to
//! the retraining ground truth — plus the per-n mean absolute error and
//! sign-agreement rate an analyst needs to decide whether the cheap
//! estimate can be trusted at their data scale.
//!
//! * `lr / second-order` — the Hessian backend's group-influence estimate
//!   vs. warm-started convex retraining (the paper's setting).
//! * `forest / unlearning` — the unlearning backend's leaf-level exact
//!   unlearning of each pattern's rows from the frozen bootstraps vs. a
//!   scratch forest refit on the reduced data (the tree-ensemble
//!   extension). Acceptance: sign agreement on ≥ 90% of the top-5 at
//!   n = 1000.

use crate::workloads::{prepare, DatasetKind};
use gopher_core::report::TextTable;
use gopher_core::{ExplainRequest, SessionBuilder};
use gopher_influence::{BiasEval, ModelFamily};
use gopher_models::{Forest, ForestConfig, LogisticRegression};

/// Rows per explanation request (top-k of the calibration sweeps).
const K: usize = 5;

/// Per-n calibration numbers for one model family.
struct FamilyRow {
    n: usize,
    mean_abs_err: f64,
    sign_matches: usize,
    patterns: usize,
    base_bias: f64,
}

/// Explains `n`-row German credit through `make_model`'s family and
/// tabulates estimate vs. ground truth for the top-k patterns.
fn calibrate_family<M: ModelFamily>(
    label: &str,
    table: &mut TextTable,
    n: usize,
    seed: u64,
    bias_eval: BiasEval,
    make_model: impl Fn(usize) -> M,
) -> FamilyRow {
    let p = prepare(DatasetKind::German, n, seed);
    let session = SessionBuilder::new().fit(make_model, &p.train_raw, &p.test_raw);
    let mut req = ExplainRequest::default().with_k(K).with_ground_truth(true);
    req.bias_eval = bias_eval;
    let response = session.explain(&req);
    let mut abs_err_sum = 0.0;
    let mut sign_matches = 0usize;
    let explanations = &response.report.explanations;
    for (rank, e) in explanations.iter().enumerate() {
        let gt = e
            .ground_truth_responsibility
            .expect("ground truth requested");
        let err = (e.est_responsibility - gt).abs();
        abs_err_sum += err;
        let agree = e.est_responsibility.signum() == gt.signum();
        sign_matches += usize::from(agree);
        table.row_owned(vec![
            label.to_string(),
            n.to_string(),
            (rank + 1).to_string(),
            e.pattern_text.clone(),
            format!("{:+.4}", e.est_responsibility),
            format!("{gt:+.4}"),
            format!("{err:.4}"),
            if agree { "ok".into() } else { "FLIP".into() },
        ]);
    }
    FamilyRow {
        n,
        mean_abs_err: abs_err_sum / explanations.len().max(1) as f64,
        sign_matches,
        patterns: explanations.len(),
        base_bias: response.report.base_bias,
    }
}

/// Runs the calibration table across n ∈ {300, 1000, 3000} for both
/// estimator families.
pub fn calibration(seed: u64) -> String {
    let mut out = String::new();
    out.push_str("== Estimator-fidelity calibration: estimate vs ground truth ==\n");
    out.push_str("(German credit, statistical parity; top-5 patterns per n; ground\n");
    out.push_str(" truth = responsibility after retraining without the pattern's\n");
    out.push_str(" rows — warm convex retrain for lr, scratch refit for forest)\n\n");

    let mut table = TextTable::new(&[
        "family",
        "n",
        "rank",
        "pattern",
        "estimate",
        "ground truth",
        "abs err",
        "sign",
    ]);
    let mut summaries: Vec<String> = Vec::new();
    for &n in &[300usize, 1_000, 3_000] {
        let row = calibrate_family("lr/so", &mut table, n, seed, BiasEval::ChainRule, |cols| {
            LogisticRegression::new(cols, 1e-3)
        });
        summaries.push(summary_line("lr/so", &row));
    }
    for &n in &[300usize, 1_000, 3_000] {
        // Hard bias is a step function of the forest vote; smooth re-eval
        // keeps small-pattern deltas from rounding to exactly zero.
        let row = calibrate_family(
            "forest/unlearn",
            &mut table,
            n,
            seed,
            BiasEval::ReEvalSmooth,
            |cols| Forest::new(cols, ForestConfig::default()),
        );
        summaries.push(summary_line("forest/unlearn", &row));
    }
    out.push_str(&table.render());
    out.push('\n');
    for line in summaries {
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(
        "\nReading: both estimates are conservative — they understate how much \
         retraining without a top pattern reduces bias — so treat them as a \
         ranking signal, not a magnitude; a sign FLIP marks a pattern whose \
         removal would actually move bias the other way (seen at small n / \
         marginal patterns), which only a ground-truth retrain \
         (`--ground-truth`) rules out. The forest rows compare leaf-level \
         unlearning of the *frozen* bootstraps against a scratch refit that \
         redraws them, so residual error mixes estimator bias with bootstrap \
         resampling noise.\n",
    );
    out
}

fn summary_line(label: &str, row: &FamilyRow) -> String {
    format!(
        "{label} n={}: mean |err| {:.4}, sign agreement {}/{} (base bias {:+.4})",
        row.n, row.mean_abs_err, row.sign_matches, row.patterns, row.base_bias,
    )
}
