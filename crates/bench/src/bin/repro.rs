//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! Usage: repro [--experiment NAME] [--scale small|paper] [--seed N]
//!
//! Experiments:
//!   fig3     influence-estimation error vs ground truth (Figure 3)
//!   fig4     influence runtime vs fraction removed (Figure 4)
//!   fig5     influence runtime vs dataset size (Figure 5)
//!   table1   top-3 explanations, German + logistic regression
//!   table2   top-3 explanations, Adult + neural network
//!   table3   top-3 explanations, SQF + logistic regression
//!   table4   update-based explanations, German
//!   table5   update-based explanations, Adult
//!   table6   update-based explanations, SQF
//!   table7   lattice scalability (levels × candidates × time)
//!   fotree   FO-tree baseline comparison (§6.4)
//!   poison   data-poisoning detection (§6.7)
//!   ablation design-choice ablations (DESIGN.md §6)
//!   calibration  estimator fidelity vs ground truth across n (ROADMAP)
//!   all      everything above (default)
//! ```
//!
//! `--scale small` (default) keeps every experiment interactive;
//! `--scale paper` uses the paper's dataset sizes and lattice depth.

#![forbid(unsafe_code)]

use gopher_bench::experiments;
use gopher_bench::{DatasetKind, Scale};
use std::io::Write;

struct Args {
    experiment: String,
    scale: Scale,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut experiment = "all".to_string();
    let mut scale = Scale::Small;
    let mut seed = 42u64;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--experiment" | "-e" => {
                experiment = argv.next().ok_or("--experiment needs a value")?;
            }
            "--scale" | "-s" => match argv.next().as_deref() {
                Some("small") => scale = Scale::Small,
                Some("paper") => scale = Scale::Paper,
                other => return Err(format!("invalid --scale {other:?} (small|paper)")),
            },
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid seed: {e}"))?;
            }
            "--help" | "-h" => {
                println!("see the module docs at the top of repro.rs; experiments: fig3 fig4 fig5 table1..table7 fotree poison ablation calibration all");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        experiment,
        scale,
        seed,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let run_all = args.experiment == "all";
    let seed = args.seed;
    let paper = args.scale == Scale::Paper;

    let mut ran_any = false;
    let mut run = |name: &str, body: &mut dyn FnMut() -> String| {
        if run_all || args.experiment == name {
            ran_any = true;
            let t0 = std::time::Instant::now();
            let report = body();
            writeln!(out, "{report}").expect("stdout");
            writeln!(
                out,
                "[{} finished in {:.1}s]\n",
                name,
                t0.elapsed().as_secs_f64()
            )
            .expect("stdout");
        }
    };

    // Figure 3: at paper scale include the MLP and more subsets.
    run("fig3", &mut || {
        let (n, subsets) = if paper { (1_000, 36) } else { (600, 18) };
        experiments::fig3(n, subsets, seed, paper)
    });
    run("fig4", &mut || experiments::fig4(1_000, seed, true));
    run("fig5", &mut || {
        let factors: &[usize] = if paper {
            &[50, 100, 200, 400, 800, 1600]
        } else {
            &[50, 100, 200, 400]
        };
        experiments::fig5(factors, seed)
    });
    run("table1", &mut || {
        experiments::table_explanations(DatasetKind::German, args.scale, seed)
    });
    run("table2", &mut || {
        experiments::table_explanations(DatasetKind::Adult, args.scale, seed)
    });
    run("table3", &mut || {
        experiments::table_explanations(DatasetKind::Sqf, args.scale, seed)
    });
    run("table4", &mut || {
        experiments::table_updates(DatasetKind::German, args.scale, seed)
    });
    run("table5", &mut || {
        experiments::table_updates(DatasetKind::Adult, args.scale, seed)
    });
    run("table6", &mut || {
        experiments::table_updates(DatasetKind::Sqf, args.scale, seed)
    });
    run("table7", &mut || {
        let max_level = if paper { 6 } else { 4 };
        experiments::table7(1_000, max_level, seed)
    });
    run("fotree", &mut || {
        experiments::fotree(DatasetKind::German, args.scale, seed)
    });
    run("poison", &mut || {
        experiments::poison(if paper { 2_000 } else { 1_000 }, seed)
    });
    run("ablation", &mut || {
        experiments::ablations(if paper { 1_000 } else { 600 }, seed)
    });
    run("calibration", &mut || experiments::calibration(seed));

    if !ran_any {
        eprintln!(
            "error: unknown experiment {:?} (try --help)",
            args.experiment
        );
        std::process::exit(2);
    }
}
