//! Incremental sessions under data change: `ExplainSession::update` vs a
//! full rebuild, and incremental ground-truth retraining vs from-scratch.
//!
//! The acceptance bar: a single-row balanced delta against a warm
//! German-10k session must be at least 10× cheaper through `update()` than
//! through `cold_rebuild()` (which re-pays training, Hessian
//! factorization, predicate generation, and every coverage bitset). The 1%
//! delta arm deliberately lands in the drift-fallback regime — it measures
//! what the guardrails cost when they fire. The scale group repeats the
//! single-row comparison at SQF-100k, where the rebuild is dominated by
//! coverage construction.

use criterion::{criterion_group, criterion_main, Criterion};
use gopher_bench::workloads::{prepare, random_subset, train_lr, DatasetKind};
use gopher_core::{ExplainRequest, ExplainSession, SessionBuilder};
use gopher_data::generators::{german, sqf};
use gopher_influence::{
    retrain_without_many, retrain_without_many_incremental, InfluenceConfig, InfluenceEngine,
};
use gopher_models::LogisticRegression;
use gopher_prng::Rng;

fn warm_session(p: &gopher_bench::workloads::Prepared) -> ExplainSession<LogisticRegression> {
    let session = SessionBuilder::new().fit(
        |cols| LogisticRegression::new(cols, 1e-3),
        &p.train_raw,
        &p.test_raw,
    );
    session.explain(&ExplainRequest::default().with_ground_truth(false));
    session
}

fn bench_incremental_update(c: &mut Criterion) {
    let p = prepare(DatasetKind::German, 10_000, 42);
    let session = warm_session(&p);

    let mut group = c.benchmark_group("incremental_update");
    group.sample_size(10);

    group.bench_function("german10k/full_rebuild", |b| {
        b.iter(|| session.cold_rebuild(|cols| LogisticRegression::new(cols, 1e-3)));
    });

    // Balanced single-row swaps against one long-lived session: the
    // steady-state serving delta. Each iteration removes a fresh index and
    // appends one fresh generator row, so n stays constant and the engine
    // keeps taking the incremental factor path.
    {
        let mut live = session.cold_rebuild(|cols| LogisticRegression::new(cols, 1e-3));
        live.explain(&ExplainRequest::default().with_ground_truth(false));
        let mut i = 0u64;
        group.bench_function("german10k/update_single_row", |b| {
            b.iter(|| {
                let n = live.train_raw().n_rows();
                let report = live.update(&[(i as usize * 97) % n], &german(1, 9_000 + i));
                i += 1;
                report
            });
        });
    }

    // A 1% delta (70 rows at 7 000 train rows) trips the drift guard: this
    // arm prices the refactorize/retrain fallback, still well under a
    // rebuild because every cache and coverage patch is reused.
    {
        let mut live = session.cold_rebuild(|cols| LogisticRegression::new(cols, 1e-3));
        live.explain(&ExplainRequest::default().with_ground_truth(false));
        let mut rng = Rng::new(1731);
        let mut i = 0u64;
        group.bench_function("german10k/update_1pct", |b| {
            b.iter(|| {
                let n = live.train_raw().n_rows();
                let k = n / 100;
                let removed = rng.sample_indices(n, k);
                let removed: Vec<usize> = removed;
                let report = live.update(&removed, &german(k, 17_000 + i));
                i += 1;
                report
            });
        });
    }

    // Fig-4-style ground truth: k=3 retrains without 5% subsets, the
    // engine-factor-reusing incremental solver vs from-scratch Newton.
    {
        let model = train_lr(&p);
        let engine = InfluenceEngine::new(model.clone(), &p.train, InfluenceConfig::default());
        let mut rng = Rng::new(4242);
        let subsets: Vec<Vec<u32>> = (0..3)
            .map(|_| random_subset(p.train.n_rows(), 0.05, &mut rng))
            .collect();
        group.bench_function("german10k/retrain_without_many_scratch", |b| {
            b.iter(|| retrain_without_many(&model, &p.train, &subsets, 4));
        });
        group.bench_function("german10k/retrain_without_many_incremental", |b| {
            b.iter(|| retrain_without_many_incremental(&engine, &p.train, &subsets, 4));
        });
    }
    group.finish();
}

fn bench_incremental_update_scale(c: &mut Criterion) {
    let p = prepare(DatasetKind::Sqf, 100_000, 42);
    let session = warm_session(&p);

    let mut group = c.benchmark_group("incremental_update_scale");
    group.sample_size(3);

    group.bench_function("sqf100k/full_rebuild", |b| {
        b.iter(|| session.cold_rebuild(|cols| LogisticRegression::new(cols, 1e-3)));
    });

    {
        let mut live = session.cold_rebuild(|cols| LogisticRegression::new(cols, 1e-3));
        live.explain(&ExplainRequest::default().with_ground_truth(false));
        let mut i = 0u64;
        group.bench_function("sqf100k/update_single_row", |b| {
            b.iter(|| {
                let n = live.train_raw().n_rows();
                let report = live.update(&[(i as usize * 101) % n], &sqf(1, 33_000 + i));
                i += 1;
                report
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_incremental_update,
    bench_incremental_update_scale
);
criterion_main!(benches);
