//! Criterion bench for Table 7: lattice-search time as the maximum pattern
//! size (lattice level) grows, plus the diversity-filtering step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gopher_bench::workloads::{prepare, train_lr, DatasetKind};
use gopher_fairness::FairnessMetric;
use gopher_influence::{BiasEval, BiasInfluence, Estimator, InfluenceConfig, InfluenceEngine};
use gopher_patterns::{generate_predicates, lattice, topk, LatticeConfig};

fn bench_table7(c: &mut Criterion) {
    let p = prepare(DatasetKind::German, 1_000, 42);
    let model = train_lr(&p);
    let engine = InfluenceEngine::new(model, &p.train, InfluenceConfig::default());
    let bi = BiasInfluence::new(&engine, FairnessMetric::StatisticalParity, &p.test);
    let table = generate_predicates(&p.train_raw, 4);

    let mut group = c.benchmark_group("table7_lattice_search");
    group.sample_size(10);
    for max_level in [1usize, 2, 3] {
        group.bench_with_input(
            BenchmarkId::new("compute_candidates", max_level),
            &max_level,
            |b, &max_level| {
                let config = LatticeConfig {
                    support_threshold: 0.05,
                    max_predicates: max_level,
                    prune_by_responsibility: true,
                    max_level_candidates: None,
                };
                b.iter(|| {
                    lattice::compute_candidates(
                        &table,
                        |cov| {
                            let rows = cov.to_indices();
                            bi.responsibility(
                                &p.train,
                                &rows,
                                Estimator::FirstOrder,
                                BiasEval::ChainRule,
                            )
                        },
                        &config,
                    )
                });
            },
        );
    }

    // Filtering cost over the full candidate set.
    let config = LatticeConfig {
        support_threshold: 0.05,
        max_predicates: 3,
        ..Default::default()
    };
    let (candidates, _) = lattice::compute_candidates(
        &table,
        |cov| {
            let rows = cov.to_indices();
            bi.responsibility(&p.train, &rows, Estimator::FirstOrder, BiasEval::ChainRule)
        },
        &config,
    );
    group.bench_function("top5_diversity_filtering", |b| {
        b.iter(|| topk::top_k(&candidates, 5, 0.75));
    });
    group.finish();
}

criterion_group!(benches, bench_table7);
criterion_main!(benches);
