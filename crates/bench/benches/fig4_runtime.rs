//! Criterion bench for Figure 4: influence computation time vs fraction of
//! the training data removed, per estimator, against the retraining
//! baseline. Expect influence functions to sit orders of magnitude below
//! retraining at every fraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gopher_bench::workloads::{prepare, random_subset, train_lr, DatasetKind};
use gopher_influence::{retrain_without, Estimator, InfluenceConfig, InfluenceEngine};
use gopher_prng::Rng;

fn bench_fig4(c: &mut Criterion) {
    let p = prepare(DatasetKind::German, 1_000, 42);
    let model = train_lr(&p);
    let engine = InfluenceEngine::new(model.clone(), &p.train, InfluenceConfig::default());
    let mut rng = Rng::new(4242);

    let mut group = c.benchmark_group("fig4_influence_vs_fraction");
    group.sample_size(10);
    for fraction in [0.05, 0.2, 0.5] {
        let rows = random_subset(p.train.n_rows(), fraction, &mut rng);
        let label = format!("{:.0}%", fraction * 100.0);
        group.bench_with_input(BenchmarkId::new("first_order", &label), &rows, |b, rows| {
            b.iter(|| engine.param_change(&p.train, rows, Estimator::FirstOrder));
        });
        group.bench_with_input(
            BenchmarkId::new("second_order", &label),
            &rows,
            |b, rows| {
                b.iter(|| engine.param_change(&p.train, rows, Estimator::SecondOrder));
            },
        );
        group.bench_with_input(BenchmarkId::new("one_step_gd", &label), &rows, |b, rows| {
            b.iter(|| {
                engine.param_change(&p.train, rows, Estimator::OneStepGd { learning_rate: 1.0 })
            });
        });
        group.bench_with_input(BenchmarkId::new("retrain", &label), &rows, |b, rows| {
            b.iter(|| retrain_without(&model, &p.train, rows));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
