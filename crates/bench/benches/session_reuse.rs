//! Session-reuse benchmark: the acceptance workload for the query-oriented
//! API. One warm [`ExplainSession`] serving two single-metric queries plus a
//! 2-request batch must beat three cold `Gopher::fit(...).explain()` runs on
//! the German workload — the cold path re-pays training, Hessian
//! factorization, predicate generation, and every coverage intersection per
//! call.

#![allow(deprecated)] // the cold arm benchmarks the legacy façade on purpose

use criterion::{criterion_group, criterion_main, Criterion};
use gopher_bench::workloads::{prepare, DatasetKind};
use gopher_core::{ExplainRequest, Gopher, GopherConfig, SessionBuilder};
use gopher_fairness::FairnessMetric;
use gopher_models::LogisticRegression;

fn requests() -> [ExplainRequest; 2] {
    [
        ExplainRequest::default().with_ground_truth(false),
        ExplainRequest::default()
            .with_metric(FairnessMetric::EqualOpportunity)
            .with_ground_truth(false),
    ]
}

fn bench_session_reuse(c: &mut Criterion) {
    let p = prepare(DatasetKind::German, 1_000, 42);
    let [sp, eo] = requests();

    let mut group = c.benchmark_group("session_reuse_german");
    group.sample_size(10);

    // Cold path: three independent fit+explain runs (SP, EO, SP again —
    // exactly the questions the warm arm answers).
    group.bench_function("cold_three_gopher_runs", |b| {
        b.iter(|| {
            let mut reports = Vec::new();
            for request in [&sp, &eo, &sp] {
                let gopher = Gopher::fit(
                    |cols| LogisticRegression::new(cols, 1e-3),
                    &p.train_raw,
                    &p.test_raw,
                    GopherConfig {
                        metric: request.metric,
                        ground_truth_for_topk: false,
                        ..Default::default()
                    },
                );
                reports.push(gopher.explain());
            }
            reports
        });
    });

    // Warm path: one session build + two singles + one 2-request batch
    // (four answers for the price of one setup and two sweeps).
    group.bench_function("warm_session_2_singles_plus_batch2", |b| {
        b.iter(|| {
            let session = SessionBuilder::new().fit(
                |cols| LogisticRegression::new(cols, 1e-3),
                &p.train_raw,
                &p.test_raw,
            );
            let mut reports = Vec::new();
            reports.push(session.explain(&sp).report);
            reports.push(session.explain(&eo).report);
            reports.extend(
                session
                    .explain_batch(&[sp.clone(), eo.clone()])
                    .into_iter()
                    .map(|r| r.report),
            );
            reports
        });
    });

    // Marginal query cost against an already-warm session — the serving
    // steady state.
    let warm = SessionBuilder::new().fit(
        |cols| LogisticRegression::new(cols, 1e-3),
        &p.train_raw,
        &p.test_raw,
    );
    let _ = warm.explain(&sp);
    let _ = warm.explain(&eo);
    group.bench_function("marginal_warm_query", |b| {
        b.iter(|| warm.explain(&sp).report);
    });

    group.finish();
}

criterion_group!(benches, bench_session_reuse);
criterion_main!(benches);
