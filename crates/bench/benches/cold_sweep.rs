//! Cold-sweep benchmark: the staged lattice engine on a single cold query.
//!
//! Measures one full staged sweep — predicate-index filter, parallel
//! structural merge pass, and a single influence-scored scoring pass — on
//! German and Adult at 10k rows, with the structural pass chunked across 1
//! vs 4 workers. Every iteration builds a fresh coverage cache, index, and
//! structural artifact, so each sample is genuinely cold (nothing is
//! amortized across iterations, unlike the session benches). On a >=4-core
//! host the 4-thread arm's structural phase shrinks with cores
//! (`tests/staged_sweep.rs` asserts it); on a 1-core container the arms
//! converge, showing the chunked pass adds no overhead over the inline
//! loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gopher_bench::workloads::{prepare, train_lr, DatasetKind};
use gopher_fairness::FairnessMetric;
use gopher_influence::{BiasEval, BiasInfluence, Estimator, InfluenceConfig, InfluenceEngine};
use gopher_patterns::lattice::compute_candidates_multi;
use gopher_patterns::{
    generate_predicates, CoverageCache, LatticeConfig, PredicateIndex, ScoreFn, SweepStructure,
};

fn bench_cold_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("cold_sweep_10k");
    group.sample_size(10);

    for kind in [DatasetKind::German, DatasetKind::Adult] {
        let p = prepare(kind, 10_000, 42);
        let model = train_lr(&p);
        let engine = InfluenceEngine::new(model, &p.train, InfluenceConfig::default());
        let bi = BiasInfluence::new(&engine, FairnessMetric::StatisticalParity, &p.test);
        let table = generate_predicates(&p.train_raw, 4);
        let config = LatticeConfig {
            support_threshold: 0.05,
            max_predicates: 3,
            ..Default::default()
        };

        for threads in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("{}_threads", kind.name()), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        let cache = CoverageCache::new();
                        let index = PredicateIndex::build(&table, &cache);
                        let structure = SweepStructure::build(&index, &config);
                        let mut score = |cov: &gopher_patterns::BitSet| {
                            let rows = cov.to_indices();
                            bi.responsibility(
                                &p.train,
                                &rows,
                                Estimator::SecondOrder,
                                BiasEval::ChainRule,
                            )
                        };
                        let mut scorers: Vec<ScoreFn<'_>> = vec![Box::new(&mut score)];
                        compute_candidates_multi(
                            &table,
                            &mut scorers,
                            &config,
                            &cache,
                            &structure,
                            threads,
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cold_sweep);
criterion_main!(benches);
