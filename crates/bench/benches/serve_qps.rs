//! Serving-throughput benchmark: the `gopher serve` daemon under concurrent
//! HTTP load, micro-batching on vs off.
//!
//! Two identically configured servers answer the same workload — four
//! persistent clients spraying mixed-metric explains across two tenant
//! sessions — differing only in the batch window (the daemon's 2 ms default
//! vs `0`, which disables coalescing). Both tenants run with
//! `sweep_cache_cap: 0`, so every request pays its lattice sweep and the
//! batched arm's saving is structural sharing, not scored-cache hits.
//!
//! The acceptance verdict is counter-based, not wall-clock: after the load,
//! the batched arm's sessions must report `batches_formed` strictly below
//! `requests_served` (coalescing happened) while the solo arm's are equal
//! (it never batched). Wall-clock medians of paired rounds are printed for
//! the record; on shared or single-core containers they are noise-dominated,
//! so they inform `BENCH_baseline.json` rather than gate.

use criterion::{criterion_group, criterion_main, Criterion};
use gopher_json::Json;
use gopher_serve::client::{request_once, Conn};
use gopher_serve::{ServeConfig, Server};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 8;
const TENANTS: [&str; 2] = ["tenant-a", "tenant-b"];
const METRICS: [&str; 4] = [
    "statistical-parity",
    "equal-opportunity",
    "predictive-parity",
    "average-odds",
];

/// Boots a daemon with the given batch window and registers both tenants
/// (German generator, sweep retention off so every explain really sweeps).
fn boot(window: Duration) -> Server {
    let server = Server::start(ServeConfig {
        batch_window: window,
        workers: CLIENTS,
        ..Default::default()
    })
    .expect("bind an ephemeral port");
    for (tenant, seed) in TENANTS.iter().zip([7u64, 11]) {
        let body = format!(
            r#"{{"name":"{tenant}", "generator":"german", "rows":300, "seed":{seed}, "sweep_cache_cap":0}}"#
        );
        let created = request_once(server.addr(), "POST", "/sessions", Some(&body))
            .expect("create tenant session");
        assert_eq!(created.status, 201, "{}", created.body);
    }
    server
}

/// One load round: every client keeps one connection alive and walks the
/// tenant × metric grid from its own offset, so concurrent requests mix
/// shapes the way real multi-analyst traffic does.
fn round(addr: SocketAddr) {
    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            scope.spawn(move || {
                let mut conn = Conn::connect(addr).expect("connect");
                for i in 0..REQUESTS_PER_CLIENT {
                    let tenant = TENANTS[(t + i) % TENANTS.len()];
                    let metric = METRICS[(t + i) % METRICS.len()];
                    let body = format!(r#"{{"metric":"{metric}"}}"#);
                    let answer = conn
                        .request("POST", &format!("/sessions/{tenant}/explain"), Some(&body))
                        .expect("explain");
                    assert_eq!(answer.status, 200, "{}", answer.body);
                }
            });
        }
    });
}

/// Cumulative (requests_served, batches_formed) over both tenants.
fn traffic_counters(addr: SocketAddr) -> (u64, u64) {
    let mut requests = 0;
    let mut batches = 0;
    for tenant in TENANTS {
        let stats =
            request_once(addr, "GET", &format!("/sessions/{tenant}/stats"), None).expect("stats");
        assert_eq!(stats.status, 200, "{}", stats.body);
        let json = gopher_json::parse(stats.body.trim()).expect("stats JSON");
        let field = |name: &str| {
            json.get(name)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("stats missing {name}: {}", stats.body))
                as u64
        };
        requests += field("requests_served");
        batches += field("batches_formed");
    }
    (requests, batches)
}

fn bench_serve_qps(c: &mut Criterion) {
    let solo = boot(Duration::ZERO);
    let batched = boot(Duration::from_millis(2));

    let mut group = c.benchmark_group("serve_qps_german_300");
    group.sample_size(10);
    group.bench_function("round_32req_4clients_window_0", |b| {
        b.iter(|| round(solo.addr()));
    });
    group.bench_function("round_32req_4clients_window_2ms", |b| {
        b.iter(|| round(batched.addr()));
    });
    group.finish();

    // Paired rounds in alternating order: the wall-clock record for the
    // baseline file, robust to drift on a shared container.
    let mut solo_times = Vec::new();
    let mut batched_times = Vec::new();
    for i in 0..6 {
        let order: [(&Server, &mut Vec<Duration>); 2] = if i % 2 == 0 {
            [(&solo, &mut solo_times), (&batched, &mut batched_times)]
        } else {
            [(&batched, &mut batched_times), (&solo, &mut solo_times)]
        };
        for (server, times) in order {
            let start = Instant::now();
            round(server.addr());
            times.push(start.elapsed());
        }
    }
    solo_times.sort();
    batched_times.sort();
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as f64;
    let qps = |median: Duration| total / median.as_secs_f64();
    println!(
        "serve_qps paired medians: solo {:?} ({:.0} qps), batched {:?} ({:.0} qps)",
        solo_times[3],
        qps(solo_times[3]),
        batched_times[3],
        qps(batched_times[3]),
    );

    // The batching verdict lives in the counters: the solo arm never formed
    // a multi-request batch, the batched arm must have.
    let (solo_requests, solo_batches) = traffic_counters(solo.addr());
    assert_eq!(
        solo_requests, solo_batches,
        "window 0 must run every request solo"
    );
    let (batched_requests, batched_batches) = traffic_counters(batched.addr());
    assert!(
        batched_batches < batched_requests,
        "the 2 ms window must coalesce under 4-client load \
         ({batched_batches} batches for {batched_requests} requests)"
    );
    println!(
        "serve_qps counters: solo {solo_requests} requests = {solo_batches} batches; \
         batched {batched_requests} requests in {batched_batches} batches"
    );
}

criterion_group!(benches, bench_serve_qps);
criterion_main!(benches);
