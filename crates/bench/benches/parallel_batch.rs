//! Parallel-batch benchmark: the acceptance workload for the parallel query
//! engine. An 8-request mixed-metric `explain_batch` (4 metrics × 2
//! estimators, ground truth on) on German 1k, answered by identically-built
//! sessions at 1, 2, and 4 worker threads. On a ≥4-core host the 4-thread
//! arm must come in ≥2× under the sequential one; on smaller machines the
//! arms converge (the fan-out degrades to the inline path).

use criterion::{criterion_group, criterion_main, Criterion};
use gopher_bench::workloads::{prepare, DatasetKind};
use gopher_core::{ExplainRequest, ExplainSession, SessionBuilder};
use gopher_fairness::FairnessMetric;
use gopher_influence::Estimator;
use gopher_models::LogisticRegression;
use std::cell::Cell;

fn requests(support: f64) -> Vec<ExplainRequest> {
    [
        FairnessMetric::StatisticalParity,
        FairnessMetric::EqualOpportunity,
        FairnessMetric::PredictiveParity,
        FairnessMetric::AverageOdds,
    ]
    .iter()
    .flat_map(|&m| {
        [
            ExplainRequest::default()
                .with_metric(m)
                .with_support_threshold(support)
                .with_ground_truth(true),
            ExplainRequest::default()
                .with_metric(m)
                .with_estimator(Estimator::FirstOrder)
                .with_support_threshold(support)
                .with_ground_truth(true),
        ]
    })
    .collect()
}

fn bench_parallel_batch(c: &mut Criterion) {
    let p = prepare(DatasetKind::German, 1_000, 42);
    let mut group = c.benchmark_group("parallel_batch_german");
    group.sample_size(10);

    for threads in [1usize, 2, 4] {
        let session: ExplainSession<LogisticRegression> =
            SessionBuilder::new().threads(threads).fit(
                |cols| LogisticRegression::new(cols, 1e-3),
                &p.train_raw,
                &p.test_raw,
            );
        // Nudge the support threshold per iteration so every sample sweeps
        // cold (distinct sweep key) while leaving the lattice structurally
        // identical — ceil(τ·n) is unchanged by a 1e-9 perturbation off the
        // integer boundary. Without this the warm sweep cache would reduce
        // later samples to top-k selection and retrains only.
        let iteration = Cell::new(0u64);
        group.bench_function(format!("8req_mixed_gt_threads_{threads}"), |b| {
            b.iter(|| {
                let i = iteration.get();
                iteration.set(i + 1);
                let reqs = requests(0.051 + i as f64 * 1e-9);
                session.explain_batch(&reqs)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_batch);
criterion_main!(benches);
