//! Timing ablations for the design choices in DESIGN.md §6:
//! estimator cost (FO vs SO vs Newton), bias-evaluation cost (chain rule vs
//! re-evaluation), and pruning on/off for the lattice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gopher_bench::workloads::{prepare, random_subset, train_lr, DatasetKind};
use gopher_fairness::FairnessMetric;
use gopher_influence::{BiasEval, BiasInfluence, Estimator, InfluenceConfig, InfluenceEngine};
use gopher_patterns::{generate_predicates, lattice, LatticeConfig};
use gopher_prng::Rng;

fn bench_estimators(c: &mut Criterion) {
    let p = prepare(DatasetKind::German, 1_000, 42);
    let model = train_lr(&p);
    let engine = InfluenceEngine::new(model, &p.train, InfluenceConfig::default());
    let mut rng = Rng::new(7);
    let rows = random_subset(p.train.n_rows(), 0.1, &mut rng);

    let mut group = c.benchmark_group("ablation_estimator_cost");
    group.sample_size(20);
    for (name, est) in [
        ("first_order", Estimator::FirstOrder),
        ("second_order", Estimator::SecondOrder),
        ("newton_step", Estimator::NewtonStep),
        ("one_step_gd", Estimator::OneStepGd { learning_rate: 1.0 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &est, |b, &est| {
            b.iter(|| engine.param_change(&p.train, &rows, est));
        });
    }
    group.finish();

    let bi = BiasInfluence::new(&engine, FairnessMetric::StatisticalParity, &p.test);
    let delta = engine.param_change(&p.train, &rows, Estimator::SecondOrder);
    let mut group = c.benchmark_group("ablation_bias_eval_cost");
    group.sample_size(20);
    for (name, eval) in [
        ("chain_rule", BiasEval::ChainRule),
        ("reeval_smooth", BiasEval::ReEvalSmooth),
        ("reeval_hard", BiasEval::ReEvalHard),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &eval, |b, &eval| {
            b.iter(|| bi.bias_change_from_delta(&delta, eval));
        });
    }
    group.finish();
}

fn bench_pruning(c: &mut Criterion) {
    let p = prepare(DatasetKind::German, 1_000, 42);
    let model = train_lr(&p);
    let engine = InfluenceEngine::new(model, &p.train, InfluenceConfig::default());
    let bi = BiasInfluence::new(&engine, FairnessMetric::StatisticalParity, &p.test);
    let table = generate_predicates(&p.train_raw, 4);

    let mut group = c.benchmark_group("ablation_lattice_pruning");
    group.sample_size(10);
    for (name, prune) in [
        ("responsibility_pruning_on", true),
        ("responsibility_pruning_off", false),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &prune, |b, &prune| {
            let config = LatticeConfig {
                support_threshold: 0.05,
                max_predicates: 3,
                prune_by_responsibility: prune,
                max_level_candidates: None,
            };
            b.iter(|| {
                lattice::compute_candidates(
                    &table,
                    |cov| {
                        let rows = cov.to_indices();
                        bi.responsibility(
                            &p.train,
                            &rows,
                            Estimator::FirstOrder,
                            BiasEval::ChainRule,
                        )
                    },
                    &config,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimators, bench_pruning);
criterion_main!(benches);
