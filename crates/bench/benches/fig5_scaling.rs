//! Criterion bench for Figure 5: influence query time vs dataset size
//! (German replicated ×50 and ×200; the full ×1600 sweep lives in
//! `repro --experiment fig5 --scale paper`). The query is a fixed 5% subset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gopher_bench::workloads::random_subset;
use gopher_data::generators::german;
use gopher_data::Encoder;
use gopher_influence::{Estimator, InfluenceConfig, InfluenceEngine};
use gopher_models::train::fit_default;
use gopher_models::LogisticRegression;
use gopher_prng::Rng;

fn bench_fig5(c: &mut Criterion) {
    let base = german(1_000, 42);
    let mut group = c.benchmark_group("fig5_influence_vs_dataset_size");
    group.sample_size(10);
    for factor in [50usize, 200] {
        let data = base.replicate(factor);
        let encoder = Encoder::fit(&data);
        let train = encoder.transform(&data);
        let mut model = LogisticRegression::new(train.n_cols(), 1e-3);
        fit_default(&mut model, &train);
        let engine = InfluenceEngine::new(model, &train, InfluenceConfig::default());
        let mut rng = Rng::new(5);
        let rows = random_subset(train.n_rows(), 0.05, &mut rng);
        let label = format!("{}k_rows", train.n_rows() / 1000);
        group.bench_with_input(BenchmarkId::new("first_order", &label), &rows, |b, rows| {
            b.iter(|| engine.param_change(&train, rows, Estimator::FirstOrder));
        });
        group.bench_with_input(
            BenchmarkId::new("second_order", &label),
            &rows,
            |b, rows| {
                b.iter(|| engine.param_change(&train, rows, Estimator::SecondOrder));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
