//! SQF-scale bench tier: the paper's headline regime (hundreds of
//! thousands of stop-question-frisk rows) instead of the German/Adult
//! 1k–10k rows everything else is tuned on.
//!
//! Two families of arms:
//!
//! * **`cold_sweep_{off,on}/{100k,500k,1m}`** — one cold staged sweep per
//!   iteration (fresh coverage cache and structural artifact over a
//!   prebuilt predicate index) over synthetic SQF at 100k/500k/1M rows,
//!   support τ = 0.1, depth 3, responsibility pruning off, one cheap
//!   count-based scorer so the structural merge pass dominates the
//!   measurement. `off` runs the exact `and_count` for every merge; `on`
//!   attaches a sampled-support prefilter over a quarter of the rows that
//!   skips merges whose sampled upper bound already proves them
//!   unsupported. The PR's acceptance criterion is `on` strictly faster
//!   than `off` at 500k, asserted on the median of paired back-to-back
//!   off/on sweeps (robust to host drift, which exceeds the effect size on
//!   shared containers); the bench also asserts the two arms are
//!   bit-identical and that the prefilter actually skipped work before any
//!   timing is trusted.
//! * **`session_100k/second_order_cold_explain`** — end-to-end
//!   `ExplainSession::explain` under *second-order* scoring at SQF-100k
//!   (all retention off, so each iteration pays the full sweep), with the
//!   prefilter on. After timing, the report's per-level timings re-measure
//!   the structural share at scale — the number the ROADMAP asks for
//!   (German-10k/first-order put it at ~2%; tune structural work where it
//!   actually costs).

use criterion::{criterion_group, criterion_main, Criterion};
use gopher_bench::workloads::{prepare, train_lr, DatasetKind};
use gopher_core::{ExplainRequest, SessionBuilder};
use gopher_data::generators::sqf;
use gopher_influence::Estimator;
use gopher_patterns::lattice::{compute_candidates_multi, LatticeConfig};
use gopher_patterns::{
    generate_predicates, BitSet, Candidate, CoverageCache, PredicateIndex, PredicateTable, ScoreFn,
    SupportPrefilter, SweepStructure,
};
use std::sync::Arc;

/// Prefilter sample as a fraction of the rows (the bound's power scales
/// with the sampled fraction; a quarter of the universe is the session
/// guidance at 100k+).
fn prefilter_rows(n: usize) -> usize {
    n / 4
}

/// (rows, label, timed samples) — samples shrink as the sweeps grow.
const SIZES: [(usize, &str, usize); 3] = [
    (100_000, "100k", 7),
    (500_000, "500k", 5),
    (1_000_000, "1m", 4),
];

fn config() -> LatticeConfig {
    LatticeConfig {
        support_threshold: 0.1,
        max_predicates: 3,
        prune_by_responsibility: false,
        max_level_candidates: None,
    }
}

/// One cold staged sweep over a prebuilt predicate index: fresh coverage
/// cache and structural artifact per call, one cheap scorer. The index
/// (predicate materialization — data prep, identical in both arms and
/// untouched by the prefilter) is built once per size outside the timed
/// region, so the measurement is the structural merge pass plus scoring:
/// the work the prefilter exists to cut.
fn cold_sweep(
    table: &PredicateTable,
    index: &PredicateIndex,
    n_rows: usize,
    prefilter: Option<Arc<SupportPrefilter>>,
) -> (Vec<Candidate>, usize) {
    let cache = CoverageCache::new();
    let structure = SweepStructure::build_with_prefilter(index, &config(), prefilter);
    // Density scoring: one SIMD popcount per candidate, so merge
    // resolution — the work the prefilter targets — dominates the arm
    // instead of a per-row scoring loop.
    let mut scorer = |cov: &BitSet| cov.count() as f64 / n_rows as f64;
    let mut scorers: Vec<ScoreFn<'_>> = vec![Box::new(&mut scorer)];
    let mut results =
        compute_candidates_multi(table, &mut scorers, &config(), &cache, &structure, 1);
    let (candidates, stats) = results.pop().expect("one scorer in, one result out");
    (candidates, stats.total_scored)
}

fn bench_cold_sweeps(c: &mut Criterion) {
    for (n, label, samples) in SIZES {
        let d = sqf(n, 7);
        let table = generate_predicates(&d, 4);
        let index_cache = CoverageCache::new();
        let index = PredicateIndex::build(&table, &index_cache);

        // Identity + effectiveness gate before trusting any timing: the
        // prefiltered sweep must return bit-identical candidates and must
        // actually have skipped exact merges.
        let pf = Arc::new(SupportPrefilter::new(n, prefilter_rows(n)));
        let (plain, plain_scored) = cold_sweep(&table, &index, n, None);
        let (filtered, filtered_scored) = cold_sweep(&table, &index, n, Some(Arc::clone(&pf)));
        assert_eq!(
            plain_scored, filtered_scored,
            "{label}: scored counts diverge"
        );
        assert_eq!(
            plain.len(),
            filtered.len(),
            "{label}: candidate counts diverge"
        );
        for (a, b) in plain.iter().zip(&filtered) {
            assert_eq!(
                a.pattern.ids(),
                b.pattern.ids(),
                "{label}: patterns diverge"
            );
            assert_eq!(
                a.support.to_bits(),
                b.support.to_bits(),
                "{label}: supports diverge"
            );
        }
        assert!(
            pf.skips() > 0,
            "{label}: prefilter never skipped a merge — the arm measures nothing"
        );
        println!(
            "{label}: {} candidates, prefilter skipped {}/{} probes",
            plain.len(),
            pf.skips(),
            pf.probes()
        );

        // Paired off/on measurement. The container this runs on shares its
        // host: single-arm means drift by more than the prefilter's
        // effect, so the verdict uses the median of per-pair deltas — each
        // pair runs back-to-back (cancelling common-mode drift) and the
        // within-pair order alternates (cancelling order bias) — instead
        // of comparing two separately-timed arms. 500k gets extra pairs
        // because the acceptance assertion below rides on it.
        let pairs = if label == "500k" { 21 } else { samples + 2 };
        let timed_off = || {
            let t = std::time::Instant::now();
            let _ = cold_sweep(&table, &index, n, None);
            t.elapsed().as_secs_f64()
        };
        let timed_on = || {
            let t = std::time::Instant::now();
            let _ = cold_sweep(
                &table,
                &index,
                n,
                Some(Arc::new(SupportPrefilter::new(n, prefilter_rows(n)))),
            );
            t.elapsed().as_secs_f64()
        };
        let mut deltas = Vec::with_capacity(pairs);
        let mut on_wins = 0usize;
        for i in 0..pairs {
            let (off_t, on_t) = if i % 2 == 0 {
                let off_t = timed_off();
                (off_t, timed_on())
            } else {
                let on_t = timed_on();
                (timed_off(), on_t)
            };
            on_wins += usize::from(on_t < off_t);
            deltas.push(off_t - on_t);
        }
        deltas.sort_by(f64::total_cmp);
        let median = deltas[pairs / 2];
        println!(
            "{label}: paired prefilter delta: median {:+.3}ms (on faster in {on_wins}/{pairs} pairs)",
            median * 1e3
        );
        if label == "500k" {
            assert!(
                median > 0.0,
                "500k: prefilter-on must be strictly faster than off \
                 (paired median {:+.3}ms) — the PR's acceptance criterion",
                median * 1e3
            );
        }

        let mut group = c.benchmark_group(format!("scale_sqf_{label}"));
        group.sample_size(samples);
        group.bench_function("cold_sweep_prefilter_off", |b| {
            b.iter(|| cold_sweep(&table, &index, n, None))
        });
        group.bench_function("cold_sweep_prefilter_on", |b| {
            b.iter(|| {
                cold_sweep(
                    &table,
                    &index,
                    n,
                    Some(Arc::new(SupportPrefilter::new(n, prefilter_rows(n)))),
                )
            })
        });
        group.finish();
    }
}

fn bench_session_second_order(c: &mut Criterion) {
    let p = prepare(DatasetKind::Sqf, 100_000, 42);
    let model = train_lr(&p);
    // All retention off: every explain pays its full sweep, so the timed
    // loop is the real second-order workload, not a cache memo. Two worker
    // threads force the shared structural pass, which is the only path
    // where structural time is attributed separately from scoring (at one
    // thread merges resolve inline inside the scoring loop).
    let session = SessionBuilder::new()
        .structure_cache_cap(0)
        .sweep_cache_cap(0)
        .coverage_cache_cap(0)
        .threads(2)
        .prefilter_sample(prefilter_rows(p.train_raw.n_rows()))
        .build(model, &p.train_raw, &p.test_raw);
    let request = ExplainRequest::default()
        .with_support_threshold(0.1)
        .with_max_predicates(3)
        .with_estimator(Estimator::SecondOrder)
        .with_ground_truth(false);

    let mut group = c.benchmark_group("scale_sqf_session_100k");
    group.sample_size(3);
    group.bench_function("second_order_cold_explain", |b| {
        b.iter(|| session.explain(&request))
    });
    group.finish();

    // Structural-share re-measurement at scale (the ROADMAP number).
    let stats = session.explain(&request).report.stats;
    let structural: f64 = stats
        .levels
        .iter()
        .map(|l| l.structural.as_secs_f64())
        .sum();
    let total: f64 = stats.levels.iter().map(|l| l.duration.as_secs_f64()).sum();
    println!(
        "structural share at SQF-100k/second-order: {:.1}% ({:.3}s of {:.3}s)",
        100.0 * structural / total,
        structural,
        total
    );
}

criterion_group!(benches, bench_cold_sweeps, bench_session_second_order);
criterion_main!(benches);
