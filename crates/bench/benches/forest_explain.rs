//! Forest-family explanation cost: the unlearning backend end to end.
//!
//! Three arms on German-2k: a cold `explain` through a fresh forest session
//! (sweep + per-candidate unlearning), the unlearning influence estimate
//! for one fixed pattern-sized subset, and the scratch-retrain ground truth
//! for the same subset. The last two isolate the estimator-vs-oracle gap
//! the calibration experiment reports on: leaf-level unlearning re-splits
//! only the nodes the removed rows actually touched, while the oracle
//! re-draws every bootstrap and regrows all trees.

use criterion::{criterion_group, criterion_main, Criterion};
use gopher_bench::workloads::{prepare, random_subset};
use gopher_core::{ExplainRequest, SessionBuilder};
use gopher_data::Encoder;
use gopher_influence::{InfluenceBackend, ModelFamily};
use gopher_models::{Forest, ForestConfig};

fn bench_forest_explain(c: &mut Criterion) {
    let p = prepare(gopher_bench::workloads::DatasetKind::German, 2_000, 42);
    let make = |cols: usize| Forest::new(cols, ForestConfig::default());

    let mut group = c.benchmark_group("forest_explain");
    group.sample_size(10);

    group.bench_function("german2k/cold_explain", |b| {
        b.iter(|| {
            let session = SessionBuilder::new().fit(make, &p.train_raw, &p.test_raw);
            session.explain(&ExplainRequest::default().with_k(3).with_ground_truth(false))
        });
    });

    // Estimator vs oracle on one fixed subset (5% of the training rows —
    // pattern-sized). Built outside the timed loops.
    let encoder = Encoder::fit(&p.train_raw);
    let train = encoder.transform(&p.train_raw);
    let mut forest = make(train.n_cols());
    ModelFamily::fit(&mut forest, &train);
    let mut rng = gopher_prng::Rng::new(7);
    let rows = random_subset(train.n_rows(), 0.05, &mut rng);

    group.bench_function("german2k/unlearning_influence", |b| {
        b.iter(|| forest.unlearn(&train, &rows));
    });

    let backend = <Forest as ModelFamily>::Backend::build(
        forest.clone(),
        &train,
        gopher_influence::InfluenceConfig::default(),
    );
    group.bench_function("german2k/retrain_ground_truth", |b| {
        b.iter(|| backend.ground_truth_model(&train, &rows));
    });

    group.finish();
}

criterion_group!(benches, bench_forest_explain);
criterion_main!(benches);
