//! Support-threshold sweep benchmark: the τ-monotone structure cache.
//!
//! The support threshold τ is the single most-swept lattice knob (`repro
//! --experiment table7`, any analyst tuning min-support). Support counts are
//! monotone, so an artifact built at a loose τ contains everything a tighter
//! τ' needs — the session's range-capable structure cache serves τ' by
//! *re-filtering*, never re-intersecting. Three arms over German at 10k
//! rows, all driving `ExplainSession` (statistical parity, first-order
//! estimator, depth 3, ground truth off):
//!
//! * **`cold_per_tau`** — every retention knob at zero (structure, scored
//!   sweep, *and* coverage caches), so each τ' ∈ {0.05, 0.1, 0.2} pays its
//!   full structural pass every time: the pre-range-cache behavior.
//! * **`range_served_per_tau`** — scored-sweep retention off (each query
//!   re-scores, so the measured path is real sweep work, not a tier-2
//!   memo), structure + coverage caches on, primed with one τ = 0.02 sweep:
//!   each τ' is range-served, materializing zero intersections.
//! * **`warm_full_caches`** — all caches on, all four τ values primed: the
//!   analyst's repeat loop, answered from the scored tier (near-free; this
//!   is the arm the ≥5× acceptance criterion compares against `cold_per_tau`).
//!
//! The cold−range gap isolates what re-filtering saves (the structural
//! pass); the cold−warm gap is the whole τ-sweep workload going near-free
//! after one pass, which is the feature's end-to-end claim.

use criterion::{criterion_group, criterion_main, Criterion};
use gopher_bench::workloads::{prepare, train_lr, DatasetKind};
use gopher_core::{ExplainRequest, ExplainSession, SessionBuilder};
use gopher_influence::Estimator;
use gopher_models::LogisticRegression;

/// The τ ladder: one loose prime plus the three tighter sweeps the timed
/// arms answer.
const TAU_PRIME: f64 = 0.02;
const TAUS: [f64; 3] = [0.05, 0.1, 0.2];

fn request(tau: f64) -> ExplainRequest {
    ExplainRequest::default()
        .with_support_threshold(tau)
        .with_max_predicates(3)
        .with_estimator(Estimator::FirstOrder)
        .with_ground_truth(false)
}

fn explain_taus(session: &ExplainSession<LogisticRegression>, taus: &[f64]) {
    for &tau in taus {
        let _ = session.explain(&request(tau));
    }
}

fn bench_support_sweep(c: &mut Criterion) {
    let p = prepare(DatasetKind::German, 10_000, 42);
    let model = train_lr(&p);

    let mut group = c.benchmark_group("support_sweep_german_10k");
    group.sample_size(10);

    // Arm 1: nothing retained — every τ rebuilds its structural pass.
    let cold = SessionBuilder::new()
        .structure_cache_cap(0)
        .sweep_cache_cap(0)
        .coverage_cache_cap(0)
        .build(model.clone(), &p.train_raw, &p.test_raw);
    group.bench_function("cold_per_tau", |b| b.iter(|| explain_taus(&cold, &TAUS)));

    // Arm 2: structure cache on, scored retention off; primed at the loose
    // τ, so every timed sweep is range-served and intersects nothing.
    let range =
        SessionBuilder::new()
            .sweep_cache_cap(0)
            .build(model.clone(), &p.train_raw, &p.test_raw);
    explain_taus(&range, &[TAU_PRIME]);
    group.bench_function("range_served_per_tau", |b| {
        b.iter(|| explain_taus(&range, &TAUS))
    });
    let stats = range.stats();
    assert!(
        stats.structure_range_hits >= 1,
        "the range arm must exercise the τ-monotone path: {stats:?}"
    );

    // Arm 3: everything on — the repeat τ-sweep loop hits the scored tier.
    let warm = SessionBuilder::new().build(model, &p.train_raw, &p.test_raw);
    explain_taus(&warm, &[TAU_PRIME]);
    explain_taus(&warm, &TAUS);
    group.bench_function("warm_full_caches", |b| {
        b.iter(|| explain_taus(&warm, &TAUS))
    });
    group.finish();
}

criterion_group!(benches, bench_support_sweep);
criterion_main!(benches);
