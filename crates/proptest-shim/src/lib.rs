//! Offline drop-in replacement for the subset of
//! [proptest](https://crates.io/crates/proptest) used by this workspace.
//!
//! The build container has no network access to crates.io, so this crate
//! re-implements just enough of proptest's surface for
//! `tests/properties.rs` to compile and run unmodified:
//!
//! * the [`proptest!`] macro (multiple `#[test] fn name(arg in strategy)`
//!   items per block);
//! * [`Strategy`] implementations for integer and float [`Range`]s and for
//!   tuples of strategies;
//! * [`collection::vec`] and [`collection::btree_set`] with either a fixed
//!   size or a size range;
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Semantics differ from real proptest in two deliberate ways: inputs are
//! drawn from a seeded [`gopher_prng::Rng`] (deterministic per test name, so
//! failures reproduce), and there is **no shrinking** — a failing case is
//! reported verbatim. Each test body runs [`CASES`] times.

#![forbid(unsafe_code)]

use std::ops::Range;

pub use gopher_prng::Rng as TestRng;

/// Number of random cases each `proptest!` test executes.
pub const CASES: usize = 64;

/// Error type carried by `prop_assert*` failures (a rendered message).
pub type TestCaseError = String;

/// Creates the deterministic RNG for one named property test.
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::new(h)
}

/// A source of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let width = (self.end - self.start) as u64;
                assert!(width > 0, "empty range strategy");
                self.start + rng.below(width) as $t
            }
        }
    )*};
}

int_range_strategy!(u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.uniform_in(self.start, self.end)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

/// Collection sizes: either an exact length or a half-open range.
pub trait IntoSizeRange {
    /// Draws a concrete length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl IntoSizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.end > self.start, "empty size range");
        rng.range(self.start, self.end)
    }
}

/// Strategies for standard collections ([`collection::vec()`] and
/// [`collection::btree_set()`]).
pub mod collection {
    use super::{IntoSizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of `len` values drawn from `element`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// Strategy produced by [`btree_set`].
    pub struct BTreeSetStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S, L> Strategy for BTreeSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: IntoSizeRange,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Duplicates collapse, so the set size is ≤ the sampled length —
            // matching proptest, whose btree_set also treats it as a maximum.
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` of at most `len` values drawn from `element`.
    pub fn btree_set<S, L>(element: S, len: L) -> BTreeSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: IntoSizeRange,
    {
        BTreeSetStrategy { element, len }
    }
}

/// Per-block configuration, set via `#![proptest_config(..)]` inside
/// [`proptest!`]. Only `cases` is honored by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run for each test in the block.
    pub cases: usize,
    /// Accepted for source compatibility with real proptest; ignored by this
    /// shim (there is no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: CASES,
            max_shrink_iters: 0,
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Declares property tests. Each `fn name(arg in strategy, ...)` item becomes
/// a `#[test]` running [`CASES`] random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $crate::proptest! {
            @cases ($config).cases;
            $( $(#[$meta])* fn $name($($arg in $strat),+) $body )*
        }
    };
    ($( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $crate::proptest! {
            @cases $crate::CASES;
            $( $(#[$meta])* fn $name($($arg in $strat),+) $body )*
        }
    };
    (@cases $cases:expr;
     $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __proptest_cases: usize = $cases;
                let mut __proptest_rng = $crate::rng_for(stringify!($name));
                for __proptest_case in 0..__proptest_cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    let __proptest_result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    if let Err(msg) = __proptest_result {
                        panic!(
                            "property `{}` failed on case {}/{}: {}",
                            stringify!($name),
                            __proptest_case + 1,
                            __proptest_cases,
                            msg
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

// The shim must at least believe its own strategies; a couple of smoke tests.
#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng_for("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = rng_for("collections_respect_size");
        for _ in 0..200 {
            let v = Strategy::generate(&collection::vec(0u32..5, 2..9), &mut rng);
            assert!((2..9).contains(&v.len()));
            let s: BTreeSet<u32> =
                Strategy::generate(&collection::btree_set(0u32..100, 0..10), &mut rng);
            assert!(s.len() < 10);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = rng_for("x");
        let mut b = rng_for("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
