//! Library half of the `gopher` CLI.
//!
//! The binary (`src/main.rs`) does the argument parsing and orchestration;
//! this crate exposes the pieces worth reusing and testing in isolation:
//!
//! * [`json`] — a dependency-free JSON value tree with a writer and a strict
//!   parser (used both to emit `--json` reports and, from the integration
//!   tests, to validate that those reports round-trip).

pub mod json;
