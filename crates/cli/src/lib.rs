//! Library half of the `gopher` CLI.
//!
//! The binary (`src/main.rs`) does the argument parsing and orchestration;
//! this crate exposes the pieces worth reusing and testing in isolation:
//!
//! * [`json`] — the workspace's dependency-free JSON value tree with a
//!   writer and a strict, hardened parser. Since PR 7 the codec lives in its
//!   own crate, [`gopher_json`], so the serving daemon can speak the same
//!   wire format without depending on the CLI; this alias keeps every
//!   existing `gopher_cli::json::…` caller working unchanged.

#![forbid(unsafe_code)]

pub use gopher_json as json;
