//! Minimal JSON support for the CLI: a [`Json`] value tree, a writer
//! (`Display`), and a strict recursive-descent [`parse`]r.
//!
//! The container has no crates.io access, so `serde_json` is off the table;
//! the CLI's report format is small and flat enough that ~200 lines of
//! hand-rolled JSON are the simpler dependency anyway. The parser exists so
//! integration tests can round-trip the CLI's own output instead of grepping
//! for substrings.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects use a [`BTreeMap`] so output is deterministically
/// key-ordered (stable across runs, friendly to golden tests).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Non-finite floats must be mapped to [`Json::Null`]
    /// before construction (use [`Json::num`]).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with key-ordered members.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Wraps a float, mapping NaN/±∞ (not representable in JSON) to `null`.
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// Wraps a string-like value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => {
                if *v == v.trunc() && v.abs() < 1e15 {
                    write!(f, "{}", *v as i64)
                } else {
                    write!(f, "{v}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                members.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: must be followed by `\uDC00..DFFF`;
                            // combine the pair into one scalar (RFC 8259 §7).
                            if b.get(*pos + 1..*pos + 3) != Some(br"\u".as_slice()) {
                                return Err("high surrogate without a low surrogate".into());
                            }
                            let low = parse_hex4(b, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(format!("invalid low surrogate {low:04x}"));
                            }
                            *pos += 6;
                            let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            out.push(char::from_u32(scalar).expect("valid by construction"));
                        } else {
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("lone low surrogate {code:04x}"))?,
                            );
                        }
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (b is valid UTF-8 by construction).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u32, String> {
    let hex = b.get(at..at + 4).ok_or("truncated \\u escape")?;
    u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
        .map_err(|e| e.to_string())
}

/// Parses a number with the exact RFC 8259 grammar
/// (`-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`) — Rust's `f64`
/// `FromStr` is laxer (`+1`, `1.`, `.5`) and would mask malformed input.
fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    let err = |at: usize| format!("invalid number at byte {at}");
    let mut p = *pos;
    if b.get(p) == Some(&b'-') {
        p += 1;
    }
    match b.get(p) {
        Some(b'0') => p += 1,
        Some(b'1'..=b'9') => {
            while matches!(b.get(p), Some(b'0'..=b'9')) {
                p += 1;
            }
        }
        _ => return Err(err(start)),
    }
    if b.get(p) == Some(&b'.') {
        p += 1;
        if !matches!(b.get(p), Some(b'0'..=b'9')) {
            return Err(err(start));
        }
        while matches!(b.get(p), Some(b'0'..=b'9')) {
            p += 1;
        }
    }
    if matches!(b.get(p), Some(b'e' | b'E')) {
        p += 1;
        if matches!(b.get(p), Some(b'+' | b'-')) {
            p += 1;
        }
        if !matches!(b.get(p), Some(b'0'..=b'9')) {
            return Err(err(start));
        }
        while matches!(b.get(p), Some(b'0'..=b'9')) {
            p += 1;
        }
    }
    *pos = p;
    let text = std::str::from_utf8(&b[start..p]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let v = Json::obj([
            (
                "a",
                Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Null]),
            ),
            ("b", Json::str("quote \" backslash \\ newline \n")),
            ("c", Json::Bool(true)),
            ("d", Json::obj([("nested", Json::num(f64::NAN))])),
        ]);
        let text = v.to_string();
        let back = parse(&text).expect("own output must parse");
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("123 xyz").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn enforces_rfc8259_number_grammar() {
        for bad in ["+1", ".5", "1.", "01", "1e", "1e+", "-", "--1", "1.e3"] {
            assert!(parse(bad).is_err(), "`{bad}` must be rejected");
        }
        for (good, want) in [
            ("-0.5", -0.5),
            ("0", 0.0),
            ("1e-3", 1e-3),
            ("12.25E2", 1225.0),
        ] {
            assert_eq!(parse(good).unwrap(), Json::Num(want), "`{good}`");
        }
    }

    #[test]
    fn decodes_surrogate_pairs_and_rejects_lone_surrogates() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".to_string())
        );
        assert!(parse("\"\\ud83d\"").is_err(), "lone high surrogate");
        assert!(parse("\"\\ude00\"").is_err(), "lone low surrogate");
        assert!(parse("\"\\ud83d\\u0041\"").is_err(), "high + non-low");
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(0.25).to_string(), "0.25");
    }
}
