//! `gopher` — fairness debugging from the shell.
//!
//! Wraps the workspace's explanation pipeline in four subcommands:
//!
//! * `gopher explain` — train a model on a synthetic dataset (or a CSV via
//!   `--csv`), then run the paper's top-k pattern search and print (or emit
//!   as JSON) the explanations;
//! * `gopher audit` — train a model and print every fairness metric plus
//!   per-group confusion counts;
//! * `gopher report` — `audit` + `explain` combined into one JSON document
//!   (implies `--json`);
//! * `gopher query` — build one explain session and answer a JSON array of
//!   explanation requests against it (implies `--json`): the serving-style
//!   entry point, where model training and influence precomputation are paid
//!   once for the whole batch.
//!
//! Run `gopher --help` for the full flag reference.

use gopher_cli::json::{self, Json};
use gopher_core::{ExplainRequest, ExplainResponse, ExplainSession, SessionBuilder};
use gopher_data::csv::{read_csv_infer, InferredPrivileged};
use gopher_data::generators::{adult, german, sqf};
use gopher_data::{Dataset, Encoder};
use gopher_fairness::{
    bias, disparate_impact_ratio, equalized_odds_gap, group_confusion, smooth_bias,
    ConfusionCounts, FairnessMetric,
};
use gopher_influence::{BiasEval, Estimator};
use gopher_models::train::{accuracy, fit_default};
use gopher_models::{LinearSvm, LogisticRegression, Mlp, Model};
use gopher_prng::Rng;
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::process::ExitCode;

const HELP: &str = "\
gopher — interpretable data-based explanations for fairness debugging

USAGE:
    gopher <explain|audit|report|query> [OPTIONS]

SUBCOMMANDS:
    explain    top-k training-data patterns responsible for model bias
    audit      fairness metrics and per-group confusion for a trained model
    report     audit + explain as one JSON document (implies --json)
    query      answer a JSON array of explain requests against one shared
               session (implies --json); see --requests

COMMON OPTIONS:
    --data <NAME>           dataset generator: german | adult | sqf [german]
    --csv <PATH>            explain a CSV file instead of a generator;
                            requires --label and --protected, schema inferred
                            (numeric column iff every field parses as a number)
    --label <COLUMN>        CSV column holding the 0/1 favorable-outcome label
    --protected <SPEC>      privileged-group rule for the CSV: `col=level`
                            (categorical) or `col>=cutoff` (numeric),
                            e.g. gender=F or age>=45
    --rows <N>              rows to generate [1000] (ignored with --csv)
    --model <NAME>          model family: lr | svm | mlp [lr]
    --metric <NAME>         statistical-parity | equal-opportunity |
                            predictive-parity | average-odds [statistical-parity]
    --seed <N>              RNG seed for generation, split and training [42]
    --test-fraction <F>     held-out fraction for the audit set [0.3]
    --l2 <LAMBDA>           L2 regularization strength [1e-3]
    --threads <N>           worker threads for explain/report/query batches
                            (scorer fan-out, sweep groups, ground-truth
                            retrains); 0 = auto: $GOPHER_THREADS if set, else
                            all available cores [0]. Results are identical
                            at every thread count.
    --prefilter-sample <N>  row-sample size of the admissible sampled-support
                            prefilter; 0 = off [0]. Skips provably
                            unsupported merges in the structural pass before
                            their exact intersection — results are identical
                            on or off; worth turning on from ~100k rows
                            (sample about a quarter of the rows).
    --json                  emit a JSON report on stdout instead of text

EXPLAIN/QUERY OPTIONS:
    --k <N>                 number of explanations [3]
    --support <TAU>         minimum pattern support threshold [0.05]
    --max-predicates <D>    maximum predicates per pattern [3]
    --estimator <NAME>      first-order | second-order | newton |
                            one-step-gd [second-order]
    --learning-rate <ETA>   step size for one-step-gd [1.0]
    --ground-truth          retrain without each top pattern to verify it
    --requests <PATH>       (query) JSON array of request objects; `-` reads
                            stdin. Each object may set: metric, k, estimator,
                            learning_rate, support, max_predicates,
                            ground_truth, bias_eval (chain-rule |
                            re-eval-smooth | re-eval-hard), containment.
                            Omitted fields fall back to the flags above.
    --stats                 (query) wrap the output as {\"responses\": [...],
                            \"session_stats\": {...}} with the session's cache
                            counters: scored-sweep, structure (the
                            metric-independent tier), and coverage
                            hit/miss/eviction rates

EXAMPLES:
    gopher explain --data german --k 3 --json
    gopher explain --csv loans.csv --label approved --protected gender=F
    gopher audit --data adult --model mlp --metric equal-opportunity
    gopher report --data sqf --k 5 --support 0.1
    echo '[{\"metric\":\"statistical-parity\"},{\"metric\":\"equal-opportunity\"}]' \\
        | gopher query --requests - --data german
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(UsageError::Help) => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        Err(UsageError::Bad(msg)) => {
            eprintln!("gopher: {msg}");
            eprintln!("Run `gopher --help` for usage.");
            ExitCode::from(2)
        }
    }
}

enum UsageError {
    Help,
    Bad(String),
}

fn bad(msg: impl Into<String>) -> UsageError {
    UsageError::Bad(msg.into())
}

/// Everything the subcommands share, parsed from the flag list.
struct Opts {
    data: String,
    csv: Option<String>,
    label: Option<String>,
    protected: Option<String>,
    requests: Option<String>,
    rows: usize,
    model: String,
    metric: FairnessMetric,
    seed: u64,
    test_fraction: f64,
    l2: f64,
    threads: usize,
    prefilter_sample: usize,
    json: bool,
    stats: bool,
    k: usize,
    support: f64,
    max_predicates: usize,
    estimator: Estimator,
    learning_rate: f64,
    ground_truth: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            data: "german".into(),
            csv: None,
            label: None,
            protected: None,
            requests: None,
            rows: 1000,
            model: "lr".into(),
            metric: FairnessMetric::StatisticalParity,
            seed: 42,
            test_fraction: 0.3,
            l2: 1e-3,
            threads: 0,
            prefilter_sample: 0,
            json: false,
            stats: false,
            k: 3,
            support: 0.05,
            max_predicates: 3,
            estimator: Estimator::SecondOrder,
            learning_rate: 1.0,
            ground_truth: false,
        }
    }
}

fn parse_metric(name: &str) -> Result<FairnessMetric, UsageError> {
    match name {
        "statistical-parity" | "spd" => Ok(FairnessMetric::StatisticalParity),
        "equal-opportunity" | "eo" => Ok(FairnessMetric::EqualOpportunity),
        "predictive-parity" | "pp" => Ok(FairnessMetric::PredictiveParity),
        "average-odds" | "ao" => Ok(FairnessMetric::AverageOdds),
        other => Err(bad(format!("unknown metric `{other}`"))),
    }
}

fn parse_estimator(name: &str, learning_rate: f64) -> Result<Estimator, UsageError> {
    match name {
        "first-order" | "fo" => Ok(Estimator::FirstOrder),
        "second-order" | "so" => Ok(Estimator::SecondOrder),
        "newton" => Ok(Estimator::NewtonStep),
        "one-step-gd" | "gd" => Ok(Estimator::OneStepGd { learning_rate }),
        other => Err(bad(format!("unknown estimator `{other}`"))),
    }
}

fn parse_bias_eval(name: &str) -> Result<BiasEval, UsageError> {
    match name {
        "chain-rule" => Ok(BiasEval::ChainRule),
        "re-eval-smooth" => Ok(BiasEval::ReEvalSmooth),
        "re-eval-hard" => Ok(BiasEval::ReEvalHard),
        other => Err(bad(format!("unknown bias_eval `{other}`"))),
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, UsageError> {
    let mut opts = Opts::default();
    let mut estimator_name = String::from("second-order");
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, UsageError> {
            it.next()
                .ok_or_else(|| bad(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--help" | "-h" => return Err(UsageError::Help),
            "--json" => opts.json = true,
            "--stats" => opts.stats = true,
            "--ground-truth" => opts.ground_truth = true,
            "--data" => opts.data = value("--data")?.clone(),
            "--csv" => opts.csv = Some(value("--csv")?.clone()),
            "--label" => opts.label = Some(value("--label")?.clone()),
            "--protected" => opts.protected = Some(value("--protected")?.clone()),
            "--requests" => opts.requests = Some(value("--requests")?.clone()),
            "--model" => opts.model = value("--model")?.clone(),
            "--rows" => opts.rows = parse_num(value("--rows")?, "--rows")?,
            "--seed" => opts.seed = parse_num(value("--seed")?, "--seed")?,
            "--k" => opts.k = parse_num(value("--k")?, "--k")?,
            "--max-predicates" => {
                opts.max_predicates = parse_num(value("--max-predicates")?, "--max-predicates")?
            }
            "--support" => opts.support = parse_num(value("--support")?, "--support")?,
            "--test-fraction" => {
                opts.test_fraction = parse_num(value("--test-fraction")?, "--test-fraction")?
            }
            "--l2" => opts.l2 = parse_num(value("--l2")?, "--l2")?,
            "--threads" => opts.threads = parse_num(value("--threads")?, "--threads")?,
            "--prefilter-sample" => {
                opts.prefilter_sample =
                    parse_num(value("--prefilter-sample")?, "--prefilter-sample")?
            }
            "--learning-rate" => {
                opts.learning_rate = parse_num(value("--learning-rate")?, "--learning-rate")?
            }
            "--metric" => opts.metric = parse_metric(value("--metric")?)?,
            "--estimator" => estimator_name = value("--estimator")?.clone(),
            other => return Err(bad(format!("unknown flag `{other}`"))),
        }
    }
    opts.estimator = parse_estimator(&estimator_name, opts.learning_rate)?;
    if !(0.0..1.0).contains(&opts.test_fraction) || opts.test_fraction == 0.0 {
        return Err(bad("--test-fraction must be in (0, 1)"));
    }
    if opts.csv.is_none() && opts.rows < 20 {
        return Err(bad("--rows must be at least 20"));
    }
    if !(0.0..1.0).contains(&opts.support) {
        return Err(bad("--support must be in [0, 1)"));
    }
    if opts.max_predicates == 0 {
        return Err(bad("--max-predicates must be positive"));
    }
    // Reports record the seed as a JSON number; above 2^53 that round-trips
    // through f64 lossily and the printed seed would not reproduce the run.
    if opts.seed > (1 << 53) {
        return Err(bad("--seed must be at most 2^53 (9007199254740992)"));
    }
    if opts.k == 0 {
        return Err(bad("--k must be positive"));
    }
    Ok(opts)
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, UsageError> {
    text.parse()
        .map_err(|_| bad(format!("invalid value `{text}` for {flag}")))
}

fn run(args: &[String]) -> Result<(), UsageError> {
    let Some(command) = args.first() else {
        return Err(UsageError::Help);
    };
    let mut opts = parse_opts(&args[1..])?;
    match command.as_str() {
        "--help" | "-h" | "help" => Err(UsageError::Help),
        "explain" => dispatch(&mut opts, Action::Explain),
        "audit" => dispatch(&mut opts, Action::Audit),
        "report" => dispatch(&mut opts, Action::Report),
        "query" => dispatch(&mut opts, Action::Query),
        other => Err(bad(format!("unknown subcommand `{other}`"))),
    }
}

enum Action {
    Explain,
    Audit,
    Report,
    Query,
}

/// Loads the dataset: a synthetic generator, or a schema-inferred CSV when
/// `--csv` is set.
fn load_data(opts: &mut Opts) -> Result<Dataset, UsageError> {
    let Some(path) = opts.csv.clone() else {
        let generate = match opts.data.as_str() {
            "german" => german,
            "adult" => adult,
            "sqf" => sqf,
            other => return Err(bad(format!("unknown dataset `{other}`"))),
        };
        return Ok(generate(opts.rows, opts.seed));
    };
    let label = opts
        .label
        .as_deref()
        .ok_or_else(|| bad("--csv requires --label <COLUMN>"))?;
    let spec = opts
        .protected
        .as_deref()
        .ok_or_else(|| bad("--csv requires --protected <SPEC>"))?;
    let (column, rule) = parse_protected_spec(spec)?;
    let file =
        std::fs::File::open(&path).map_err(|e| bad(format!("cannot open --csv {path:?}: {e}")))?;
    let data = read_csv_infer(std::io::BufReader::new(file), label, column, &rule)
        .map_err(|e| bad(format!("--csv {path}: {e}")))?;
    // Reports carry the data source; for CSV runs that's the file path.
    opts.data = path;
    opts.rows = data.n_rows();
    Ok(data)
}

/// Parses `col=level` / `col>=cutoff` privileged-group rules.
fn parse_protected_spec(spec: &str) -> Result<(&str, InferredPrivileged), UsageError> {
    if let Some((column, cutoff)) = spec.split_once(">=") {
        let cutoff: f64 = cutoff
            .parse()
            .map_err(|_| bad(format!("invalid cutoff in --protected `{spec}`")))?;
        return Ok((column, InferredPrivileged::AtLeast(cutoff)));
    }
    if let Some((column, level)) = spec.split_once('=') {
        if column.is_empty() || level.is_empty() {
            return Err(bad(format!("invalid --protected `{spec}`")));
        }
        return Ok((column, InferredPrivileged::Equals(level.to_string())));
    }
    Err(bad(format!(
        "--protected must be `col=level` or `col>=cutoff`, got `{spec}`"
    )))
}

/// Monomorphizes the chosen model family into [`exec`].
fn dispatch(opts: &mut Opts, action: Action) -> Result<(), UsageError> {
    let data = load_data(opts)?;
    let mut rng = Rng::new(opts.seed);
    let (train, test) = data.train_test_split(opts.test_fraction, &mut rng);
    if test.n_rows() == 0 || train.n_rows() == 0 {
        return Err(bad(format!(
            "{} rows with --test-fraction {} leaves an empty split \
             ({} train / {} test rows); increase one of them",
            data.n_rows(),
            opts.test_fraction,
            train.n_rows(),
            test.n_rows()
        )));
    }
    let l2 = opts.l2;
    match opts.model.as_str() {
        "lr" | "logistic" => exec(opts, action, &train, &test, |n| {
            LogisticRegression::new(n, l2)
        }),
        "svm" => exec(opts, action, &train, &test, |n| LinearSvm::new(n, l2)),
        "mlp" => {
            let mut model_rng = rng.fork();
            exec(opts, action, &train, &test, move |n| {
                Mlp::new(n, 10, l2, &mut model_rng)
            })
        }
        other => Err(bad(format!("unknown model `{other}`"))),
    }
}

fn exec<M: Model>(
    opts: &Opts,
    action: Action,
    train: &Dataset,
    test: &Dataset,
    make_model: impl FnOnce(usize) -> M,
) -> Result<(), UsageError> {
    let output = match action {
        Action::Audit => {
            let report = audit_json(opts, train, test, make_model);
            if opts.json {
                format!("{report}\n")
            } else {
                render_audit_text(&report)
            }
        }
        Action::Explain => {
            let session = fit_session(opts, train, test, make_model);
            let response = session.explain(&base_request(opts));
            let report = explain_json(opts, &response);
            if opts.json {
                format!("{report}\n")
            } else {
                render_explain_text(&report)
            }
        }
        Action::Report => {
            let session = fit_session(opts, train, test, make_model);
            let audit = audit_model(opts, session.model(), session.encoder(), test);
            let response = session.explain(&base_request(opts));
            let explain = explain_json(opts, &response);
            format!("{}\n", Json::obj([("audit", audit), ("explain", explain)]))
        }
        Action::Query => {
            let requests = read_requests(opts)?;
            let session = fit_session(opts, train, test, make_model);
            let responses = session.explain_batch(&requests);
            let array: Vec<Json> = responses.iter().map(|r| explain_json(opts, r)).collect();
            if opts.stats {
                format!(
                    "{}\n",
                    Json::obj([
                        ("responses", Json::Arr(array)),
                        ("session_stats", session_stats_json(&session.stats())),
                    ])
                )
            } else {
                format!("{}\n", Json::Arr(array))
            }
        }
    };
    emit(&output);
    Ok(())
}

/// Writes to stdout, swallowing `BrokenPipe` so `gopher ... | head` exits
/// cleanly instead of panicking.
fn emit(text: &str) {
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = stdout
        .write_all(text.as_bytes())
        .and_then(|()| stdout.flush())
    {
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            panic!("failed writing to stdout: {e}");
        }
    }
}

fn fit_session<M: Model>(
    opts: &Opts,
    train: &Dataset,
    test: &Dataset,
    make_model: impl FnOnce(usize) -> M,
) -> ExplainSession<M> {
    SessionBuilder::new()
        .threads(opts.threads)
        .prefilter_sample(opts.prefilter_sample)
        .fit(make_model, train, test)
}

/// The request the CLI flags describe (also the fallback for every field a
/// `query` request object leaves out).
fn base_request(opts: &Opts) -> ExplainRequest {
    let mut request = ExplainRequest::default()
        .with_metric(opts.metric)
        .with_k(opts.k)
        .with_estimator(opts.estimator)
        .with_support_threshold(opts.support)
        .with_max_predicates(opts.max_predicates)
        .with_ground_truth(opts.ground_truth);
    request.bias_eval = BiasEval::ChainRule;
    request
}

/// The `--stats` block: every cache-layer counter a serving deployment
/// watches, straight from [`ExplainSession::stats`].
fn session_stats_json(stats: &gopher_core::SessionStats) -> Json {
    Json::obj([
        ("threads", Json::num(stats.threads as f64)),
        ("sweep_entries", Json::num(stats.sweep_entries as f64)),
        ("sweep_cache_cap", Json::num(stats.sweep_cache_cap as f64)),
        ("sweep_hits", Json::num(stats.sweep_hits as f64)),
        ("sweep_misses", Json::num(stats.sweep_misses as f64)),
        ("sweep_evictions", Json::num(stats.sweep_evictions as f64)),
        (
            "structure_entries",
            Json::num(stats.structure_entries as f64),
        ),
        (
            "structure_cache_cap",
            Json::num(stats.structure_cache_cap as f64),
        ),
        ("structure_hits", Json::num(stats.structure_hits as f64)),
        (
            "structure_range_hits",
            Json::num(stats.structure_range_hits as f64),
        ),
        ("structure_misses", Json::num(stats.structure_misses as f64)),
        (
            "structure_evictions",
            Json::num(stats.structure_evictions as f64),
        ),
        ("cached_coverages", Json::num(stats.cached_coverages as f64)),
        ("coverage_hits", Json::num(stats.coverage_hits as f64)),
        ("coverage_misses", Json::num(stats.coverage_misses as f64)),
        (
            "coverage_inserts_refused",
            Json::num(stats.coverage_inserts_refused as f64),
        ),
        (
            "prefilter_sample_rows",
            Json::num(stats.prefilter_sample_rows as f64),
        ),
        ("prefilter_probes", Json::num(stats.prefilter_probes as f64)),
        ("prefilter_skips", Json::num(stats.prefilter_skips as f64)),
    ])
}

// ----------------------------------------------------------------- query

/// Reads and parses the `--requests` JSON array (`-` = stdin).
fn read_requests(opts: &Opts) -> Result<Vec<ExplainRequest>, UsageError> {
    let path = opts
        .requests
        .as_deref()
        .ok_or_else(|| bad("query requires --requests <PATH> (`-` for stdin)"))?;
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| bad(format!("cannot read requests from stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(path)
            .map_err(|e| bad(format!("cannot read --requests {path:?}: {e}")))?
    };
    let parsed =
        json::parse(text.trim()).map_err(|e| bad(format!("--requests is not valid JSON: {e}")))?;
    let Some(items) = parsed.as_arr() else {
        return Err(bad("--requests must be a JSON array of request objects"));
    };
    if items.is_empty() {
        return Err(bad("--requests array is empty"));
    }
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            parse_request(item, opts).map_err(|e| match e {
                UsageError::Bad(msg) => bad(format!("request #{}: {msg}", i + 1)),
                help => help,
            })
        })
        .collect()
}

/// The request-object fields `gopher query` understands.
const REQUEST_FIELDS: [&str; 9] = [
    "metric",
    "k",
    "estimator",
    "learning_rate",
    "support",
    "max_predicates",
    "containment",
    "ground_truth",
    "bias_eval",
];

/// Builds one [`ExplainRequest`] from a JSON object, falling back to the
/// CLI flags for omitted fields. Unknown keys and mistyped values are hard
/// errors — a serving endpoint must not silently answer with defaults when
/// the caller's parameter was dropped.
fn parse_request(item: &Json, opts: &Opts) -> Result<ExplainRequest, UsageError> {
    let Json::Obj(fields) = item else {
        return Err(bad("must be a JSON object"));
    };
    for key in fields.keys() {
        if !REQUEST_FIELDS.contains(&key.as_str()) {
            return Err(bad(format!(
                "unknown field {key:?} (expected one of: {})",
                REQUEST_FIELDS.join(", ")
            )));
        }
    }
    let mut request = base_request(opts);
    let get_f = |key: &str| -> Result<Option<f64>, UsageError> {
        match item.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| bad(format!("field {key:?} must be a number"))),
        }
    };
    let get_s = |key: &str| -> Result<Option<&str>, UsageError> {
        match item.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| bad(format!("field {key:?} must be a string"))),
        }
    };
    if let Some(metric) = get_s("metric")? {
        request.metric = parse_metric(metric)?;
    }
    if let Some(k) = get_f("k")? {
        if k < 1.0 || k.fract() != 0.0 {
            return Err(bad(format!("k must be a positive integer, got {k}")));
        }
        request.k = k as usize;
    }
    let learning_rate = get_f("learning_rate")?.unwrap_or(opts.learning_rate);
    if let Some(estimator) = get_s("estimator")? {
        request.estimator = parse_estimator(estimator, learning_rate)?;
    } else if let Estimator::OneStepGd { .. } = request.estimator {
        // `learning_rate` alone must still apply when the flags already
        // selected the one-step-GD estimator.
        request.estimator = Estimator::OneStepGd { learning_rate };
    }
    if let Some(support) = get_f("support")? {
        if !(0.0..1.0).contains(&support) {
            return Err(bad(format!("support must be in [0, 1), got {support}")));
        }
        request.lattice.support_threshold = support;
    }
    if let Some(depth) = get_f("max_predicates")? {
        if depth < 1.0 || depth.fract() != 0.0 {
            return Err(bad(format!(
                "max_predicates must be a positive integer, got {depth}"
            )));
        }
        request.lattice.max_predicates = depth as usize;
    }
    if let Some(containment) = get_f("containment")? {
        if !(0.0..=1.0).contains(&containment) {
            return Err(bad(format!(
                "containment must be in [0, 1], got {containment}"
            )));
        }
        request.containment_threshold = containment;
    }
    match item.get("ground_truth") {
        None => {}
        Some(Json::Bool(gt)) => request.ground_truth_for_topk = *gt,
        Some(_) => return Err(bad("field \"ground_truth\" must be a boolean")),
    }
    if let Some(eval) = get_s("bias_eval")? {
        request.bias_eval = parse_bias_eval(eval)?;
    }
    Ok(request)
}

// ---------------------------------------------------------------- explain

fn explain_json(opts: &Opts, response: &ExplainResponse) -> Json {
    let report = &response.report;
    let request = &response.request;
    let explanations: Vec<Json> = report
        .explanations
        .iter()
        .map(|e| {
            Json::obj([
                ("pattern", Json::str(&e.pattern_text)),
                ("support", Json::num(e.support)),
                ("est_responsibility", Json::num(e.est_responsibility)),
                ("interestingness", Json::num(e.candidate.interestingness)),
                (
                    "ground_truth_responsibility",
                    e.ground_truth_responsibility.map_or(Json::Null, Json::num),
                ),
                (
                    "ground_truth_new_bias",
                    e.ground_truth_new_bias.map_or(Json::Null, Json::num),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("command", Json::str("explain")),
        ("dataset", Json::str(&opts.data)),
        ("rows", Json::num(opts.rows as f64)),
        ("model", Json::str(&opts.model)),
        ("metric", Json::str(report.metric.name())),
        ("seed", Json::num(opts.seed as f64)),
        ("estimator", Json::str(estimator_name(request.estimator))),
        ("base_bias", Json::num(report.base_bias)),
        ("accuracy", Json::num(report.accuracy)),
        ("k", Json::num(request.k as f64)),
        (
            "support_threshold",
            Json::num(request.lattice.support_threshold),
        ),
        (
            "candidates_scored",
            Json::num(report.stats.total_scored as f64),
        ),
        (
            "search_ms",
            Json::num(report.search_time.as_secs_f64() * 1e3),
        ),
        (
            "query_ms",
            Json::num(response.query_time.as_secs_f64() * 1e3),
        ),
        ("explanations", Json::Arr(explanations)),
    ])
}

fn estimator_name(e: Estimator) -> &'static str {
    match e {
        Estimator::FirstOrder => "first-order",
        Estimator::SecondOrder => "second-order",
        Estimator::NewtonStep => "newton",
        Estimator::OneStepGd { .. } => "one-step-gd",
    }
}

fn render_explain_text(report: &Json) -> String {
    let mut out = String::new();
    let get_f = |k: &str| report.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
    let get_s = |k: &str| report.get(k).and_then(Json::as_str).unwrap_or("?");
    let _ = writeln!(
        out,
        "explain · {} ({} rows) · model {} · metric {}",
        get_s("dataset"),
        get_f("rows"),
        get_s("model"),
        get_s("metric"),
    );
    let _ = writeln!(
        out,
        "base bias {:+.4} · accuracy {:.1}% · {} candidates scored in {:.0} ms",
        get_f("base_bias"),
        100.0 * get_f("accuracy"),
        get_f("candidates_scored"),
        get_f("search_ms"),
    );
    let _ = writeln!(out);
    let empty = Vec::new();
    let explanations = report
        .get("explanations")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    if explanations.is_empty() {
        let _ = writeln!(
            out,
            "no patterns above the support threshold were responsible for the bias"
        );
        return out;
    }
    for (i, e) in explanations.iter().enumerate() {
        let pattern = e.get("pattern").and_then(Json::as_str).unwrap_or("?");
        let support = e.get("support").and_then(Json::as_f64).unwrap_or(f64::NAN);
        let resp = e
            .get("est_responsibility")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN);
        let _ = writeln!(out, "{}. {pattern}", i + 1);
        let _ = write!(
            out,
            "   support {:.1}% · est. responsibility {:+.4}",
            100.0 * support,
            resp
        );
        if let Some(gt) = e.get("ground_truth_responsibility").and_then(Json::as_f64) {
            let _ = write!(out, " · ground-truth Δbias {:+.1}%", 100.0 * gt);
        }
        let _ = writeln!(out);
    }
    out
}

// ------------------------------------------------------------------ audit

fn audit_json<M: Model>(
    opts: &Opts,
    train: &Dataset,
    test: &Dataset,
    make_model: impl FnOnce(usize) -> M,
) -> Json {
    let encoder = Encoder::fit(train);
    let encoded_train = encoder.transform(train);
    let mut model = make_model(encoded_train.n_cols());
    fit_default(&mut model, &encoded_train);
    audit_model(opts, &model, &encoder, test)
}

fn audit_model<M: Model>(opts: &Opts, model: &M, encoder: &Encoder, test: &Dataset) -> Json {
    let encoded_test = encoder.transform(test);
    let metrics: Vec<Json> = [
        FairnessMetric::StatisticalParity,
        FairnessMetric::EqualOpportunity,
        FairnessMetric::PredictiveParity,
        FairnessMetric::AverageOdds,
    ]
    .iter()
    .map(|&m| {
        Json::obj([
            ("metric", Json::str(m.name())),
            ("bias", Json::num(bias(m, model, &encoded_test))),
            (
                "smooth_bias",
                Json::num(smooth_bias(m, model, &encoded_test)),
            ),
        ])
    })
    .collect();
    let stats = group_confusion(model, &encoded_test);
    Json::obj([
        ("command", Json::str("audit")),
        ("dataset", Json::str(&opts.data)),
        ("rows", Json::num(opts.rows as f64)),
        ("model", Json::str(&opts.model)),
        ("seed", Json::num(opts.seed as f64)),
        ("test_rows", Json::num(encoded_test.n_rows() as f64)),
        ("accuracy", Json::num(accuracy(model, &encoded_test))),
        ("metrics", Json::Arr(metrics)),
        (
            "disparate_impact_ratio",
            Json::num(disparate_impact_ratio(model, &encoded_test)),
        ),
        (
            "equalized_odds_gap",
            Json::num(equalized_odds_gap(model, &encoded_test)),
        ),
        ("privileged", confusion_json(&stats.privileged)),
        ("protected", confusion_json(&stats.protected)),
    ])
}

fn confusion_json(c: &ConfusionCounts) -> Json {
    Json::obj([
        ("tp", Json::num(c.tp as f64)),
        ("fp", Json::num(c.fp as f64)),
        ("tn", Json::num(c.tn as f64)),
        ("fn", Json::num(c.fn_ as f64)),
        ("positive_rate", Json::num(c.positive_rate())),
        ("tpr", Json::num(c.tpr())),
        ("fpr", Json::num(c.fpr())),
    ])
}

fn render_audit_text(report: &Json) -> String {
    let mut out = String::new();
    let get_f = |k: &str| report.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
    let get_s = |k: &str| report.get(k).and_then(Json::as_str).unwrap_or("?");
    let _ = writeln!(
        out,
        "audit · {} ({} rows, {} held out) · model {}",
        get_s("dataset"),
        get_f("rows"),
        get_f("test_rows"),
        get_s("model"),
    );
    let _ = writeln!(out, "accuracy {:.1}%", 100.0 * get_f("accuracy"));
    let _ = writeln!(out);
    let empty = Vec::new();
    for m in report
        .get("metrics")
        .and_then(Json::as_arr)
        .unwrap_or(&empty)
    {
        let _ = writeln!(
            out,
            "{:<22} bias {:+.4}   (smooth {:+.4})",
            m.get("metric").and_then(Json::as_str).unwrap_or("?"),
            m.get("bias").and_then(Json::as_f64).unwrap_or(f64::NAN),
            m.get("smooth_bias")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN),
        );
    }
    let _ = writeln!(
        out,
        "{:<22} {:.4}",
        "disparate impact",
        get_f("disparate_impact_ratio")
    );
    let _ = writeln!(
        out,
        "{:<22} {:.4}",
        "equalized odds gap",
        get_f("equalized_odds_gap")
    );
    let _ = writeln!(out);
    for group in ["privileged", "protected"] {
        if let Some(c) = report.get(group) {
            let g = |k: &str| c.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
            let _ = writeln!(out, "{group:<11} tp {:>4} fp {:>4} tn {:>4} fn {:>4} · P(Ŷ=1) {:.3} · TPR {:.3} · FPR {:.3}",
                g("tp"),
                g("fp"),
                g("tn"),
                g("fn"),
                g("positive_rate"),
                g("tpr"),
                g("fpr"),
            );
        }
    }
    out
}
