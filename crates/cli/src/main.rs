//! `gopher` — fairness debugging from the shell.
//!
//! Wraps the workspace's explanation pipeline in four subcommands:
//!
//! * `gopher explain` — train a model on a synthetic dataset (or a CSV via
//!   `--csv`), then run the paper's top-k pattern search and print (or emit
//!   as JSON) the explanations;
//! * `gopher audit` — train a model and print every fairness metric plus
//!   per-group confusion counts;
//! * `gopher report` — `audit` + `explain` combined into one JSON document
//!   (implies `--json`);
//! * `gopher query` — build one explain session and answer a JSON array of
//!   explanation requests against it (implies `--json`): the serving-style
//!   entry point, where model training and influence precomputation are paid
//!   once for the whole batch;
//! * `gopher serve` — the same serving surface over HTTP: a multi-session
//!   daemon with an LRU session registry and micro-batched explain calls
//!   (see `gopher_serve`).
//!
//! Run `gopher --help` for the full flag reference.

#![forbid(unsafe_code)]

use gopher_cli::json::{self, Json};
use gopher_core::{ExplainRequest, ExplainResponse, ExplainSession, SessionBuilder, UpdateReport};
use gopher_data::csv::{parse_protected_spec, read_csv_infer};
use gopher_data::generators::{adult, german, sqf};
use gopher_data::{Dataset, Encoder};
use gopher_fairness::{
    bias, disparate_impact_ratio, equalized_odds_gap, group_confusion, smooth_bias,
    ConfusionCounts, FairnessMetric,
};
use gopher_influence::ModelFamily;
use gopher_influence::{BiasEval, Estimator};
use gopher_models::train::accuracy;
use gopher_models::{Forest, ForestConfig, LinearSvm, LogisticRegression, Mlp, Model};
use gopher_prng::Rng;
use gopher_serve::api;
use gopher_serve::{ServeConfig, Server};
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::process::ExitCode;

const HELP: &str = "\
gopher — interpretable data-based explanations for fairness debugging

USAGE:
    gopher <explain|audit|report|query|serve> [OPTIONS]

SUBCOMMANDS:
    explain    top-k training-data patterns responsible for model bias
    audit      fairness metrics and per-group confusion for a trained model
    report     audit + explain as one JSON document (implies --json)
    query      answer a JSON array of explain requests against one shared
               session (implies --json); see --requests
    serve      HTTP daemon: named sessions from CSV uploads or generators,
               LRU registry, micro-batched explain calls; see SERVE OPTIONS
    update     apply a training-data delta to a live session and compare the
               incremental path against a cold rebuild; see UPDATE OPTIONS

COMMON OPTIONS:
    --data <NAME>           dataset generator: german | adult | sqf [german]
    --csv <PATH>            explain a CSV file instead of a generator;
                            requires --label and --protected, schema inferred
                            (numeric column iff every field parses as a number)
    --label <COLUMN>        CSV column holding the 0/1 favorable-outcome label
    --protected <SPEC>      privileged-group rule for the CSV: `col=level`
                            (categorical) or `col>=cutoff` (numeric),
                            e.g. gender=F or age>=45
    --rows <N>              rows to generate [1000] (ignored with --csv)
    --model <NAME>          model family: lr | svm | mlp | forest [lr]
    --metric <NAME>         statistical-parity | equal-opportunity |
                            predictive-parity | average-odds [statistical-parity]
    --seed <N>              RNG seed for generation, split and training [42]
    --test-fraction <F>     held-out fraction for the audit set [0.3]
    --l2 <LAMBDA>           L2 regularization strength [1e-3]
    --threads <N>           worker threads for explain/report/query batches
                            (scorer fan-out, sweep groups, ground-truth
                            retrains); 0 = auto: $GOPHER_THREADS if set, else
                            all available cores [0]. Results are identical
                            at every thread count.
    --prefilter-sample <N>  row-sample size of the admissible sampled-support
                            prefilter; 0 = off [0]. Skips provably
                            unsupported merges in the structural pass before
                            their exact intersection — results are identical
                            on or off; worth turning on from ~100k rows
                            (sample about a quarter of the rows).
    --json                  emit a JSON report on stdout instead of text

EXPLAIN/QUERY OPTIONS:
    --k <N>                 number of explanations [3]
    --support <TAU>         minimum pattern support threshold [0.05]
    --max-predicates <D>    maximum predicates per pattern [3]
    --estimator <NAME>      first-order | second-order | newton |
                            one-step-gd [second-order]
    --learning-rate <ETA>   step size for one-step-gd [1.0]
    --ground-truth          retrain without each top pattern to verify it
    --requests <PATH>       (query) JSON array of request objects; `-` reads
                            stdin. Each object may set: metric, k, estimator,
                            learning_rate, support, max_predicates,
                            ground_truth, bias_eval (chain-rule |
                            re-eval-smooth | re-eval-hard), containment.
                            Omitted fields fall back to the flags above.
    --stats                 (query) wrap the output as {\"responses\": [...],
                            \"session_stats\": {...}} with the session's cache
                            counters: scored-sweep, structure (the
                            metric-independent tier), and coverage
                            hit/miss/eviction rates

UPDATE OPTIONS:
    --delta-remove <N>      training rows to remove (seeded random sample of
                            distinct indices) [1]
    --delta-add <N>         rows to add: fresh generator rows (seed-offset
                            stream) for generator data, duplicated training
                            rows for --csv data [1]

SERVE OPTIONS:
    --addr <HOST>           address to bind [127.0.0.1]
    --port <N>              port to bind; 0 = OS-assigned, printed on the
                            `listening on http://...` line [7979]
    --batch-window-ms <MS>  micro-batch collection window: concurrent
                            explain calls against one session within this
                            window coalesce into one explain_batch; 0
                            disables coalescing [2]
    --max-batch <N>         most requests one micro-batch may coalesce [16]
    --session-cap <N>       sessions retained before LRU eviction [8]
    --workers <N>           connection-handling threads; 0 = auto [0]
    --max-body-bytes <N>    largest accepted request body (413 past it)
                            [16777216]

EXAMPLES:
    gopher explain --data german --k 3 --json
    gopher explain --csv loans.csv --label approved --protected gender=F
    gopher audit --data adult --model mlp --metric equal-opportunity
    gopher report --data sqf --k 5 --support 0.1
    echo '[{\"metric\":\"statistical-parity\"},{\"metric\":\"equal-opportunity\"}]' \\
        | gopher query --requests - --data german
    gopher serve --port 7979 --batch-window-ms 2
    gopher update --data german --rows 10000 --delta-remove 1 --delta-add 1
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(UsageError::Help) => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        Err(UsageError::Bad(msg)) => {
            eprintln!("gopher: {msg}");
            eprintln!("Run `gopher --help` for usage.");
            ExitCode::from(2)
        }
    }
}

enum UsageError {
    Help,
    Bad(String),
}

fn bad(msg: impl Into<String>) -> UsageError {
    UsageError::Bad(msg.into())
}

/// Everything the subcommands share, parsed from the flag list.
struct Opts {
    data: String,
    csv: Option<String>,
    label: Option<String>,
    protected: Option<String>,
    requests: Option<String>,
    rows: usize,
    model: String,
    metric: FairnessMetric,
    seed: u64,
    test_fraction: f64,
    l2: f64,
    threads: usize,
    prefilter_sample: usize,
    json: bool,
    stats: bool,
    k: usize,
    support: f64,
    max_predicates: usize,
    estimator: Estimator,
    learning_rate: f64,
    ground_truth: bool,
    delta_remove: usize,
    delta_add: usize,
    addr: String,
    port: u16,
    batch_window_ms: u64,
    max_batch: usize,
    session_cap: usize,
    workers: usize,
    max_body_bytes: usize,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            data: "german".into(),
            csv: None,
            label: None,
            protected: None,
            requests: None,
            rows: 1000,
            model: "lr".into(),
            metric: FairnessMetric::StatisticalParity,
            seed: 42,
            test_fraction: 0.3,
            l2: 1e-3,
            threads: 0,
            prefilter_sample: 0,
            json: false,
            stats: false,
            k: 3,
            support: 0.05,
            max_predicates: 3,
            estimator: Estimator::SecondOrder,
            learning_rate: 1.0,
            ground_truth: false,
            delta_remove: 1,
            delta_add: 1,
            addr: "127.0.0.1".into(),
            port: 7979,
            batch_window_ms: 2,
            max_batch: 16,
            session_cap: 8,
            workers: 0,
            max_body_bytes: json::DEFAULT_MAX_BYTES,
        }
    }
}

/// The metric/estimator vocabularies live in `gopher_serve::api` (shared
/// with the HTTP surface); these shims only adapt the error type.
fn parse_metric(name: &str) -> Result<FairnessMetric, UsageError> {
    api::parse_metric(name).map_err(bad)
}

fn parse_estimator(name: &str, learning_rate: f64) -> Result<Estimator, UsageError> {
    api::parse_estimator(name, learning_rate).map_err(bad)
}

fn parse_opts(args: &[String]) -> Result<Opts, UsageError> {
    let mut opts = Opts::default();
    let mut estimator_name = String::from("second-order");
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, UsageError> {
            it.next()
                .ok_or_else(|| bad(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--help" | "-h" => return Err(UsageError::Help),
            "--json" => opts.json = true,
            "--stats" => opts.stats = true,
            "--ground-truth" => opts.ground_truth = true,
            "--data" => opts.data = value("--data")?.clone(),
            "--csv" => opts.csv = Some(value("--csv")?.clone()),
            "--label" => opts.label = Some(value("--label")?.clone()),
            "--protected" => opts.protected = Some(value("--protected")?.clone()),
            "--requests" => opts.requests = Some(value("--requests")?.clone()),
            "--model" => opts.model = value("--model")?.clone(),
            "--rows" => opts.rows = parse_num(value("--rows")?, "--rows")?,
            "--seed" => opts.seed = parse_num(value("--seed")?, "--seed")?,
            "--k" => opts.k = parse_num(value("--k")?, "--k")?,
            "--max-predicates" => {
                opts.max_predicates = parse_num(value("--max-predicates")?, "--max-predicates")?
            }
            "--support" => opts.support = parse_num(value("--support")?, "--support")?,
            "--test-fraction" => {
                opts.test_fraction = parse_num(value("--test-fraction")?, "--test-fraction")?
            }
            "--l2" => opts.l2 = parse_num(value("--l2")?, "--l2")?,
            "--threads" => opts.threads = parse_num(value("--threads")?, "--threads")?,
            "--prefilter-sample" => {
                opts.prefilter_sample =
                    parse_num(value("--prefilter-sample")?, "--prefilter-sample")?
            }
            "--delta-remove" => {
                opts.delta_remove = parse_num(value("--delta-remove")?, "--delta-remove")?
            }
            "--delta-add" => opts.delta_add = parse_num(value("--delta-add")?, "--delta-add")?,
            "--learning-rate" => {
                opts.learning_rate = parse_num(value("--learning-rate")?, "--learning-rate")?
            }
            "--metric" => opts.metric = parse_metric(value("--metric")?)?,
            "--estimator" => estimator_name = value("--estimator")?.clone(),
            "--addr" => opts.addr = value("--addr")?.clone(),
            "--port" => opts.port = parse_num(value("--port")?, "--port")?,
            "--batch-window-ms" => {
                opts.batch_window_ms = parse_num(value("--batch-window-ms")?, "--batch-window-ms")?
            }
            "--max-batch" => opts.max_batch = parse_num(value("--max-batch")?, "--max-batch")?,
            "--session-cap" => {
                opts.session_cap = parse_num(value("--session-cap")?, "--session-cap")?
            }
            "--workers" => opts.workers = parse_num(value("--workers")?, "--workers")?,
            "--max-body-bytes" => {
                opts.max_body_bytes = parse_num(value("--max-body-bytes")?, "--max-body-bytes")?
            }
            other => return Err(bad(format!("unknown flag `{other}`"))),
        }
    }
    opts.estimator = parse_estimator(&estimator_name, opts.learning_rate)?;
    if !(0.0..1.0).contains(&opts.test_fraction) || opts.test_fraction == 0.0 {
        return Err(bad("--test-fraction must be in (0, 1)"));
    }
    if opts.csv.is_none() && opts.rows < 20 {
        return Err(bad("--rows must be at least 20"));
    }
    if !(0.0..1.0).contains(&opts.support) {
        return Err(bad("--support must be in [0, 1)"));
    }
    if opts.max_predicates == 0 {
        return Err(bad("--max-predicates must be positive"));
    }
    // Reports record the seed as a JSON number; above 2^53 that round-trips
    // through f64 lossily and the printed seed would not reproduce the run.
    if opts.seed > (1 << 53) {
        return Err(bad("--seed must be at most 2^53 (9007199254740992)"));
    }
    if opts.k == 0 {
        return Err(bad("--k must be positive"));
    }
    Ok(opts)
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, UsageError> {
    text.parse()
        .map_err(|_| bad(format!("invalid value `{text}` for {flag}")))
}

fn run(args: &[String]) -> Result<(), UsageError> {
    let Some(command) = args.first() else {
        return Err(UsageError::Help);
    };
    let mut opts = parse_opts(&args[1..])?;
    match command.as_str() {
        "--help" | "-h" | "help" => Err(UsageError::Help),
        "explain" => dispatch(&mut opts, Action::Explain),
        "audit" => dispatch(&mut opts, Action::Audit),
        "report" => dispatch(&mut opts, Action::Report),
        "query" => dispatch(&mut opts, Action::Query),
        "update" => dispatch(&mut opts, Action::Update),
        "serve" => serve(&opts),
        other => Err(bad(format!("unknown subcommand `{other}`"))),
    }
}

enum Action {
    Explain,
    Audit,
    Report,
    Query,
    Update,
}

/// Loads the dataset: a synthetic generator, or a schema-inferred CSV when
/// `--csv` is set.
fn load_data(opts: &mut Opts) -> Result<Dataset, UsageError> {
    let Some(path) = opts.csv.clone() else {
        let generate = match opts.data.as_str() {
            "german" => german,
            "adult" => adult,
            "sqf" => sqf,
            other => return Err(bad(format!("unknown dataset `{other}`"))),
        };
        return Ok(generate(opts.rows, opts.seed));
    };
    let label = opts
        .label
        .as_deref()
        .ok_or_else(|| bad("--csv requires --label <COLUMN>"))?;
    let spec = opts
        .protected
        .as_deref()
        .ok_or_else(|| bad("--csv requires --protected <SPEC>"))?;
    let (column, rule) =
        parse_protected_spec(spec).map_err(|e| bad(format!("--protected: {e}")))?;
    let file =
        std::fs::File::open(&path).map_err(|e| bad(format!("cannot open --csv {path:?}: {e}")))?;
    let data = read_csv_infer(std::io::BufReader::new(file), label, column, &rule)
        .map_err(|e| bad(format!("--csv {path}: {e}")))?;
    // Reports carry the data source; for CSV runs that's the file path.
    opts.data = path;
    opts.rows = data.n_rows();
    Ok(data)
}

/// Monomorphizes the chosen model family into [`exec`].
fn dispatch(opts: &mut Opts, action: Action) -> Result<(), UsageError> {
    let data = load_data(opts)?;
    let mut rng = Rng::new(opts.seed);
    let (train, test) = data.train_test_split(opts.test_fraction, &mut rng);
    if test.n_rows() == 0 || train.n_rows() == 0 {
        return Err(bad(format!(
            "{} rows with --test-fraction {} leaves an empty split \
             ({} train / {} test rows); increase one of them",
            data.n_rows(),
            opts.test_fraction,
            train.n_rows(),
            test.n_rows()
        )));
    }
    let l2 = opts.l2;
    match opts.model.as_str() {
        "lr" | "logistic" => exec(opts, action, &train, &test, |n| {
            LogisticRegression::new(n, l2)
        }),
        "svm" => exec(opts, action, &train, &test, |n| LinearSvm::new(n, l2)),
        "mlp" => {
            // Cloning the forked stream per call keeps the constructor `Fn`
            // (and deterministic), so `update` can rebuild the same model.
            let model_rng = rng.fork();
            exec(opts, action, &train, &test, move |n| {
                Mlp::new(n, 10, l2, &mut model_rng.clone())
            })
        }
        "forest" => {
            let config = ForestConfig {
                seed: opts.seed,
                ..ForestConfig::default()
            };
            exec(opts, action, &train, &test, move |n| {
                Forest::new(n, config.clone())
            })
        }
        other => Err(bad(format!("unknown model `{other}`"))),
    }
}

fn exec<M: ModelFamily>(
    opts: &Opts,
    action: Action,
    train: &Dataset,
    test: &Dataset,
    make_model: impl Fn(usize) -> M,
) -> Result<(), UsageError> {
    let output = match action {
        Action::Audit => {
            let report = audit_json(opts, train, test, make_model);
            if opts.json {
                format!("{report}\n")
            } else {
                render_audit_text(&report)
            }
        }
        Action::Explain => {
            let session = fit_session(opts, train, test, make_model);
            let response = session.explain(&base_request(opts));
            let report = explain_json(opts, &response);
            if opts.json {
                format!("{report}\n")
            } else {
                render_explain_text(&report)
            }
        }
        Action::Report => {
            let session = fit_session(opts, train, test, make_model);
            let audit = audit_model(opts, session.model(), session.encoder(), test);
            let response = session.explain(&base_request(opts));
            let explain = explain_json(opts, &response);
            format!("{}\n", Json::obj([("audit", audit), ("explain", explain)]))
        }
        Action::Query => {
            let requests = read_requests(opts)?;
            let session = fit_session(opts, train, test, make_model);
            let responses = session.explain_batch(&requests);
            let array: Vec<Json> = responses.iter().map(|r| explain_json(opts, r)).collect();
            if opts.stats {
                format!(
                    "{}\n",
                    Json::obj([
                        ("responses", Json::Arr(array)),
                        ("session_stats", session_stats_json(&session.stats())),
                    ])
                )
            } else {
                format!("{}\n", Json::Arr(array))
            }
        }
        Action::Update => {
            if opts.delta_remove == 0 && opts.delta_add == 0 {
                return Err(bad("update needs --delta-remove or --delta-add above zero"));
            }
            if opts.delta_remove >= train.n_rows() {
                return Err(bad(format!(
                    "--delta-remove {} would empty the {}-row training split",
                    opts.delta_remove,
                    train.n_rows()
                )));
            }
            let mut session = fit_session(opts, train, test, &make_model);
            let request = base_request(opts);
            // Warm the structural tier so the delta has artifacts to patch.
            session.explain(&request);
            let mut removal_rng = Rng::new(opts.seed ^ 0x517c_c1b7);
            let removed = removal_rng.sample_indices(train.n_rows(), opts.delta_remove);
            let added = delta_rows(opts, train)?;
            let report = session.update(&removed, &added);
            let after = session.explain(&request);
            let rebuild_start = std::time::Instant::now();
            let cold = session.cold_rebuild(&make_model);
            let rebuild_time = rebuild_start.elapsed();
            let cold_answer = cold.explain(&request);
            let matches_cold = explanations_match(&after, &cold_answer);
            let json = update_json(opts, &report, &after, matches_cold, rebuild_time);
            if opts.json {
                format!("{json}\n")
            } else {
                render_update_text(&json)
            }
        }
    };
    emit(&output);
    Ok(())
}

// ----------------------------------------------------------------- update

/// The rows an `update` adds: a fresh seed-offset slice of the generator
/// stream, or (for CSV data) a seeded sample of duplicated training rows —
/// either way the schema matches the session's by construction.
fn delta_rows(opts: &Opts, train: &Dataset) -> Result<Dataset, UsageError> {
    if opts.delta_add == 0 {
        return Ok(train.select_rows(&[]));
    }
    if opts.csv.is_some() {
        let mut rng = Rng::new(opts.seed ^ 0x9e37_79b9);
        let picked = rng.sample_indices(train.n_rows(), opts.delta_add.min(train.n_rows()));
        return Ok(train.select_rows(&picked));
    }
    let generate = match opts.data.as_str() {
        "german" => german,
        "adult" => adult,
        "sqf" => sqf,
        other => return Err(bad(format!("unknown dataset `{other}`"))),
    };
    Ok(generate(opts.delta_add, opts.seed ^ 0x9e37_79b9))
}

/// Post-update answers must match a cold rebuild on the same data: pattern
/// text and support exactly, responsibilities within the engine's drift
/// bound, base bias to float noise.
fn explanations_match(incremental: &ExplainResponse, cold: &ExplainResponse) -> bool {
    let a = &incremental.report.explanations;
    let b = &cold.report.explanations;
    a.len() == b.len()
        && (incremental.report.base_bias - cold.report.base_bias).abs() <= 1e-6
        && a.iter().zip(b).all(|(x, y)| {
            let scale = x.est_responsibility.abs().max(y.est_responsibility.abs());
            x.pattern_text == y.pattern_text
                && x.support == y.support
                && (x.est_responsibility - y.est_responsibility).abs() <= 1e-2 * scale.max(1e-12)
        })
}

fn update_json(
    opts: &Opts,
    report: &UpdateReport,
    after: &ExplainResponse,
    matches_cold: bool,
    rebuild_time: std::time::Duration,
) -> Json {
    let update_ms = report.update_time.as_secs_f64() * 1e3;
    let rebuild_ms = rebuild_time.as_secs_f64() * 1e3;
    let Json::Obj(mut fields) = explain_json(opts, after) else {
        unreachable!("explain_json returns an object");
    };
    fields.insert("command".into(), Json::str("update"));
    fields.insert("rows_removed".into(), Json::num(report.rows_removed as f64));
    fields.insert("rows_added".into(), Json::num(report.rows_added as f64));
    fields.insert("train_rows".into(), Json::num(report.n_rows as f64));
    fields.insert("refactored".into(), Json::Bool(report.engine.refactored));
    fields.insert(
        "full_rebuild".into(),
        Json::Bool(report.engine.full_rebuild),
    );
    fields.insert("fell_back".into(), Json::Bool(report.engine.fell_back()));
    fields.insert(
        "artifacts_survived".into(),
        Json::num(report.artifacts_survived as f64),
    );
    fields.insert(
        "artifacts_invalidated".into(),
        Json::num(report.artifacts_invalidated as f64),
    );
    fields.insert("update_ms".into(), Json::num(update_ms));
    fields.insert("rebuild_ms".into(), Json::num(rebuild_ms));
    fields.insert(
        "speedup".into(),
        Json::num(rebuild_ms / update_ms.max(1e-9)),
    );
    fields.insert("matches_cold_rebuild".into(), Json::Bool(matches_cold));
    Json::Obj(fields)
}

fn render_update_text(report: &Json) -> String {
    let get_f = |k: &str| report.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
    let get_b = |k: &str| matches!(report.get(k), Some(Json::Bool(true)));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "update · removed {} · added {} · {} train rows now",
        get_f("rows_removed"),
        get_f("rows_added"),
        get_f("train_rows"),
    );
    let path = if get_b("full_rebuild") {
        "full retrain fallback"
    } else if get_b("refactored") {
        "refactorized (drift guard)"
    } else {
        "incremental factor patch"
    };
    let _ = writeln!(
        out,
        "engine path: {path} · caches: {} survived, {} invalidated",
        get_f("artifacts_survived"),
        get_f("artifacts_invalidated"),
    );
    let _ = writeln!(
        out,
        "update {:.1} ms vs cold rebuild {:.1} ms ({:.1}x) · answers match: {}",
        get_f("update_ms"),
        get_f("rebuild_ms"),
        get_f("speedup"),
        if get_b("matches_cold_rebuild") {
            "yes"
        } else {
            "NO"
        },
    );
    out
}

/// Writes to stdout, swallowing `BrokenPipe` so `gopher ... | head` exits
/// cleanly instead of panicking.
fn emit(text: &str) {
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = stdout
        .write_all(text.as_bytes())
        .and_then(|()| stdout.flush())
    {
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            panic!("failed writing to stdout: {e}");
        }
    }
}

fn fit_session<M: ModelFamily>(
    opts: &Opts,
    train: &Dataset,
    test: &Dataset,
    make_model: impl FnOnce(usize) -> M,
) -> ExplainSession<M> {
    SessionBuilder::new()
        .threads(opts.threads)
        .prefilter_sample(opts.prefilter_sample)
        .fit(make_model, train, test)
}

/// The request the CLI flags describe (also the fallback for every field a
/// `query` request object leaves out).
fn base_request(opts: &Opts) -> ExplainRequest {
    let mut request = ExplainRequest::default()
        .with_metric(opts.metric)
        .with_k(opts.k)
        .with_estimator(opts.estimator)
        .with_support_threshold(opts.support)
        .with_max_predicates(opts.max_predicates)
        .with_ground_truth(opts.ground_truth);
    request.bias_eval = BiasEval::ChainRule;
    request
}

/// The `--stats` block: every cache-layer and traffic counter a serving
/// deployment watches, shared with `GET /sessions/{name}/stats`.
fn session_stats_json(stats: &gopher_core::SessionStats) -> Json {
    api::session_stats_json(stats)
}

// ------------------------------------------------------------------ serve

/// Runs the HTTP daemon until a signal or `POST /shutdown` asks it to
/// drain: in-flight requests (including forming micro-batches) complete,
/// then the workers park and we return.
fn serve(opts: &Opts) -> Result<(), UsageError> {
    gopher_serve::signals::install();
    let config = ServeConfig {
        addr: opts.addr.clone(),
        port: opts.port,
        batch_window: std::time::Duration::from_millis(opts.batch_window_ms),
        max_batch: opts.max_batch,
        session_cap: opts.session_cap,
        workers: opts.workers,
        max_body_bytes: opts.max_body_bytes,
    };
    let server = Server::start(config)
        .map_err(|e| bad(format!("cannot bind {}:{}: {e}", opts.addr, opts.port)))?;
    // Scripts (and the CI smoke) scrape this exact line for the bound port.
    emit(&format!("listening on http://{}\n", server.addr()));
    while !server.shutdown_requested() && !gopher_serve::signals::signalled() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    server.trigger_shutdown();
    server.join();
    emit("gopher serve: drained and stopped\n");
    Ok(())
}

// ----------------------------------------------------------------- query

/// Reads and parses the `--requests` JSON array (`-` = stdin).
fn read_requests(opts: &Opts) -> Result<Vec<ExplainRequest>, UsageError> {
    let path = opts
        .requests
        .as_deref()
        .ok_or_else(|| bad("query requires --requests <PATH> (`-` for stdin)"))?;
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| bad(format!("cannot read requests from stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(path)
            .map_err(|e| bad(format!("cannot read --requests {path:?}: {e}")))?
    };
    let parsed =
        json::parse(text.trim()).map_err(|e| bad(format!("--requests is not valid JSON: {e}")))?;
    let Some(items) = parsed.as_arr() else {
        return Err(bad("--requests must be a JSON array of request objects"));
    };
    if items.is_empty() {
        return Err(bad("--requests array is empty"));
    }
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            parse_request(item, opts).map_err(|e| match e {
                UsageError::Bad(msg) => bad(format!("request #{}: {msg}", i + 1)),
                help => help,
            })
        })
        .collect()
}

/// Builds one [`ExplainRequest`] from a JSON object, falling back to the
/// CLI flags for omitted fields. The field vocabulary, validation, and
/// error wording are the shared serving codec's
/// ([`api::parse_explain_request`]) — `gopher query` and the HTTP daemon
/// accept byte-identical request objects.
fn parse_request(item: &Json, opts: &Opts) -> Result<ExplainRequest, UsageError> {
    api::parse_explain_request(item, &base_request(opts), opts.learning_rate).map_err(bad)
}

// ---------------------------------------------------------------- explain

/// The shared serving response ([`api::explain_response_json`]) plus the
/// CLI's invocation context. Field names and value formatting are identical
/// between `gopher explain --json` and `POST /sessions/{name}/explain`.
fn explain_json(opts: &Opts, response: &ExplainResponse) -> Json {
    let Json::Obj(mut fields) = api::explain_response_json(response) else {
        unreachable!("explain_response_json returns an object");
    };
    fields.insert("command".into(), Json::str("explain"));
    fields.insert("dataset".into(), Json::str(&opts.data));
    fields.insert("rows".into(), Json::num(opts.rows as f64));
    fields.insert("model".into(), Json::str(&opts.model));
    fields.insert("seed".into(), Json::num(opts.seed as f64));
    Json::Obj(fields)
}

fn render_explain_text(report: &Json) -> String {
    let mut out = String::new();
    let get_f = |k: &str| report.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
    let get_s = |k: &str| report.get(k).and_then(Json::as_str).unwrap_or("?");
    let _ = writeln!(
        out,
        "explain · {} ({} rows) · model {} · metric {}",
        get_s("dataset"),
        get_f("rows"),
        get_s("model"),
        get_s("metric"),
    );
    let _ = writeln!(
        out,
        "base bias {:+.4} · accuracy {:.1}% · {} candidates scored in {:.0} ms",
        get_f("base_bias"),
        100.0 * get_f("accuracy"),
        get_f("candidates_scored"),
        get_f("search_ms"),
    );
    let _ = writeln!(out);
    let empty = Vec::new();
    let explanations = report
        .get("explanations")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    if explanations.is_empty() {
        let _ = writeln!(
            out,
            "no patterns above the support threshold were responsible for the bias"
        );
        return out;
    }
    for (i, e) in explanations.iter().enumerate() {
        let pattern = e.get("pattern").and_then(Json::as_str).unwrap_or("?");
        let support = e.get("support").and_then(Json::as_f64).unwrap_or(f64::NAN);
        let resp = e
            .get("est_responsibility")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN);
        let _ = writeln!(out, "{}. {pattern}", i + 1);
        let _ = write!(
            out,
            "   support {:.1}% · est. responsibility {:+.4}",
            100.0 * support,
            resp
        );
        if let Some(gt) = e.get("ground_truth_responsibility").and_then(Json::as_f64) {
            let _ = write!(out, " · ground-truth Δbias {:+.1}%", 100.0 * gt);
        }
        let _ = writeln!(out);
    }
    out
}

// ------------------------------------------------------------------ audit

fn audit_json<M: ModelFamily>(
    opts: &Opts,
    train: &Dataset,
    test: &Dataset,
    make_model: impl FnOnce(usize) -> M,
) -> Json {
    let encoder = Encoder::fit(train);
    let encoded_train = encoder.transform(train);
    let mut model = make_model(encoded_train.n_cols());
    ModelFamily::fit(&mut model, &encoded_train);
    audit_model(opts, &model, &encoder, test)
}

fn audit_model<M: Model>(opts: &Opts, model: &M, encoder: &Encoder, test: &Dataset) -> Json {
    let encoded_test = encoder.transform(test);
    let metrics: Vec<Json> = [
        FairnessMetric::StatisticalParity,
        FairnessMetric::EqualOpportunity,
        FairnessMetric::PredictiveParity,
        FairnessMetric::AverageOdds,
    ]
    .iter()
    .map(|&m| {
        Json::obj([
            ("metric", Json::str(m.name())),
            ("bias", Json::num(bias(m, model, &encoded_test))),
            (
                "smooth_bias",
                Json::num(smooth_bias(m, model, &encoded_test)),
            ),
        ])
    })
    .collect();
    let stats = group_confusion(model, &encoded_test);
    Json::obj([
        ("command", Json::str("audit")),
        ("dataset", Json::str(&opts.data)),
        ("rows", Json::num(opts.rows as f64)),
        ("model", Json::str(&opts.model)),
        ("seed", Json::num(opts.seed as f64)),
        ("test_rows", Json::num(encoded_test.n_rows() as f64)),
        ("accuracy", Json::num(accuracy(model, &encoded_test))),
        ("metrics", Json::Arr(metrics)),
        (
            "disparate_impact_ratio",
            Json::num(disparate_impact_ratio(model, &encoded_test)),
        ),
        (
            "equalized_odds_gap",
            Json::num(equalized_odds_gap(model, &encoded_test)),
        ),
        ("privileged", confusion_json(&stats.privileged)),
        ("protected", confusion_json(&stats.protected)),
    ])
}

fn confusion_json(c: &ConfusionCounts) -> Json {
    Json::obj([
        ("tp", Json::num(c.tp as f64)),
        ("fp", Json::num(c.fp as f64)),
        ("tn", Json::num(c.tn as f64)),
        ("fn", Json::num(c.fn_ as f64)),
        ("positive_rate", Json::num(c.positive_rate())),
        ("tpr", Json::num(c.tpr())),
        ("fpr", Json::num(c.fpr())),
    ])
}

fn render_audit_text(report: &Json) -> String {
    let mut out = String::new();
    let get_f = |k: &str| report.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
    let get_s = |k: &str| report.get(k).and_then(Json::as_str).unwrap_or("?");
    let _ = writeln!(
        out,
        "audit · {} ({} rows, {} held out) · model {}",
        get_s("dataset"),
        get_f("rows"),
        get_f("test_rows"),
        get_s("model"),
    );
    let _ = writeln!(out, "accuracy {:.1}%", 100.0 * get_f("accuracy"));
    let _ = writeln!(out);
    let empty = Vec::new();
    for m in report
        .get("metrics")
        .and_then(Json::as_arr)
        .unwrap_or(&empty)
    {
        let _ = writeln!(
            out,
            "{:<22} bias {:+.4}   (smooth {:+.4})",
            m.get("metric").and_then(Json::as_str).unwrap_or("?"),
            m.get("bias").and_then(Json::as_f64).unwrap_or(f64::NAN),
            m.get("smooth_bias")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN),
        );
    }
    let _ = writeln!(
        out,
        "{:<22} {:.4}",
        "disparate impact",
        get_f("disparate_impact_ratio")
    );
    let _ = writeln!(
        out,
        "{:<22} {:.4}",
        "equalized odds gap",
        get_f("equalized_odds_gap")
    );
    let _ = writeln!(out);
    for group in ["privileged", "protected"] {
        if let Some(c) = report.get(group) {
            let g = |k: &str| c.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
            let _ = writeln!(out, "{group:<11} tp {:>4} fp {:>4} tn {:>4} fn {:>4} · P(Ŷ=1) {:.3} · TPR {:.3} · FPR {:.3}",
                g("tp"),
                g("fp"),
                g("tn"),
                g("fn"),
                g("positive_rate"),
                g("tpr"),
                g("fpr"),
            );
        }
    }
    out
}
