//! `gopher` — fairness debugging from the shell.
//!
//! Wraps the workspace's explanation pipeline in three subcommands:
//!
//! * `gopher explain` — train a model on a synthetic dataset, then run the
//!   paper's top-k pattern search and print (or emit as JSON) the
//!   explanations;
//! * `gopher audit` — train a model and print every fairness metric plus
//!   per-group confusion counts;
//! * `gopher report` — `audit` + `explain` combined into one JSON document
//!   (implies `--json`).
//!
//! Run `gopher --help` for the full flag reference.

use gopher_cli::json::Json;
use gopher_core::{Gopher, GopherConfig};
use gopher_data::generators::{adult, german, sqf};
use gopher_data::{Dataset, Encoder};
use gopher_fairness::{
    bias, disparate_impact_ratio, equalized_odds_gap, group_confusion, smooth_bias,
    ConfusionCounts, FairnessMetric,
};
use gopher_influence::Estimator;
use gopher_models::train::{accuracy, fit_default};
use gopher_models::{LinearSvm, LogisticRegression, Mlp, Model};
use gopher_prng::Rng;
use std::fmt::Write as _;
use std::io::Write as _;
use std::process::ExitCode;

const HELP: &str = "\
gopher — interpretable data-based explanations for fairness debugging

USAGE:
    gopher <explain|audit|report> [OPTIONS]

SUBCOMMANDS:
    explain    top-k training-data patterns responsible for model bias
    audit      fairness metrics and per-group confusion for a trained model
    report     audit + explain as one JSON document (implies --json)

COMMON OPTIONS:
    --data <NAME>           dataset generator: german | adult | sqf [german]
    --rows <N>              rows to generate [1000]
    --model <NAME>          model family: lr | svm | mlp [lr]
    --metric <NAME>         statistical-parity | equal-opportunity |
                            predictive-parity | average-odds [statistical-parity]
    --seed <N>              RNG seed for generation, split and training [42]
    --test-fraction <F>     held-out fraction for the audit set [0.3]
    --l2 <LAMBDA>           L2 regularization strength [1e-3]
    --json                  emit a JSON report on stdout instead of text

EXPLAIN OPTIONS:
    --k <N>                 number of explanations [3]
    --support <TAU>         minimum pattern support threshold [0.05]
    --max-predicates <D>    maximum predicates per pattern [3]
    --estimator <NAME>      first-order | second-order | newton |
                            one-step-gd [second-order]
    --learning-rate <ETA>   step size for one-step-gd [1.0]
    --ground-truth          retrain without each top pattern to verify it

EXAMPLES:
    gopher explain --data german --k 3 --json
    gopher audit --data adult --model mlp --metric equal-opportunity
    gopher report --data sqf --k 5 --support 0.1
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(UsageError::Help) => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        Err(UsageError::Bad(msg)) => {
            eprintln!("gopher: {msg}");
            eprintln!("Run `gopher --help` for usage.");
            ExitCode::from(2)
        }
    }
}

enum UsageError {
    Help,
    Bad(String),
}

fn bad(msg: impl Into<String>) -> UsageError {
    UsageError::Bad(msg.into())
}

/// Everything the subcommands share, parsed from the flag list.
struct Opts {
    data: String,
    rows: usize,
    model: String,
    metric: FairnessMetric,
    seed: u64,
    test_fraction: f64,
    l2: f64,
    json: bool,
    k: usize,
    support: f64,
    max_predicates: usize,
    estimator: Estimator,
    ground_truth: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            data: "german".into(),
            rows: 1000,
            model: "lr".into(),
            metric: FairnessMetric::StatisticalParity,
            seed: 42,
            test_fraction: 0.3,
            l2: 1e-3,
            json: false,
            k: 3,
            support: 0.05,
            max_predicates: 3,
            estimator: Estimator::SecondOrder,
            ground_truth: false,
        }
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, UsageError> {
    let mut opts = Opts::default();
    let mut learning_rate = 1.0f64;
    let mut estimator_name = String::from("second-order");
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, UsageError> {
            it.next()
                .ok_or_else(|| bad(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--help" | "-h" => return Err(UsageError::Help),
            "--json" => opts.json = true,
            "--ground-truth" => opts.ground_truth = true,
            "--data" => opts.data = value("--data")?.clone(),
            "--model" => opts.model = value("--model")?.clone(),
            "--rows" => opts.rows = parse_num(value("--rows")?, "--rows")?,
            "--seed" => opts.seed = parse_num(value("--seed")?, "--seed")?,
            "--k" => opts.k = parse_num(value("--k")?, "--k")?,
            "--max-predicates" => {
                opts.max_predicates = parse_num(value("--max-predicates")?, "--max-predicates")?
            }
            "--support" => opts.support = parse_num(value("--support")?, "--support")?,
            "--test-fraction" => {
                opts.test_fraction = parse_num(value("--test-fraction")?, "--test-fraction")?
            }
            "--l2" => opts.l2 = parse_num(value("--l2")?, "--l2")?,
            "--learning-rate" => {
                learning_rate = parse_num(value("--learning-rate")?, "--learning-rate")?
            }
            "--metric" => {
                opts.metric = match value("--metric")?.as_str() {
                    "statistical-parity" | "spd" => FairnessMetric::StatisticalParity,
                    "equal-opportunity" | "eo" => FairnessMetric::EqualOpportunity,
                    "predictive-parity" | "pp" => FairnessMetric::PredictiveParity,
                    "average-odds" | "ao" => FairnessMetric::AverageOdds,
                    other => return Err(bad(format!("unknown metric `{other}`"))),
                }
            }
            "--estimator" => estimator_name = value("--estimator")?.clone(),
            other => return Err(bad(format!("unknown flag `{other}`"))),
        }
    }
    opts.estimator = match estimator_name.as_str() {
        "first-order" | "fo" => Estimator::FirstOrder,
        "second-order" | "so" => Estimator::SecondOrder,
        "newton" => Estimator::NewtonStep,
        "one-step-gd" | "gd" => Estimator::OneStepGd { learning_rate },
        other => return Err(bad(format!("unknown estimator `{other}`"))),
    };
    if !(0.0..1.0).contains(&opts.test_fraction) || opts.test_fraction == 0.0 {
        return Err(bad("--test-fraction must be in (0, 1)"));
    }
    if opts.rows < 20 {
        return Err(bad("--rows must be at least 20"));
    }
    // Reports record the seed as a JSON number; above 2^53 that round-trips
    // through f64 lossily and the printed seed would not reproduce the run.
    if opts.seed > (1 << 53) {
        return Err(bad("--seed must be at most 2^53 (9007199254740992)"));
    }
    if opts.k == 0 {
        return Err(bad("--k must be positive"));
    }
    Ok(opts)
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, UsageError> {
    text.parse()
        .map_err(|_| bad(format!("invalid value `{text}` for {flag}")))
}

fn run(args: &[String]) -> Result<(), UsageError> {
    let Some(command) = args.first() else {
        return Err(UsageError::Help);
    };
    let opts = parse_opts(&args[1..])?;
    match command.as_str() {
        "--help" | "-h" | "help" => Err(UsageError::Help),
        "explain" => dispatch(&opts, Action::Explain),
        "audit" => dispatch(&opts, Action::Audit),
        "report" => dispatch(&opts, Action::Report),
        other => Err(bad(format!("unknown subcommand `{other}`"))),
    }
}

enum Action {
    Explain,
    Audit,
    Report,
}

/// Monomorphizes the chosen model family into [`exec`].
fn dispatch(opts: &Opts, action: Action) -> Result<(), UsageError> {
    let generate = match opts.data.as_str() {
        "german" => german,
        "adult" => adult,
        "sqf" => sqf,
        other => return Err(bad(format!("unknown dataset `{other}`"))),
    };
    let data = generate(opts.rows, opts.seed);
    let mut rng = Rng::new(opts.seed);
    let (train, test) = data.train_test_split(opts.test_fraction, &mut rng);
    if test.n_rows() == 0 || train.n_rows() == 0 {
        return Err(bad(format!(
            "--rows {} with --test-fraction {} leaves an empty split \
             ({} train / {} test rows); increase one of them",
            opts.rows,
            opts.test_fraction,
            train.n_rows(),
            test.n_rows()
        )));
    }
    let l2 = opts.l2;
    match opts.model.as_str() {
        "lr" | "logistic" => exec(opts, action, &train, &test, |n| {
            LogisticRegression::new(n, l2)
        }),
        "svm" => exec(opts, action, &train, &test, |n| LinearSvm::new(n, l2)),
        "mlp" => {
            let mut model_rng = rng.fork();
            exec(opts, action, &train, &test, move |n| {
                Mlp::new(n, 10, l2, &mut model_rng)
            })
        }
        other => Err(bad(format!("unknown model `{other}`"))),
    }
}

fn exec<M: Model>(
    opts: &Opts,
    action: Action,
    train: &Dataset,
    test: &Dataset,
    make_model: impl FnOnce(usize) -> M,
) -> Result<(), UsageError> {
    let output = match action {
        Action::Audit => {
            let report = audit_json(opts, train, test, make_model);
            if opts.json {
                format!("{report}\n")
            } else {
                render_audit_text(&report)
            }
        }
        Action::Explain => {
            let gopher = fit_gopher(opts, train, test, make_model);
            let report = explain_json(opts, &gopher);
            if opts.json {
                format!("{report}\n")
            } else {
                render_explain_text(&report)
            }
        }
        Action::Report => {
            let gopher = fit_gopher(opts, train, test, make_model);
            let audit = audit_model(opts, gopher.model(), gopher.encoder(), test);
            let explain = explain_json(opts, &gopher);
            format!("{}\n", Json::obj([("audit", audit), ("explain", explain)]))
        }
    };
    emit(&output);
    Ok(())
}

/// Writes to stdout, swallowing `BrokenPipe` so `gopher ... | head` exits
/// cleanly instead of panicking.
fn emit(text: &str) {
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = stdout
        .write_all(text.as_bytes())
        .and_then(|()| stdout.flush())
    {
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            panic!("failed writing to stdout: {e}");
        }
    }
}

fn fit_gopher<M: Model>(
    opts: &Opts,
    train: &Dataset,
    test: &Dataset,
    make_model: impl FnOnce(usize) -> M,
) -> Gopher<M> {
    let config = GopherConfig {
        metric: opts.metric,
        k: opts.k,
        estimator: opts.estimator,
        ground_truth_for_topk: opts.ground_truth,
        lattice: gopher_patterns::LatticeConfig {
            support_threshold: opts.support,
            max_predicates: opts.max_predicates,
            ..Default::default()
        },
        ..Default::default()
    };
    Gopher::fit(make_model, train, test, config)
}

// ---------------------------------------------------------------- explain

fn explain_json<M: Model>(opts: &Opts, gopher: &Gopher<M>) -> Json {
    let report = gopher.explain();
    let explanations: Vec<Json> = report
        .explanations
        .iter()
        .map(|e| {
            Json::obj([
                ("pattern", Json::str(&e.pattern_text)),
                ("support", Json::num(e.support)),
                ("est_responsibility", Json::num(e.est_responsibility)),
                ("interestingness", Json::num(e.candidate.interestingness)),
                (
                    "ground_truth_responsibility",
                    e.ground_truth_responsibility.map_or(Json::Null, Json::num),
                ),
                (
                    "ground_truth_new_bias",
                    e.ground_truth_new_bias.map_or(Json::Null, Json::num),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("command", Json::str("explain")),
        ("dataset", Json::str(&opts.data)),
        ("rows", Json::num(opts.rows as f64)),
        ("model", Json::str(&opts.model)),
        ("metric", Json::str(report.metric.name())),
        ("seed", Json::num(opts.seed as f64)),
        ("estimator", Json::str(estimator_name(opts.estimator))),
        ("base_bias", Json::num(report.base_bias)),
        ("accuracy", Json::num(report.accuracy)),
        ("k", Json::num(opts.k as f64)),
        ("support_threshold", Json::num(opts.support)),
        (
            "candidates_scored",
            Json::num(report.stats.total_scored as f64),
        ),
        (
            "search_ms",
            Json::num(report.search_time.as_secs_f64() * 1e3),
        ),
        ("explanations", Json::Arr(explanations)),
    ])
}

fn estimator_name(e: Estimator) -> &'static str {
    match e {
        Estimator::FirstOrder => "first-order",
        Estimator::SecondOrder => "second-order",
        Estimator::NewtonStep => "newton",
        Estimator::OneStepGd { .. } => "one-step-gd",
    }
}

fn render_explain_text(report: &Json) -> String {
    let mut out = String::new();
    let get_f = |k: &str| report.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
    let get_s = |k: &str| report.get(k).and_then(Json::as_str).unwrap_or("?");
    let _ = writeln!(
        out,
        "explain · {} ({} rows) · model {} · metric {}",
        get_s("dataset"),
        get_f("rows"),
        get_s("model"),
        get_s("metric"),
    );
    let _ = writeln!(
        out,
        "base bias {:+.4} · accuracy {:.1}% · {} candidates scored in {:.0} ms",
        get_f("base_bias"),
        100.0 * get_f("accuracy"),
        get_f("candidates_scored"),
        get_f("search_ms"),
    );
    let _ = writeln!(out);
    let empty = Vec::new();
    let explanations = report
        .get("explanations")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    if explanations.is_empty() {
        let _ = writeln!(
            out,
            "no patterns above the support threshold were responsible for the bias"
        );
        return out;
    }
    for (i, e) in explanations.iter().enumerate() {
        let pattern = e.get("pattern").and_then(Json::as_str).unwrap_or("?");
        let support = e.get("support").and_then(Json::as_f64).unwrap_or(f64::NAN);
        let resp = e
            .get("est_responsibility")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN);
        let _ = writeln!(out, "{}. {pattern}", i + 1);
        let _ = write!(
            out,
            "   support {:.1}% · est. responsibility {:+.4}",
            100.0 * support,
            resp
        );
        if let Some(gt) = e.get("ground_truth_responsibility").and_then(Json::as_f64) {
            let _ = write!(out, " · ground-truth Δbias {:+.1}%", 100.0 * gt);
        }
        let _ = writeln!(out);
    }
    out
}

// ------------------------------------------------------------------ audit

fn audit_json<M: Model>(
    opts: &Opts,
    train: &Dataset,
    test: &Dataset,
    make_model: impl FnOnce(usize) -> M,
) -> Json {
    let encoder = Encoder::fit(train);
    let encoded_train = encoder.transform(train);
    let mut model = make_model(encoded_train.n_cols());
    fit_default(&mut model, &encoded_train);
    audit_model(opts, &model, &encoder, test)
}

fn audit_model<M: Model>(opts: &Opts, model: &M, encoder: &Encoder, test: &Dataset) -> Json {
    let encoded_test = encoder.transform(test);
    let metrics: Vec<Json> = [
        FairnessMetric::StatisticalParity,
        FairnessMetric::EqualOpportunity,
        FairnessMetric::PredictiveParity,
        FairnessMetric::AverageOdds,
    ]
    .iter()
    .map(|&m| {
        Json::obj([
            ("metric", Json::str(m.name())),
            ("bias", Json::num(bias(m, model, &encoded_test))),
            (
                "smooth_bias",
                Json::num(smooth_bias(m, model, &encoded_test)),
            ),
        ])
    })
    .collect();
    let stats = group_confusion(model, &encoded_test);
    Json::obj([
        ("command", Json::str("audit")),
        ("dataset", Json::str(&opts.data)),
        ("rows", Json::num(opts.rows as f64)),
        ("model", Json::str(&opts.model)),
        ("seed", Json::num(opts.seed as f64)),
        ("test_rows", Json::num(encoded_test.n_rows() as f64)),
        ("accuracy", Json::num(accuracy(model, &encoded_test))),
        ("metrics", Json::Arr(metrics)),
        (
            "disparate_impact_ratio",
            Json::num(disparate_impact_ratio(model, &encoded_test)),
        ),
        (
            "equalized_odds_gap",
            Json::num(equalized_odds_gap(model, &encoded_test)),
        ),
        ("privileged", confusion_json(&stats.privileged)),
        ("protected", confusion_json(&stats.protected)),
    ])
}

fn confusion_json(c: &ConfusionCounts) -> Json {
    Json::obj([
        ("tp", Json::num(c.tp as f64)),
        ("fp", Json::num(c.fp as f64)),
        ("tn", Json::num(c.tn as f64)),
        ("fn", Json::num(c.fn_ as f64)),
        ("positive_rate", Json::num(c.positive_rate())),
        ("tpr", Json::num(c.tpr())),
        ("fpr", Json::num(c.fpr())),
    ])
}

fn render_audit_text(report: &Json) -> String {
    let mut out = String::new();
    let get_f = |k: &str| report.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
    let get_s = |k: &str| report.get(k).and_then(Json::as_str).unwrap_or("?");
    let _ = writeln!(
        out,
        "audit · {} ({} rows, {} held out) · model {}",
        get_s("dataset"),
        get_f("rows"),
        get_f("test_rows"),
        get_s("model"),
    );
    let _ = writeln!(out, "accuracy {:.1}%", 100.0 * get_f("accuracy"));
    let _ = writeln!(out);
    let empty = Vec::new();
    for m in report
        .get("metrics")
        .and_then(Json::as_arr)
        .unwrap_or(&empty)
    {
        let _ = writeln!(
            out,
            "{:<22} bias {:+.4}   (smooth {:+.4})",
            m.get("metric").and_then(Json::as_str).unwrap_or("?"),
            m.get("bias").and_then(Json::as_f64).unwrap_or(f64::NAN),
            m.get("smooth_bias")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN),
        );
    }
    let _ = writeln!(
        out,
        "{:<22} {:.4}",
        "disparate impact",
        get_f("disparate_impact_ratio")
    );
    let _ = writeln!(
        out,
        "{:<22} {:.4}",
        "equalized odds gap",
        get_f("equalized_odds_gap")
    );
    let _ = writeln!(out);
    for group in ["privileged", "protected"] {
        if let Some(c) = report.get(group) {
            let g = |k: &str| c.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
            let _ = writeln!(out, "{group:<11} tp {:>4} fp {:>4} tn {:>4} fn {:>4} · P(Ŷ=1) {:.3} · TPR {:.3} · FPR {:.3}",
                g("tp"),
                g("fp"),
                g("tn"),
                g("fn"),
                g("positive_rate"),
                g("tpr"),
                g("fpr"),
            );
        }
    }
    out
}
