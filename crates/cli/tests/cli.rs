//! End-to-end tests for the `gopher` binary: spawn the real executable and
//! validate its JSON output with the crate's own strict parser.

use gopher_cli::json::{self, Json};
use std::process::Command;

fn gopher(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_gopher"))
        .args(args)
        .output()
        .expect("failed to spawn gopher binary")
}

fn run_json(args: &[&str]) -> Json {
    let out = gopher(args);
    assert!(
        out.status.success(),
        "gopher {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("stdout must be UTF-8");
    json::parse(stdout.trim()).unwrap_or_else(|e| panic!("invalid JSON ({e}): {stdout}"))
}

#[test]
fn explain_german_emits_parseable_report_with_positive_support() {
    // Small row count keeps the lattice search fast; the german generator's
    // planted bias is strong enough to surface patterns even at this size.
    let report = run_json(&[
        "explain", "--data", "german", "--k", "3", "--rows", "400", "--json",
    ]);

    assert_eq!(
        report.get("command").and_then(Json::as_str),
        Some("explain")
    );
    assert_eq!(report.get("dataset").and_then(Json::as_str), Some("german"));
    let base_bias = report.get("base_bias").and_then(Json::as_f64).unwrap();
    assert!(base_bias > 0.0, "german generator must plant positive bias");

    let explanations = report
        .get("explanations")
        .and_then(Json::as_arr)
        .expect("report must carry an explanations array");
    assert!(
        !explanations.is_empty(),
        "expected at least one explanation"
    );
    assert!(explanations.len() <= 3, "--k 3 must cap the list");
    for e in explanations {
        let support = e.get("support").and_then(Json::as_f64).unwrap();
        assert!(
            support > 0.0,
            "every explanation must have positive support"
        );
        assert!(support <= 1.0);
        let pattern = e.get("pattern").and_then(Json::as_str).unwrap();
        assert!(!pattern.is_empty());
    }
}

#[test]
fn audit_reports_all_four_metrics() {
    let report = run_json(&["audit", "--data", "german", "--rows", "300", "--json"]);
    let metrics = report.get("metrics").and_then(Json::as_arr).unwrap();
    let names: Vec<&str> = metrics
        .iter()
        .map(|m| m.get("metric").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(
        names,
        [
            "statistical parity",
            "equal opportunity",
            "predictive parity",
            "average odds"
        ]
    );
    let accuracy = report.get("accuracy").and_then(Json::as_f64).unwrap();
    assert!((0.0..=1.0).contains(&accuracy));
    for group in ["privileged", "protected"] {
        let c = report.get(group).expect("confusion counts per group");
        let total: f64 = ["tp", "fp", "tn", "fn"]
            .iter()
            .map(|k| c.get(k).and_then(Json::as_f64).unwrap())
            .sum();
        assert!(total > 0.0, "{group} group must be non-empty");
    }
}

#[test]
fn report_combines_audit_and_explain() {
    let report = run_json(&["report", "--data", "german", "--rows", "300", "--k", "2"]);
    assert!(report.get("audit").is_some());
    let explain = report.get("explain").expect("report must embed explain");
    assert_eq!(explain.get("k").and_then(Json::as_f64), Some(2.0));
}

#[test]
fn explain_is_deterministic_for_a_fixed_seed() {
    let args = [
        "explain", "--data", "german", "--rows", "300", "--seed", "7", "--json",
    ];
    let a = gopher(&args);
    let b = gopher(&args);
    // search_ms / query_ms are wall-clock and vary; compare everything else.
    let strip = |bytes: &[u8]| {
        let mut v = json::parse(String::from_utf8_lossy(bytes).trim()).unwrap();
        if let Json::Obj(m) = &mut v {
            m.remove("search_ms");
            m.remove("query_ms");
        }
        v
    };
    assert_eq!(strip(&a.stdout), strip(&b.stdout));
}

/// A batch of query requests against one session must answer every request
/// with the flags as fallbacks, and the shared-metric requests must agree
/// with a standalone `explain` run on everything but timing.
#[test]
fn query_answers_batched_requests_from_one_session() {
    let dir = std::env::temp_dir().join(format!("gopher-query-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let requests = dir.join("requests.json");
    std::fs::write(
        &requests,
        r#"[
            {"metric": "statistical-parity", "k": 3},
            {"metric": "equal-opportunity", "k": 2},
            {"metric": "statistical-parity", "k": 1, "estimator": "first-order"}
        ]"#,
    )
    .unwrap();
    let out = run_json(&[
        "query",
        "--requests",
        requests.to_str().unwrap(),
        "--data",
        "german",
        "--rows",
        "400",
        "--seed",
        "7",
    ]);
    let responses = out.as_arr().expect("query emits a JSON array");
    assert_eq!(responses.len(), 3);
    let metric = |r: &Json| r.get("metric").and_then(Json::as_str).unwrap().to_string();
    assert_eq!(metric(&responses[0]), "statistical parity");
    assert_eq!(metric(&responses[1]), "equal opportunity");
    assert_eq!(
        responses[2].get("estimator").and_then(Json::as_str),
        Some("first-order")
    );
    assert!(
        responses[2]
            .get("explanations")
            .and_then(Json::as_arr)
            .unwrap()
            .len()
            <= 1
    );
    // Batched request #1 must match a cold standalone explain exactly
    // (modulo wall-clock fields).
    let solo = run_json(&[
        "explain", "--data", "german", "--rows", "400", "--seed", "7", "--k", "3", "--json",
    ]);
    let strip = |v: &Json| {
        let mut v = v.clone();
        if let Json::Obj(m) = &mut v {
            m.remove("search_ms");
            m.remove("query_ms");
        }
        v
    };
    assert_eq!(strip(&responses[0]), strip(&solo));
    std::fs::remove_dir_all(&dir).ok();
}

/// `query --stats` wraps the responses with the session's cache counters.
/// A batch mixing four metrics over one structural configuration must show
/// the two-tier split: four scored-sweep misses but a single structure
/// fetch — the whole batch shares one multi-scorer sweep, so pattern
/// enumeration and coverage intersection ran once for all four metrics.
#[test]
fn query_stats_block_shows_cross_metric_structure_reuse() {
    let dir = std::env::temp_dir().join(format!("gopher-stats-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let requests = dir.join("requests.json");
    std::fs::write(
        &requests,
        r#"[
            {"metric": "statistical-parity", "k": 2},
            {"metric": "equal-opportunity", "k": 2},
            {"metric": "predictive-parity", "k": 2},
            {"metric": "average-odds", "k": 2}
        ]"#,
    )
    .unwrap();
    let out = run_json(&[
        "query",
        "--requests",
        requests.to_str().unwrap(),
        "--data",
        "german",
        "--rows",
        "400",
        "--threads",
        "4",
        "--stats",
    ]);
    let responses = out
        .get("responses")
        .and_then(Json::as_arr)
        .expect("--stats wraps the response array");
    assert_eq!(responses.len(), 4);
    let stats = out.get("session_stats").expect("--stats adds the block");
    let counter = |k: &str| stats.get(k).and_then(Json::as_f64).unwrap();
    assert_eq!(counter("threads"), 4.0);
    assert_eq!(counter("sweep_misses"), 4.0, "four distinct scoring keys");
    assert_eq!(
        counter("structure_misses"),
        1.0,
        "one structural key: the batch shares one artifact fetch"
    );
    assert_eq!(counter("structure_entries"), 1.0);
    assert_eq!(
        counter("structure_range_hits"),
        0.0,
        "one τ, no range serves"
    );
    assert!(counter("cached_coverages") > 0.0);
    assert_eq!(counter("coverage_inserts_refused"), 0.0);
    std::fs::remove_dir_all(&dir).ok();
}

/// The τ-monotone serve end to end (the CI smoke step's offline twin): a
/// two-τ batch over one session builds exactly one structural artifact —
/// the loosest — and range-serves the tighter threshold by re-filtering,
/// reported by the `--stats` block as a `structure_range_hits` count.
#[test]
fn query_stats_block_shows_tau_range_serving() {
    let dir = std::env::temp_dir().join(format!("gopher-taus-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let requests = dir.join("taus.json");
    std::fs::write(&requests, r#"[{"support": 0.02}, {"support": 0.05}]"#).unwrap();
    let out = run_json(&[
        "query",
        "--requests",
        requests.to_str().unwrap(),
        "--data",
        "german",
        "--rows",
        "300",
        "--threads",
        "4",
        "--stats",
    ]);
    let responses = out.get("responses").and_then(Json::as_arr).unwrap();
    assert_eq!(responses.len(), 2);
    let stats = out.get("session_stats").expect("--stats adds the block");
    let counter = |k: &str| stats.get(k).and_then(Json::as_f64).unwrap();
    assert_eq!(counter("structure_misses"), 1.0, "only τ = 0.02 builds");
    assert_eq!(counter("structure_range_hits"), 1.0, "τ = 0.05 re-filters");
    assert_eq!(counter("structure_entries"), 2.0, "the view is retained");
    assert_eq!(counter("sweep_misses"), 2.0, "distinct structural keys");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_rejects_malformed_requests() {
    let out = gopher(&["query", "--data", "german", "--rows", "300"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--requests"));
}

/// End-to-end CSV import: export a german sample, re-import it through the
/// schema-inferring `--csv` path, and explain it.
#[test]
fn explain_reads_csv_datasets() {
    let dir = std::env::temp_dir().join(format!("gopher-csv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("german.csv");
    let data = gopher_data::generators::german(400, 11);
    let mut buf = Vec::new();
    gopher_data::csv::write_csv(&data, &mut buf).unwrap();
    std::fs::write(&csv_path, &buf).unwrap();

    let report = run_json(&[
        "explain",
        "--csv",
        csv_path.to_str().unwrap(),
        "--label",
        "good_credit",
        "--protected",
        "age>=45",
        "--seed",
        "11",
        "--json",
    ]);
    assert_eq!(
        report.get("rows").and_then(Json::as_f64),
        Some(400.0),
        "--rows must reflect the CSV, not the flag default"
    );
    let dataset = report.get("dataset").and_then(Json::as_str).unwrap();
    assert!(dataset.ends_with("german.csv"), "{dataset}");
    let base_bias = report.get("base_bias").and_then(Json::as_f64).unwrap();
    assert!(
        base_bias > 0.0,
        "planted age bias must survive the round trip"
    );
    assert!(!report
        .get("explanations")
        .and_then(Json::as_arr)
        .unwrap()
        .is_empty());

    // Missing --label / --protected are usage errors.
    let out = gopher(&["explain", "--csv", csv_path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--label"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_with_code_2() {
    let out = gopher(&["explain", "--data", "nonexistent"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));

    let out = gopher(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));

    // A split that would leave zero test rows must refuse to audit rather
    // than report all-zero metrics as a clean bill of health.
    let out = gopher(&["audit", "--rows", "25", "--test-fraction", "0.03"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("empty split"));

    // Seeds above 2^53 would be recorded lossily in the JSON report.
    let out = gopher(&["explain", "--seed", "18446744073709551615"]);
    assert_eq!(out.status.code(), Some(2));

    // An out-of-range support threshold is a usage error, not a panic in
    // the lattice (the artifact builder asserts the same bound internally).
    let out = gopher(&["explain", "--support", "1.5"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--support"));
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = gopher(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["explain", "audit", "report", "--json", "--support"] {
        assert!(text.contains(needle), "help must mention {needle}");
    }
}

#[test]
fn threads_flag_does_not_change_results() {
    // The parallel query engine must be invisible in the output: the same
    // query at --threads 1 and --threads 4 answers with identical
    // explanations (only the timing fields may differ).
    let args = |threads: &'static str| {
        vec![
            "query",
            "--requests",
            "-",
            "--data",
            "german",
            "--rows",
            "400",
            "--threads",
            threads,
        ]
    };
    let requests = r#"[{"metric":"statistical-parity","k":3},
        {"metric":"equal-opportunity","k":3},
        {"metric":"predictive-parity","estimator":"first-order","k":2}]"#;
    let run = |threads: &'static str| {
        let out = Command::new(env!("CARGO_BIN_EXE_gopher"))
            .args(args(threads))
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .and_then(|mut child| {
                use std::io::Write as _;
                child
                    .stdin
                    .take()
                    .expect("stdin piped")
                    .write_all(requests.as_bytes())?;
                child.wait_with_output()
            })
            .expect("failed to run gopher query");
        assert!(
            out.status.success(),
            "gopher query --threads {threads} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("stdout must be UTF-8");
        json::parse(stdout.trim()).unwrap_or_else(|e| panic!("invalid JSON ({e}): {stdout}"))
    };
    let single = run("1");
    let multi = run("4");
    let single_arr = single.as_arr().expect("array of responses");
    let multi_arr = multi.as_arr().expect("array of responses");
    assert_eq!(single_arr.len(), 3);
    assert_eq!(single_arr.len(), multi_arr.len());
    for (s, m) in single_arr.iter().zip(multi_arr) {
        assert_eq!(
            s.get("base_bias").and_then(Json::as_f64),
            m.get("base_bias").and_then(Json::as_f64)
        );
        assert_eq!(
            s.get("candidates_scored").and_then(Json::as_f64),
            m.get("candidates_scored").and_then(Json::as_f64)
        );
        let se = s.get("explanations").and_then(Json::as_arr).unwrap();
        let me = m.get("explanations").and_then(Json::as_arr).unwrap();
        assert!(!se.is_empty(), "every metric should surface a pattern here");
        assert_eq!(se.len(), me.len());
        for (a, b) in se.iter().zip(me) {
            assert_eq!(
                a.get("pattern").and_then(Json::as_str),
                b.get("pattern").and_then(Json::as_str)
            );
            assert_eq!(
                a.get("est_responsibility").and_then(Json::as_f64),
                b.get("est_responsibility").and_then(Json::as_f64)
            );
            assert_eq!(
                a.get("support").and_then(Json::as_f64),
                b.get("support").and_then(Json::as_f64)
            );
        }
    }
}

/// End-to-end smoke of the `serve` subcommand: boot the real binary on an
/// ephemeral port, create a session, coalesce three concurrent explains,
/// check the stats surface, and shut down gracefully over HTTP.
#[test]
fn serve_boots_answers_and_drains() {
    use gopher_serve::client::request_once;
    use std::io::BufRead;

    /// Kills the server if the test panics partway — an orphaned daemon
    /// would otherwise outlive the test run holding inherited pipes open.
    struct KillOnDrop(std::process::Child);
    impl Drop for KillOnDrop {
        fn drop(&mut self) {
            let _ = self.0.kill();
            let _ = self.0.wait();
        }
    }

    /// Response body minus the per-request timing fields, which legitimately
    /// differ between members of the same batch.
    fn stripped(body: &str) -> Json {
        let mut json = json::parse(body.trim()).expect("explain body must be JSON");
        if let Json::Obj(ref mut fields) = json {
            fields.remove("query_ms");
            fields.remove("search_ms");
        }
        json
    }

    let mut child = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_gopher"))
            .args([
                "serve",
                "--port",
                "0",
                "--batch-window-ms",
                "150",
                "--workers",
                "4",
            ])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("failed to spawn gopher serve"),
    );
    let stdout = child.0.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines.next().expect("server must print a banner").unwrap();
    let addr = banner
        .strip_prefix("listening on http://")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    let created = request_once(
        addr.as_str(),
        "POST",
        "/sessions",
        Some(r#"{"name":"smoke", "generator":"german", "rows":300, "seed":7}"#),
    )
    .unwrap();
    assert_eq!(created.status, 201, "{}", created.body);

    let answers: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let addr = addr.as_str();
                scope.spawn(move || {
                    request_once(
                        addr,
                        "POST",
                        "/sessions/smoke/explain",
                        Some(r#"{"metric":"statistical-parity"}"#),
                    )
                    .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for answer in &answers {
        assert_eq!(answer.status, 200, "{}", answer.body);
    }
    // Identical concurrent requests: every client must read the same answer
    // (timing fields aside — those are per-request even within a batch).
    assert!(answers
        .windows(2)
        .all(|w| stripped(&w[0].body) == stripped(&w[1].body)));

    let stats = request_once(addr.as_str(), "GET", "/sessions/smoke/stats", None).unwrap();
    assert_eq!(stats.status, 200);
    let stats_json = json::parse(stats.body.trim()).unwrap();
    let requests = stats_json
        .get("requests_served")
        .and_then(Json::as_f64)
        .unwrap();
    let batches = stats_json
        .get("batches_formed")
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(requests, 3.0);
    assert!(
        batches < requests,
        "3 concurrent explains must coalesce (batches_formed {batches})"
    );

    let ack = request_once(addr.as_str(), "POST", "/shutdown", None).unwrap();
    assert_eq!(ack.status, 200);
    let status = child.0.wait().expect("server must exit after /shutdown");
    assert!(status.success(), "serve must exit cleanly, got {status:?}");
    let rest: Vec<String> = lines.map_while(Result::ok).collect();
    assert!(
        rest.iter().any(|l| l.contains("drained")),
        "drain banner missing from {rest:?}"
    );
}
