//! End-to-end tests for the `gopher` binary: spawn the real executable and
//! validate its JSON output with the crate's own strict parser.

use gopher_cli::json::{self, Json};
use std::process::Command;

fn gopher(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_gopher"))
        .args(args)
        .output()
        .expect("failed to spawn gopher binary")
}

fn run_json(args: &[&str]) -> Json {
    let out = gopher(args);
    assert!(
        out.status.success(),
        "gopher {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("stdout must be UTF-8");
    json::parse(stdout.trim()).unwrap_or_else(|e| panic!("invalid JSON ({e}): {stdout}"))
}

#[test]
fn explain_german_emits_parseable_report_with_positive_support() {
    // Small row count keeps the lattice search fast; the german generator's
    // planted bias is strong enough to surface patterns even at this size.
    let report = run_json(&[
        "explain", "--data", "german", "--k", "3", "--rows", "400", "--json",
    ]);

    assert_eq!(
        report.get("command").and_then(Json::as_str),
        Some("explain")
    );
    assert_eq!(report.get("dataset").and_then(Json::as_str), Some("german"));
    let base_bias = report.get("base_bias").and_then(Json::as_f64).unwrap();
    assert!(base_bias > 0.0, "german generator must plant positive bias");

    let explanations = report
        .get("explanations")
        .and_then(Json::as_arr)
        .expect("report must carry an explanations array");
    assert!(
        !explanations.is_empty(),
        "expected at least one explanation"
    );
    assert!(explanations.len() <= 3, "--k 3 must cap the list");
    for e in explanations {
        let support = e.get("support").and_then(Json::as_f64).unwrap();
        assert!(
            support > 0.0,
            "every explanation must have positive support"
        );
        assert!(support <= 1.0);
        let pattern = e.get("pattern").and_then(Json::as_str).unwrap();
        assert!(!pattern.is_empty());
    }
}

#[test]
fn audit_reports_all_four_metrics() {
    let report = run_json(&["audit", "--data", "german", "--rows", "300", "--json"]);
    let metrics = report.get("metrics").and_then(Json::as_arr).unwrap();
    let names: Vec<&str> = metrics
        .iter()
        .map(|m| m.get("metric").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(
        names,
        [
            "statistical parity",
            "equal opportunity",
            "predictive parity",
            "average odds"
        ]
    );
    let accuracy = report.get("accuracy").and_then(Json::as_f64).unwrap();
    assert!((0.0..=1.0).contains(&accuracy));
    for group in ["privileged", "protected"] {
        let c = report.get(group).expect("confusion counts per group");
        let total: f64 = ["tp", "fp", "tn", "fn"]
            .iter()
            .map(|k| c.get(k).and_then(Json::as_f64).unwrap())
            .sum();
        assert!(total > 0.0, "{group} group must be non-empty");
    }
}

#[test]
fn report_combines_audit_and_explain() {
    let report = run_json(&["report", "--data", "german", "--rows", "300", "--k", "2"]);
    assert!(report.get("audit").is_some());
    let explain = report.get("explain").expect("report must embed explain");
    assert_eq!(explain.get("k").and_then(Json::as_f64), Some(2.0));
}

#[test]
fn explain_is_deterministic_for_a_fixed_seed() {
    let args = [
        "explain", "--data", "german", "--rows", "300", "--seed", "7", "--json",
    ];
    let a = gopher(&args);
    let b = gopher(&args);
    // search_ms is wall-clock and varies; compare everything else.
    let strip = |bytes: &[u8]| {
        let mut v = json::parse(String::from_utf8_lossy(bytes).trim()).unwrap();
        if let Json::Obj(m) = &mut v {
            m.remove("search_ms");
        }
        v
    };
    assert_eq!(strip(&a.stdout), strip(&b.stdout));
}

#[test]
fn usage_errors_exit_with_code_2() {
    let out = gopher(&["explain", "--data", "nonexistent"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));

    let out = gopher(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));

    // A split that would leave zero test rows must refuse to audit rather
    // than report all-zero metrics as a clean bill of health.
    let out = gopher(&["audit", "--rows", "25", "--test-fraction", "0.03"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("empty split"));

    // Seeds above 2^53 would be recorded lossily in the JSON report.
    let out = gopher(&["explain", "--seed", "18446744073709551615"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = gopher(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["explain", "audit", "report", "--json", "--support"] {
        assert!(text.contains(needle), "help must mention {needle}");
    }
}
