//! The legacy `Gopher` façade and the report types shared with the
//! query-oriented [`session`](crate::session) API.
//!
//! [`Gopher`] predates [`ExplainSession`] and re-paid
//! the full setup (encoding, training, Hessian factorization, predicate
//! generation) on every construction while bundling per-query knobs into the
//! per-model [`GopherConfig`]. It now delegates everything to an internal
//! session, so it stays bit-compatible with old code, but new code should
//! build a [`SessionBuilder`] and iterate with [`ExplainRequest`]s instead —
//! see the README migration note.

use crate::session::{ExplainRequest, ExplainSession, SessionBuilder};
use gopher_data::{Dataset, Encoded, Encoder};
use gopher_fairness::FairnessMetric;
use gopher_influence::{
    BiasEval, Estimator, HessianBackend, InfluenceConfig, InfluenceEngine, ModelFamily,
};
use gopher_patterns::{Candidate, LatticeConfig, PredicateTable, SearchStats};
use std::time::Duration;

/// End-to-end configuration for the legacy [`Gopher`] façade: the union of
/// session-level options (`max_bins`, `influence`) and per-query options
/// (everything else, mirrored by [`ExplainRequest`]).
#[derive(Debug, Clone)]
pub struct GopherConfig {
    /// Fairness metric to debug.
    pub metric: FairnessMetric,
    /// Number of explanations to return.
    pub k: usize,
    /// Containment threshold `c` for diversity (Definition 3.7).
    pub containment_threshold: f64,
    /// Lattice search parameters (support threshold τ, depth, pruning).
    pub lattice: LatticeConfig,
    /// Influence estimator used to score candidate patterns.
    pub estimator: Estimator,
    /// How estimated parameter changes become bias changes.
    pub bias_eval: BiasEval,
    /// Influence-engine parameters (damping, CG budget, …).
    pub influence: InfluenceConfig,
    /// Quantile bins per numeric feature for predicate generation.
    pub max_bins: usize,
    /// Retrain without each top-k subset to report ground-truth Δbias
    /// (the paper reports this for every table; costs k retrainings).
    pub ground_truth_for_topk: bool,
    /// Re-score the top candidates with the second-order estimator before
    /// the final ranking (cheap: only the survivors of the containment
    /// filter are re-scored). Off by default to match the paper.
    pub rescore_top_with_so: bool,
}

impl Default for GopherConfig {
    fn default() -> Self {
        Self {
            metric: FairnessMetric::StatisticalParity,
            k: 3,
            containment_threshold: 0.75,
            lattice: LatticeConfig::default(),
            estimator: Estimator::SecondOrder,
            bias_eval: BiasEval::ChainRule,
            influence: InfluenceConfig::default(),
            max_bins: 4,
            ground_truth_for_topk: true,
            rescore_top_with_so: false,
        }
    }
}

impl GopherConfig {
    /// The per-query half of this config as an [`ExplainRequest`] (the
    /// session-level half — `max_bins`, `influence` — belongs to
    /// [`SessionBuilder`]).
    pub fn to_request(&self) -> ExplainRequest {
        ExplainRequest {
            metric: self.metric,
            k: self.k,
            containment_threshold: self.containment_threshold,
            lattice: self.lattice.clone(),
            estimator: self.estimator,
            bias_eval: self.bias_eval,
            ground_truth_for_topk: self.ground_truth_for_topk,
            rescore_top_with_so: self.rescore_top_with_so,
        }
    }

    /// The session-level half of this config as a [`SessionBuilder`].
    pub fn to_session_builder(&self) -> SessionBuilder {
        SessionBuilder::new()
            .max_bins(self.max_bins)
            .influence(self.influence.clone())
    }
}

/// One explanation in the final report.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Human-readable pattern, e.g. `age >= 45 ∧ gender = Female`.
    pub pattern_text: String,
    /// The underlying scored candidate (coverage, support, scores).
    pub candidate: Candidate,
    /// `Sup(φ)` — fraction of training rows covered.
    pub support: f64,
    /// Estimated causal responsibility from the influence estimator.
    pub est_responsibility: f64,
    /// Ground-truth relative bias reduction from actually retraining
    /// without the subset: `(F_old − F_new)/F_old` (only when
    /// `ground_truth_for_topk` is set).
    pub ground_truth_responsibility: Option<f64>,
    /// Ground-truth bias after removal (hard metric).
    pub ground_truth_new_bias: Option<f64>,
}

/// The full explanation report.
#[derive(Debug, Clone)]
pub struct ExplanationReport {
    /// Metric the report is about.
    pub metric: FairnessMetric,
    /// Bias of the original model on the test set (hard metric).
    pub base_bias: f64,
    /// Test accuracy of the original model.
    pub accuracy: f64,
    /// Top-k explanations, most interesting first.
    pub explanations: Vec<Explanation>,
    /// Lattice search statistics (per-level counts and timings).
    pub stats: SearchStats,
    /// Wall-clock time of candidate generation + selection (excludes
    /// engine precomputation and ground-truth retraining). For a warm
    /// session reusing a cached sweep this reports the original sweep's
    /// cost plus the (tiny) selection time.
    pub search_time: Duration,
}

/// Label/group composition of a pattern's coverage vs. the rest of the
/// training data (see [`ExplainSession::pattern_profile`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PatternProfile {
    /// Covered training rows.
    pub rows: usize,
    /// Favorable-label rate inside the pattern.
    pub positive_rate: f64,
    /// Privileged-group rate inside the pattern.
    pub privileged_rate: f64,
    /// Favorable-label rate outside the pattern.
    pub rest_positive_rate: f64,
    /// Privileged-group rate outside the pattern.
    pub rest_privileged_rate: f64,
}

/// The legacy one-shot explainer: an [`ExplainSession`] bundled with one
/// fixed [`GopherConfig`].
///
/// Every call re-derives its answer through the session, so results are
/// identical to the query API's; but the session is rebuilt per `Gopher`,
/// which re-pays encoding, training, and Hessian precomputation that a
/// shared [`ExplainSession`] amortizes across queries.
#[deprecated(
    since = "0.2.0",
    note = "build an ExplainSession via SessionBuilder and pass ExplainRequests; \
            see the README migration note"
)]
pub struct Gopher<M: ModelFamily> {
    session: ExplainSession<M>,
    config: GopherConfig,
}

#[allow(deprecated)]
impl<M: ModelFamily> Gopher<M> {
    /// Builds an explainer around an **already trained** model. The model
    /// must have been trained on `Encoder::fit(train_raw)`-encoded data;
    /// influence functions assume its parameters are a stationary point.
    pub fn new(model: M, train_raw: &Dataset, test_raw: &Dataset, config: GopherConfig) -> Self {
        let session = config
            .to_session_builder()
            .build(model, train_raw, test_raw);
        Self { session, config }
    }

    /// Convenience constructor that encodes the data, builds the model via
    /// `make_model(n_encoded_cols)`, trains it to convergence, and wraps it.
    pub fn fit(
        make_model: impl FnOnce(usize) -> M,
        train_raw: &Dataset,
        test_raw: &Dataset,
        config: GopherConfig,
    ) -> Self {
        let session = config
            .to_session_builder()
            .fit(make_model, train_raw, test_raw);
        Self { session, config }
    }

    /// The underlying session (the forward-looking API).
    pub fn session(&self) -> &ExplainSession<M> {
        &self.session
    }

    /// The trained model.
    pub fn model(&self) -> &M {
        self.session.model()
    }

    /// The fitted encoder.
    pub fn encoder(&self) -> &Encoder {
        self.session.encoder()
    }

    /// The encoded training set.
    pub fn train(&self) -> &Encoded {
        self.session.train()
    }

    /// The encoded test set.
    pub fn test(&self) -> &Encoded {
        self.session.test()
    }

    /// The raw training dataset.
    pub fn train_raw(&self) -> &Dataset {
        self.session.train_raw()
    }

    /// The influence engine (for advanced queries). Hessian-backed
    /// families only — non-differentiable families fail to type-check here.
    pub fn engine(&self) -> &InfluenceEngine<M>
    where
        M: ModelFamily<Backend = HessianBackend<M>> + gopher_models::Differentiable,
    {
        self.session.engine()
    }

    /// The candidate predicate table.
    pub fn predicate_table(&self) -> &PredicateTable {
        self.session.predicate_table()
    }

    /// The explainer configuration.
    pub fn config(&self) -> &GopherConfig {
        &self.config
    }

    /// Runs the full pipeline: lattice search (Algorithm 1), diverse top-k
    /// selection (Algorithm 2), and optional ground-truth verification.
    pub fn explain(&self) -> ExplanationReport {
        self.session.explain(&self.config.to_request()).report
    }

    /// See [`ExplainSession::pattern_profile`].
    pub fn pattern_profile(&self, candidate: &Candidate) -> PatternProfile {
        self.session.pattern_profile(candidate)
    }

    /// Ground-truth responsibility of an arbitrary row subset (retrains),
    /// under the configured metric.
    pub fn ground_truth_responsibility(&self, rows: &[u32]) -> (f64, f64) {
        self.session
            .ground_truth_responsibility(self.config.metric, rows)
    }
}

#[cfg(test)]
#[allow(deprecated)] // the façade must keep matching the session bit for bit
mod tests {
    use super::*;
    use crate::session::SessionBuilder;
    use gopher_data::generators::german;
    use gopher_models::LogisticRegression;
    use gopher_prng::Rng;

    fn build(n: usize, seed: u64) -> Gopher<LogisticRegression> {
        let mut rng = Rng::new(seed);
        let (train, test) = german(n, seed).train_test_split(0.3, &mut rng);
        Gopher::fit(
            |cols| LogisticRegression::new(cols, 1e-3),
            &train,
            &test,
            GopherConfig {
                ground_truth_for_topk: true,
                ..Default::default()
            },
        )
    }

    #[test]
    fn end_to_end_finds_bias_reducing_patterns() {
        let gopher = build(900, 71);
        let report = gopher.explain();
        assert!(report.base_bias > 0.0, "baseline bias {}", report.base_bias);
        assert!(!report.explanations.is_empty());
        assert!(report.explanations.len() <= 3);
        // The top explanation must genuinely reduce bias when removed.
        let top = &report.explanations[0];
        let gt = top
            .ground_truth_responsibility
            .expect("ground truth requested");
        assert!(gt > 0.0, "top pattern should reduce bias, got {gt}");
        // Interestingness ordering is non-increasing.
        for w in report.explanations.windows(2) {
            assert!(
                w[0].candidate.interestingness >= w[1].candidate.interestingness - 1e-12,
                "explanations out of order"
            );
        }
    }

    #[test]
    fn top_pattern_mentions_planted_root_cause() {
        let gopher = build(1200, 72);
        let report = gopher.explain();
        // The generator plants age/gender subgroups as the dominant bias
        // source; at least one top pattern should reference one of them.
        let mentions_planted = report
            .explanations
            .iter()
            .any(|e| e.pattern_text.contains("age") || e.pattern_text.contains("gender"));
        let texts: Vec<&str> = report
            .explanations
            .iter()
            .map(|e| e.pattern_text.as_str())
            .collect();
        assert!(
            mentions_planted,
            "no planted feature in explanations: {texts:?}"
        );
    }

    #[test]
    fn explanations_respect_support_threshold() {
        let gopher = build(700, 73);
        let report = gopher.explain();
        for e in &report.explanations {
            assert!(e.support >= gopher.config().lattice.support_threshold);
        }
    }

    #[test]
    fn explanations_are_diverse() {
        let gopher = build(700, 74);
        let report = gopher.explain();
        let c = gopher.config().containment_threshold;
        for (i, a) in report.explanations.iter().enumerate() {
            for b in &report.explanations[..i] {
                let contain = gopher_patterns::topk::containment(&a.candidate, &b.candidate);
                assert!(contain < c, "containment {contain} >= threshold {c}");
            }
        }
    }

    #[test]
    fn pattern_profile_contrasts_coverage_with_rest() {
        let gopher = build(800, 76);
        let report = gopher.explain();
        let top = &report.explanations[0];
        let profile = gopher.pattern_profile(&top.candidate);
        assert_eq!(profile.rows, top.candidate.coverage.count());
        for rate in [
            profile.positive_rate,
            profile.privileged_rate,
            profile.rest_positive_rate,
            profile.rest_privileged_rate,
        ] {
            assert!((0.0..=1.0).contains(&rate));
        }
        // Bias-responsible patterns on German skew toward the privileged
        // group and/or positive labels relative to the rest.
        assert!(
            profile.privileged_rate > profile.rest_privileged_rate
                || profile.positive_rate > profile.rest_positive_rate,
            "profile should show the skew that makes the pattern responsible: {profile:?}"
        );
    }

    #[test]
    fn stats_are_populated() {
        let gopher = build(600, 75);
        let report = gopher.explain();
        assert!(!report.stats.levels.is_empty());
        assert!(report.stats.total_scored > 0);
        assert!(report.search_time.as_nanos() > 0);
    }

    /// The façade and a hand-built session must agree exactly on the same
    /// inputs — this is the compatibility contract of the deprecation.
    #[test]
    fn facade_matches_hand_built_session() {
        let mut rng = Rng::new(77);
        let (train, test) = german(700, 77).train_test_split(0.3, &mut rng);
        let config = GopherConfig {
            ground_truth_for_topk: false,
            ..Default::default()
        };
        let gopher = Gopher::fit(
            |cols| LogisticRegression::new(cols, 1e-3),
            &train,
            &test,
            config.clone(),
        );
        let facade_report = gopher.explain();
        let session =
            SessionBuilder::new().fit(|cols| LogisticRegression::new(cols, 1e-3), &train, &test);
        let session_report = session.explain(&config.to_request()).report;
        assert_eq!(facade_report.base_bias, session_report.base_bias);
        assert_eq!(facade_report.accuracy, session_report.accuracy);
        assert_eq!(
            facade_report.explanations.len(),
            session_report.explanations.len()
        );
        for (a, b) in facade_report
            .explanations
            .iter()
            .zip(&session_report.explanations)
        {
            assert_eq!(a.pattern_text, b.pattern_text);
            assert_eq!(a.est_responsibility, b.est_responsibility);
            assert_eq!(a.support, b.support);
        }
    }
}
