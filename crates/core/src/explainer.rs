//! The Gopher façade: end-to-end top-k explanation generation.

use gopher_data::{Dataset, Encoded, Encoder};
use gopher_fairness::FairnessMetric;
use gopher_influence::{
    retrain_without, BiasEval, BiasInfluence, Estimator, InfluenceConfig, InfluenceEngine,
};
use gopher_models::train::fit_default;
use gopher_models::Model;
use gopher_patterns::{
    generate_predicates, lattice, topk, Candidate, LatticeConfig, PredicateTable, SearchStats,
};
use std::time::{Duration, Instant};

/// End-to-end configuration.
#[derive(Debug, Clone)]
pub struct GopherConfig {
    /// Fairness metric to debug.
    pub metric: FairnessMetric,
    /// Number of explanations to return.
    pub k: usize,
    /// Containment threshold `c` for diversity (Definition 3.7).
    pub containment_threshold: f64,
    /// Lattice search parameters (support threshold τ, depth, pruning).
    pub lattice: LatticeConfig,
    /// Influence estimator used to score candidate patterns.
    pub estimator: Estimator,
    /// How estimated parameter changes become bias changes.
    pub bias_eval: BiasEval,
    /// Influence-engine parameters (damping, CG budget, …).
    pub influence: InfluenceConfig,
    /// Quantile bins per numeric feature for predicate generation.
    pub max_bins: usize,
    /// Retrain without each top-k subset to report ground-truth Δbias
    /// (the paper reports this for every table; costs k retrainings).
    pub ground_truth_for_topk: bool,
    /// Re-score the top candidates with the second-order estimator before
    /// the final ranking (cheap: only the survivors of the containment
    /// filter are re-scored). Off by default to match the paper.
    pub rescore_top_with_so: bool,
}

impl Default for GopherConfig {
    fn default() -> Self {
        Self {
            metric: FairnessMetric::StatisticalParity,
            k: 3,
            containment_threshold: 0.75,
            lattice: LatticeConfig::default(),
            estimator: Estimator::SecondOrder,
            bias_eval: BiasEval::ChainRule,
            influence: InfluenceConfig::default(),
            max_bins: 4,
            ground_truth_for_topk: true,
            rescore_top_with_so: false,
        }
    }
}

/// One explanation in the final report.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Human-readable pattern, e.g. `age >= 45 ∧ gender = Female`.
    pub pattern_text: String,
    /// The underlying scored candidate (coverage, support, scores).
    pub candidate: Candidate,
    /// `Sup(φ)` — fraction of training rows covered.
    pub support: f64,
    /// Estimated causal responsibility from the influence estimator.
    pub est_responsibility: f64,
    /// Ground-truth relative bias reduction from actually retraining
    /// without the subset: `(F_old − F_new)/F_old` (only when
    /// `ground_truth_for_topk` is set).
    pub ground_truth_responsibility: Option<f64>,
    /// Ground-truth bias after removal (hard metric).
    pub ground_truth_new_bias: Option<f64>,
}

/// The full explanation report.
#[derive(Debug, Clone)]
pub struct ExplanationReport {
    /// Metric the report is about.
    pub metric: FairnessMetric,
    /// Bias of the original model on the test set (hard metric).
    pub base_bias: f64,
    /// Test accuracy of the original model.
    pub accuracy: f64,
    /// Top-k explanations, most interesting first.
    pub explanations: Vec<Explanation>,
    /// Lattice search statistics (per-level counts and timings).
    pub stats: SearchStats,
    /// Wall-clock time of candidate generation + selection (excludes
    /// engine precomputation and ground-truth retraining).
    pub search_time: Duration,
}

/// Label/group composition of a pattern's coverage vs. the rest of the
/// training data (see [`Gopher::pattern_profile`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PatternProfile {
    /// Covered training rows.
    pub rows: usize,
    /// Favorable-label rate inside the pattern.
    pub positive_rate: f64,
    /// Privileged-group rate inside the pattern.
    pub privileged_rate: f64,
    /// Favorable-label rate outside the pattern.
    pub rest_positive_rate: f64,
    /// Privileged-group rate outside the pattern.
    pub rest_privileged_rate: f64,
}

/// The Gopher explainer, holding everything needed to answer explanation
/// queries against one trained model: the raw training data (for patterns),
/// its encoding, the influence engine, and the test set.
pub struct Gopher<M: Model> {
    config: GopherConfig,
    train_raw: Dataset,
    encoder: Encoder,
    train: Encoded,
    test: Encoded,
    engine: InfluenceEngine<M>,
    table: PredicateTable,
}

impl<M: Model> Gopher<M> {
    /// Builds an explainer around an **already trained** model. The model
    /// must have been trained on `Encoder::fit(train_raw)`-encoded data;
    /// influence functions assume its parameters are a stationary point.
    pub fn new(model: M, train_raw: &Dataset, test_raw: &Dataset, config: GopherConfig) -> Self {
        let encoder = Encoder::fit(train_raw);
        let train = encoder.transform(train_raw);
        let test = encoder.transform(test_raw);
        assert_eq!(
            model.n_inputs(),
            train.n_cols(),
            "model input width must match the encoded data"
        );
        let engine = InfluenceEngine::new(model, &train, config.influence.clone());
        let table = generate_predicates(train_raw, config.max_bins);
        Self {
            config,
            train_raw: train_raw.clone(),
            encoder,
            train,
            test,
            engine,
            table,
        }
    }

    /// Convenience constructor that encodes the data, builds the model via
    /// `make_model(n_encoded_cols)`, trains it to convergence, and wraps it.
    pub fn fit(
        make_model: impl FnOnce(usize) -> M,
        train_raw: &Dataset,
        test_raw: &Dataset,
        config: GopherConfig,
    ) -> Self {
        let encoder = Encoder::fit(train_raw);
        let train = encoder.transform(train_raw);
        let mut model = make_model(train.n_cols());
        fit_default(&mut model, &train);
        Self::new(model, train_raw, test_raw, config)
    }

    /// The trained model.
    pub fn model(&self) -> &M {
        self.engine.model()
    }

    /// The fitted encoder.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// The encoded training set.
    pub fn train(&self) -> &Encoded {
        &self.train
    }

    /// The encoded test set.
    pub fn test(&self) -> &Encoded {
        &self.test
    }

    /// The raw training dataset.
    pub fn train_raw(&self) -> &Dataset {
        &self.train_raw
    }

    /// The influence engine (for advanced queries).
    pub fn engine(&self) -> &InfluenceEngine<M> {
        &self.engine
    }

    /// The candidate predicate table.
    pub fn predicate_table(&self) -> &PredicateTable {
        &self.table
    }

    /// The explainer configuration.
    pub fn config(&self) -> &GopherConfig {
        &self.config
    }

    /// Runs the full pipeline: lattice search (Algorithm 1), diverse top-k
    /// selection (Algorithm 2), and optional ground-truth verification.
    pub fn explain(&self) -> ExplanationReport {
        let bi = BiasInfluence::new(&self.engine, self.config.metric, &self.test);
        let base_bias = bi.base_bias();
        let accuracy = gopher_models::train::accuracy(self.engine.model(), &self.test);

        let t0 = Instant::now();
        let (candidates, stats) = lattice::compute_candidates(
            &self.table,
            |coverage| {
                let rows = coverage.to_indices();
                bi.responsibility(
                    &self.train,
                    &rows,
                    self.config.estimator,
                    self.config.bias_eval,
                )
            },
            &self.config.lattice,
        );
        let mut selected = topk::top_k(
            &candidates,
            self.config.k,
            self.config.containment_threshold,
        );
        if self.config.rescore_top_with_so {
            for cand in &mut selected {
                let rows = cand.coverage.to_indices();
                cand.responsibility = bi.responsibility(
                    &self.train,
                    &rows,
                    Estimator::SecondOrder,
                    self.config.bias_eval,
                );
                cand.interestingness = cand.responsibility / cand.support;
            }
            selected.sort_by(|a, b| {
                b.interestingness
                    .partial_cmp(&a.interestingness)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        let search_time = t0.elapsed();

        let explanations = selected
            .into_iter()
            .map(|candidate| self.finalize_explanation(candidate, base_bias))
            .collect();

        ExplanationReport {
            metric: self.config.metric,
            base_bias,
            accuracy,
            explanations,
            stats,
            search_time,
        }
    }

    /// Descriptive statistics of a pattern's coverage, for reports: how the
    /// covered rows differ from the rest of the training data in label and
    /// group composition. This is the "why is this subset responsible"
    /// context a reviewer needs next to the raw responsibility number.
    pub fn pattern_profile(&self, candidate: &Candidate) -> PatternProfile {
        let n = self.train.n_rows();
        let mut in_pos = 0usize;
        let mut in_priv = 0usize;
        let mut in_count = 0usize;
        let mut out_pos = 0usize;
        let mut out_priv = 0usize;
        for r in 0..n {
            let covered = candidate.coverage.contains(r);
            let pos = self.train.y[r] == 1.0;
            let priv_ = self.train.privileged[r];
            if covered {
                in_count += 1;
                in_pos += usize::from(pos);
                in_priv += usize::from(priv_);
            } else {
                out_pos += usize::from(pos);
                out_priv += usize::from(priv_);
            }
        }
        let out_count = n - in_count;
        let frac = |num: usize, den: usize| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        PatternProfile {
            rows: in_count,
            positive_rate: frac(in_pos, in_count),
            privileged_rate: frac(in_priv, in_count),
            rest_positive_rate: frac(out_pos, out_count),
            rest_privileged_rate: frac(out_priv, out_count),
        }
    }

    /// Ground-truth responsibility of an arbitrary row subset (retrains).
    pub fn ground_truth_responsibility(&self, rows: &[u32]) -> (f64, f64) {
        let outcome = retrain_without(self.engine.model(), &self.train, rows);
        let new_bias = gopher_fairness::bias(self.config.metric, &outcome.model, &self.test);
        let base = gopher_fairness::bias(self.config.metric, self.engine.model(), &self.test);
        let resp = if base.abs() < 1e-12 {
            0.0
        } else {
            (base - new_bias) / base
        };
        (resp, new_bias)
    }

    fn finalize_explanation(&self, candidate: Candidate, base_bias: f64) -> Explanation {
        let pattern_text = candidate
            .pattern
            .render(&self.table, self.train_raw.schema());
        let (gt_resp, gt_new) = if self.config.ground_truth_for_topk {
            let rows = candidate.coverage.to_indices();
            let (resp, new_bias) = self.ground_truth_responsibility(&rows);
            (Some(resp), Some(new_bias))
        } else {
            (None, None)
        };
        let _ = base_bias;
        Explanation {
            pattern_text,
            support: candidate.support,
            est_responsibility: candidate.responsibility,
            ground_truth_responsibility: gt_resp,
            ground_truth_new_bias: gt_new,
            candidate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopher_data::generators::german;
    use gopher_models::LogisticRegression;
    use gopher_prng::Rng;

    fn build(n: usize, seed: u64) -> Gopher<LogisticRegression> {
        let mut rng = Rng::new(seed);
        let (train, test) = german(n, seed).train_test_split(0.3, &mut rng);
        Gopher::fit(
            |cols| LogisticRegression::new(cols, 1e-3),
            &train,
            &test,
            GopherConfig {
                ground_truth_for_topk: true,
                ..Default::default()
            },
        )
    }

    #[test]
    fn end_to_end_finds_bias_reducing_patterns() {
        let gopher = build(900, 71);
        let report = gopher.explain();
        assert!(report.base_bias > 0.0, "baseline bias {}", report.base_bias);
        assert!(!report.explanations.is_empty());
        assert!(report.explanations.len() <= 3);
        // The top explanation must genuinely reduce bias when removed.
        let top = &report.explanations[0];
        let gt = top
            .ground_truth_responsibility
            .expect("ground truth requested");
        assert!(gt > 0.0, "top pattern should reduce bias, got {gt}");
        // Interestingness ordering is non-increasing.
        for w in report.explanations.windows(2) {
            assert!(
                w[0].candidate.interestingness >= w[1].candidate.interestingness - 1e-12,
                "explanations out of order"
            );
        }
    }

    #[test]
    fn top_pattern_mentions_planted_root_cause() {
        let gopher = build(1200, 72);
        let report = gopher.explain();
        // The generator plants age/gender subgroups as the dominant bias
        // source; at least one top pattern should reference one of them.
        let mentions_planted = report
            .explanations
            .iter()
            .any(|e| e.pattern_text.contains("age") || e.pattern_text.contains("gender"));
        let texts: Vec<&str> = report
            .explanations
            .iter()
            .map(|e| e.pattern_text.as_str())
            .collect();
        assert!(
            mentions_planted,
            "no planted feature in explanations: {texts:?}"
        );
    }

    #[test]
    fn explanations_respect_support_threshold() {
        let gopher = build(700, 73);
        let report = gopher.explain();
        for e in &report.explanations {
            assert!(e.support >= gopher.config().lattice.support_threshold);
        }
    }

    #[test]
    fn explanations_are_diverse() {
        let gopher = build(700, 74);
        let report = gopher.explain();
        let c = gopher.config().containment_threshold;
        for (i, a) in report.explanations.iter().enumerate() {
            for b in &report.explanations[..i] {
                let contain = topk::containment(&a.candidate, &b.candidate);
                assert!(contain < c, "containment {contain} >= threshold {c}");
            }
        }
    }

    #[test]
    fn pattern_profile_contrasts_coverage_with_rest() {
        let gopher = build(800, 76);
        let report = gopher.explain();
        let top = &report.explanations[0];
        let profile = gopher.pattern_profile(&top.candidate);
        assert_eq!(profile.rows, top.candidate.coverage.count());
        for rate in [
            profile.positive_rate,
            profile.privileged_rate,
            profile.rest_positive_rate,
            profile.rest_privileged_rate,
        ] {
            assert!((0.0..=1.0).contains(&rate));
        }
        // Bias-responsible patterns on German skew toward the privileged
        // group and/or positive labels relative to the rest.
        assert!(
            profile.privileged_rate > profile.rest_privileged_rate
                || profile.positive_rate > profile.rest_positive_rate,
            "profile should show the skew that makes the pattern responsible: {profile:?}"
        );
    }

    #[test]
    fn stats_are_populated() {
        let gopher = build(600, 75);
        let report = gopher.explain();
        assert!(!report.stats.levels.is_empty());
        assert!(report.stats.total_scored > 0);
        assert!(report.search_time.as_nanos() > 0);
    }
}
