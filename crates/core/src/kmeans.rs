//! k-means clustering (k-means++ initialization, Lloyd iterations).
//!
//! Used by the poisoning-detection pipeline (paper §6.7): the training data
//! is clustered and clusters are ranked by estimated influence on bias.

use gopher_linalg::{vecops, Matrix};
use gopher_prng::Rng;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// `k × d` centroid matrix.
    pub centroids: Matrix,
    /// Cluster id per input row.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f64,
    /// Lloyd iterations performed.
    pub iterations: usize,
}

impl KMeans {
    /// Rows belonging to cluster `c`.
    pub fn members(&self, c: usize) -> Vec<u32> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == c)
            .map(|(r, _)| r as u32)
            .collect()
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }
}

/// Runs k-means with k-means++ seeding.
///
/// # Panics
/// If `k == 0` or `k > x.rows()`.
pub fn kmeans(x: &Matrix, k: usize, max_iters: usize, rng: &mut Rng) -> KMeans {
    let n = x.rows();
    let d = x.cols();
    assert!(k > 0, "k must be positive");
    assert!(k <= n, "cannot build {k} clusters from {n} points");

    // k-means++ initialization.
    let mut centroids = Matrix::zeros(k, d);
    let first = rng.range(0, n);
    centroids.row_mut(0).copy_from_slice(x.row(first));
    let mut dist2: Vec<f64> = (0..n)
        .map(|r| {
            let diff = vecops::distance(x.row(r), centroids.row(0));
            diff * diff
        })
        .collect();
    for c in 1..k {
        let total: f64 = dist2.iter().sum();
        let chosen = if total <= 0.0 {
            rng.range(0, n)
        } else {
            // Sample proportional to squared distance.
            let target = rng.uniform() * total;
            let mut acc = 0.0;
            let mut pick = n - 1;
            for (r, &d2) in dist2.iter().enumerate() {
                acc += d2;
                if acc >= target {
                    pick = r;
                    break;
                }
            }
            pick
        };
        centroids.row_mut(c).copy_from_slice(x.row(chosen));
        for r in 0..n {
            let diff = vecops::distance(x.row(r), centroids.row(c));
            dist2[r] = dist2[r].min(diff * diff);
        }
    }

    // Lloyd iterations.
    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    for iter in 0..max_iters {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        for r in 0..n {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let dist = vecops::distance(x.row(r), centroids.row(c));
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            if assignments[r] != best {
                assignments[r] = best;
                changed = true;
            }
        }
        if !changed && iter > 0 {
            break;
        }
        // Update step.
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for r in 0..n {
            let c = assignments[r];
            vecops::axpy(1.0, x.row(r), sums.row_mut(c));
            counts[c] += 1;
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at a random point.
                let r = rng.range(0, n);
                centroids.row_mut(c).copy_from_slice(x.row(r));
            } else {
                let inv = 1.0 / counts[c] as f64;
                let row = sums.row(c).to_vec();
                for (dst, v) in centroids.row_mut(c).iter_mut().zip(row) {
                    *dst = v * inv;
                }
            }
        }
    }

    let inertia = (0..n)
        .map(|r| {
            let dist = vecops::distance(x.row(r), centroids.row(assignments[r]));
            dist * dist
        })
        .sum();
    KMeans {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated Gaussian blobs.
    fn blobs(rng: &mut Rng) -> (Matrix, Vec<usize>) {
        let centers = [[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]];
        let n_per = 50;
        let mut x = Matrix::zeros(3 * n_per, 2);
        let mut truth = Vec::new();
        for (c, center) in centers.iter().enumerate() {
            for i in 0..n_per {
                let r = c * n_per + i;
                x[(r, 0)] = center[0] + rng.normal_with(0.0, 0.5);
                x[(r, 1)] = center[1] + rng.normal_with(0.0, 0.5);
                truth.push(c);
            }
        }
        (x, truth)
    }

    #[test]
    fn recovers_separated_blobs() {
        let mut rng = Rng::new(101);
        let (x, truth) = blobs(&mut rng);
        let result = kmeans(&x, 3, 50, &mut rng);
        // Every true cluster must map to exactly one k-means cluster.
        for c in 0..3 {
            let ids: std::collections::BTreeSet<usize> = truth
                .iter()
                .enumerate()
                .filter(|(_, &t)| t == c)
                .map(|(r, _)| result.assignments[r])
                .collect();
            assert_eq!(
                ids.len(),
                1,
                "true cluster {c} split across k-means clusters"
            );
        }
        assert!(result.inertia < 3.0 * 150.0, "inertia {}", result.inertia);
    }

    #[test]
    fn members_partition_rows() {
        let mut rng = Rng::new(102);
        let (x, _) = blobs(&mut rng);
        let result = kmeans(&x, 5, 30, &mut rng);
        let total: usize = (0..5).map(|c| result.members(c).len()).sum();
        assert_eq!(total, x.rows());
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let mut rng = Rng::new(103);
        let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0], vec![9.0, 1.0]]);
        let result = kmeans(&x, 3, 20, &mut rng);
        assert!(result.inertia < 1e-18, "inertia {}", result.inertia);
    }

    #[test]
    #[should_panic(expected = "cannot build")]
    fn rejects_k_above_n() {
        let mut rng = Rng::new(104);
        let x = Matrix::zeros(2, 2);
        let _ = kmeans(&x, 3, 10, &mut rng);
    }
}
