//! Plain-text table rendering for the experiment harness.

/// A simple fixed-width text table builder.
///
/// ```
/// use gopher_core::report::TextTable;
/// let mut t = TextTable::new(&["Pattern", "Support", "Δbias"]);
/// t.row(&["gender = Female", "5.0%", "55.2%"]);
/// let rendered = t.render();
/// assert!(rendered.contains("gender = Female"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    /// On column-count mismatch.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with padded columns and a separator under the header.
    pub fn render(&self) -> String {
        let n_cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| display_width(h)).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(display_width(cell));
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                out.push_str(cell);
                let pad = widths[c].saturating_sub(display_width(cell));
                if c + 1 < n_cols {
                    out.extend(std::iter::repeat_n(' ', pad + 2));
                }
            }
            out.push('\n');
        };
        render_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols - 1);
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

/// Character count (not bytes), so the `∧`/`≠` glyphs pad correctly.
fn display_width(s: &str) -> usize {
    s.chars().count()
}

/// Formats a fraction as a signed percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a duration compactly (`1.2s`, `34ms`, `56µs`).
pub fn fmt_duration(d: std::time::Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.1}ms", secs * 1e3)
    } else {
        format!("{:.1}µs", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_columns() {
        let mut t = TextTable::new(&["A", "Bee"]);
        t.row(&["longer", "x"]);
        t.row(&["s", "yy"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("A"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "Bee"/" x"/"yy" start at the same offset.
        let col = lines[2].find('x').unwrap();
        assert_eq!(lines[3].chars().nth(col).unwrap(), 'y');
    }

    #[test]
    fn unicode_width_uses_chars() {
        let mut t = TextTable::new(&["P"]);
        t.row(&["a ∧ b"]);
        assert_eq!(t.n_rows(), 1);
        let r = t.render();
        assert!(r.contains("a ∧ b"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(&["A", "B"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.552), "55.2%");
        assert_eq!(pct(-0.05), "-5.0%");
        assert_eq!(
            fmt_duration(std::time::Duration::from_millis(1500)),
            "1.50s"
        );
        assert_eq!(
            fmt_duration(std::time::Duration::from_micros(2500)),
            "2.5ms"
        );
        assert_eq!(fmt_duration(std::time::Duration::from_nanos(900)), "0.9µs");
    }
}
