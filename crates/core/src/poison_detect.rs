//! Influence-based detection of data-poisoning attacks (paper §6.7).
//!
//! The pipeline: cluster the (contaminated) training data with k-means, rank
//! clusters by their estimated second-order influence responsibility for the
//! model's bias, and flag the top clusters. The paper reports that the top-2
//! clusters contain ≈70% of the injected poisons, while sklearn's
//! `LocalOutlierFactor` finds none of them — our [`crate::lof`] baseline
//! reproduces that failure.

use crate::gmm::gmm;
use crate::kmeans::kmeans;
use crate::lof::local_outlier_factor;
use gopher_data::Encoded;
use gopher_fairness::FairnessMetric;
use gopher_influence::{BiasEval, BiasInfluence, Estimator, InfluenceEngine};
use gopher_models::Differentiable;
use gopher_prng::Rng;

/// Which clustering backend the detector uses (the paper evaluates both).
/// k-means is the recommended default here: diagonal-covariance GMMs model
/// one-hot feature blocks poorly and tend to absorb small dense clumps into
/// larger components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clustering {
    /// Hard k-means with k-means++ seeding.
    KMeans,
    /// Diagonal-covariance Gaussian mixture fit by EM.
    Gmm,
}

/// Detection pipeline configuration.
#[derive(Debug, Clone)]
pub struct PoisonDetectionConfig {
    /// Clustering backend.
    pub clustering: Clustering,
    /// Number of k-means clusters.
    pub n_clusters: usize,
    /// How many top-ranked clusters to flag.
    pub top_clusters: usize,
    /// Lloyd iteration cap.
    pub kmeans_iters: usize,
    /// k-means++ restarts (the best inertia wins); stabilizes cluster
    /// isolation of the poison clumps.
    pub kmeans_restarts: usize,
    /// Neighbourhood size for the LOF baseline.
    pub lof_k: usize,
    /// Influence estimator used to rank clusters (the paper uses
    /// second-order influence).
    pub estimator: Estimator,
    /// Rank clusters by responsibility *per member* instead of total
    /// responsibility. Per-member ranking keeps large benign clusters from
    /// outranking small, dense poison clumps.
    pub rank_per_point: bool,
    /// Weight of the training label as an extra clustering coordinate.
    /// Poisons are label-coherent by construction (the attack plants
    /// `privileged → positive` / `protected → negative` points), so
    /// label-aware clustering separates them from same-feature clean points.
    /// 0 disables it.
    pub label_weight: f64,
}

impl Default for PoisonDetectionConfig {
    fn default() -> Self {
        Self {
            clustering: Clustering::KMeans,
            n_clusters: 8,
            top_clusters: 2,
            kmeans_iters: 50,
            kmeans_restarts: 8,
            lof_k: 10,
            estimator: Estimator::SecondOrder,
            rank_per_point: true,
            label_weight: 2.0,
        }
    }
}

/// One ranked cluster.
#[derive(Debug, Clone)]
pub struct RankedCluster {
    /// k-means cluster id.
    pub cluster: usize,
    /// Estimated responsibility of the cluster for model bias.
    pub responsibility: f64,
    /// Cluster size.
    pub size: usize,
    /// Number of true poisons inside (ground truth, for evaluation).
    pub n_poison: usize,
}

/// Result of the detection experiment.
#[derive(Debug, Clone)]
pub struct PoisonDetectionOutcome {
    /// Clusters sorted by decreasing responsibility.
    pub ranked: Vec<RankedCluster>,
    /// Fraction of all poisons captured by the top clusters.
    pub cluster_recall: f64,
    /// Fraction of flagged points that are actually poisons.
    pub cluster_precision: f64,
    /// Recall of the LOF baseline when flagging the `n_poison` highest-LOF
    /// points.
    pub lof_recall: f64,
}

/// Runs the detection pipeline against a (contaminated) training set.
///
/// `engine` must be built on a model *trained on the contaminated data* —
/// the attack is detected through its influence on that model's bias.
/// `is_poison` is the ground-truth contamination mask used for scoring.
pub fn detect_poison<M: Differentiable>(
    engine: &InfluenceEngine<M>,
    train: &Encoded,
    test: &Encoded,
    metric: FairnessMetric,
    is_poison: &[bool],
    config: &PoisonDetectionConfig,
    rng: &mut Rng,
) -> PoisonDetectionOutcome {
    assert_eq!(is_poison.len(), train.n_rows(), "mask length mismatch");
    let total_poison = is_poison.iter().filter(|&&p| p).count().max(1);

    // Cluster (best of several k-means++ restarts) and rank by estimated
    // responsibility. The clustering space is the encoded features plus the
    // (weighted) training label.
    let cluster_x = if config.label_weight > 0.0 {
        let n = train.n_rows();
        let d = train.n_cols();
        let mut x = gopher_linalg::Matrix::zeros(n, d + 1);
        for r in 0..n {
            x.row_mut(r)[..d].copy_from_slice(train.x.row(r));
            x.row_mut(r)[d] = config.label_weight * train.y[r];
        }
        x
    } else {
        train.x.clone()
    };
    let assignments: Vec<usize> = match config.clustering {
        Clustering::KMeans => {
            let mut best = kmeans(&cluster_x, config.n_clusters, config.kmeans_iters, rng);
            for _ in 1..config.kmeans_restarts.max(1) {
                let trial = kmeans(&cluster_x, config.n_clusters, config.kmeans_iters, rng);
                if trial.inertia < best.inertia {
                    best = trial;
                }
            }
            best.assignments
        }
        Clustering::Gmm => {
            let mut best = gmm(&cluster_x, config.n_clusters, config.kmeans_iters, rng);
            for _ in 1..config.kmeans_restarts.max(1) {
                let trial = gmm(&cluster_x, config.n_clusters, config.kmeans_iters, rng);
                if trial.log_likelihood > best.log_likelihood {
                    best = trial;
                }
            }
            best.assignments
        }
    };
    let bi = BiasInfluence::new(engine, metric, test);
    let members_of = |c: usize| -> Vec<u32> {
        assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == c)
            .map(|(r, _)| r as u32)
            .collect()
    };
    let mut ranked: Vec<RankedCluster> = (0..config.n_clusters)
        .map(|c| {
            let members = members_of(c);
            let responsibility =
                bi.responsibility(train, &members, config.estimator, BiasEval::ChainRule);
            let n_poison = members.iter().filter(|&&r| is_poison[r as usize]).count();
            RankedCluster {
                cluster: c,
                responsibility,
                size: members.len(),
                n_poison,
            }
        })
        .collect();
    let key = |c: &RankedCluster| {
        if config.rank_per_point {
            c.responsibility / c.size.max(1) as f64
        } else {
            c.responsibility
        }
    };
    ranked.sort_by(|a, b| key(b).total_cmp(&key(a)));

    let flagged = &ranked[..config.top_clusters.min(ranked.len())];
    let caught: usize = flagged.iter().map(|c| c.n_poison).sum();
    let flagged_size: usize = flagged.iter().map(|c| c.size).sum();
    let cluster_recall = caught as f64 / total_poison as f64;
    let cluster_precision = if flagged_size == 0 {
        0.0
    } else {
        caught as f64 / flagged_size as f64
    };

    // LOF baseline: flag the n_poison highest-scoring points.
    let lof_scores = local_outlier_factor(&train.x, config.lof_k.min(train.n_rows() - 1));
    let mut by_score: Vec<usize> = (0..train.n_rows()).collect();
    by_score.sort_by(|&a, &b| lof_scores[b].total_cmp(&lof_scores[a]));
    let lof_caught = by_score[..total_poison.min(by_score.len())]
        .iter()
        .filter(|&&r| is_poison[r])
        .count();
    let lof_recall = lof_caught as f64 / total_poison as f64;

    PoisonDetectionOutcome {
        ranked,
        cluster_recall,
        cluster_precision,
        lof_recall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopher_data::generators::german;
    use gopher_data::poison::AnchoringAttack;
    use gopher_data::Encoder;
    use gopher_influence::InfluenceConfig;
    use gopher_models::train::{fit_newton, NewtonConfig};
    use gopher_models::LogisticRegression;

    #[test]
    fn influence_ranked_clusters_beat_lof() {
        // Average over a few attack instances: k-means isolation of the
        // poison clumps has genuine run-to-run variance (the paper reports
        // ~70% for its single configuration; our mean lands in that band).
        let mut cluster_recall = 0.0;
        let mut lof_recall = 0.0;
        let n_trials = 3;
        for seed in 0..n_trials {
            let clean = german(900, 121 + seed);
            let mut rng = Rng::new(500 + seed);
            let attack = AnchoringAttack {
                poison_fraction: 0.08,
                ..Default::default()
            };
            let poisoned = attack.run(&clean, &mut rng);

            let encoder = Encoder::fit(&poisoned.data);
            let train = encoder.transform(&poisoned.data);
            let test = encoder.transform(&clean); // clean data as the audit set
            let mut model = LogisticRegression::new(train.n_cols(), 1e-3);
            fit_newton(&mut model, &train, &NewtonConfig::default());
            let engine = InfluenceEngine::new(model, &train, InfluenceConfig::default());

            let outcome = detect_poison(
                &engine,
                &train,
                &test,
                FairnessMetric::StatisticalParity,
                &poisoned.is_poison,
                &PoisonDetectionConfig::default(),
                &mut rng,
            );
            cluster_recall += outcome.cluster_recall / n_trials as f64;
            lof_recall += outcome.lof_recall / n_trials as f64;
        }
        // The influence-ranked clusters concentrate the poisons...
        assert!(
            cluster_recall > 0.4,
            "mean cluster recall {cluster_recall} too low"
        );
        // ...and LOF does clearly worse (paper: finds none).
        assert!(
            cluster_recall > lof_recall + 0.2,
            "clusters {cluster_recall} vs lof {lof_recall}"
        );
    }

    #[test]
    fn gmm_backend_also_detects() {
        let clean = german(700, 141);
        let mut rng = Rng::new(142);
        let attack = AnchoringAttack {
            poison_fraction: 0.08,
            ..Default::default()
        };
        let poisoned = attack.run(&clean, &mut rng);
        let encoder = Encoder::fit(&poisoned.data);
        let train = encoder.transform(&poisoned.data);
        let test = encoder.transform(&clean);
        let mut model = LogisticRegression::new(train.n_cols(), 1e-3);
        fit_newton(&mut model, &train, &NewtonConfig::default());
        let engine = InfluenceEngine::new(model, &train, InfluenceConfig::default());
        let outcome = detect_poison(
            &engine,
            &train,
            &test,
            FairnessMetric::StatisticalParity,
            &poisoned.is_poison,
            &PoisonDetectionConfig {
                clustering: Clustering::Gmm,
                ..Default::default()
            },
            &mut rng,
        );
        // GMM's diagonal Gaussians fit one-hot blocks poorly, so unlike
        // k-means it is not *reliably* able to isolate the clumps — which is
        // why k-means is the default backend. The pipeline must still be
        // structurally sound end to end.
        assert!((0.0..=1.0).contains(&outcome.cluster_recall));
        assert!((0.0..=1.0).contains(&outcome.lof_recall));
        let total: usize = outcome.ranked.iter().map(|c| c.size).sum();
        assert_eq!(
            total,
            train.n_rows(),
            "gmm clusters must partition the rows"
        );
        assert!(outcome.ranked.iter().all(|c| c.responsibility.is_finite()));
    }

    #[test]
    fn ranking_is_sorted_and_partitioned() {
        let clean = german(400, 123);
        let mut rng = Rng::new(124);
        let poisoned = AnchoringAttack::default().run(&clean, &mut rng);
        let encoder = Encoder::fit(&poisoned.data);
        let train = encoder.transform(&poisoned.data);
        let test = encoder.transform(&clean);
        let mut model = LogisticRegression::new(train.n_cols(), 1e-3);
        fit_newton(&mut model, &train, &NewtonConfig::default());
        let engine = InfluenceEngine::new(model, &train, InfluenceConfig::default());
        let outcome = detect_poison(
            &engine,
            &train,
            &test,
            FairnessMetric::StatisticalParity,
            &poisoned.is_poison,
            &PoisonDetectionConfig {
                n_clusters: 6,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(outcome.ranked.len(), 6);
        for w in outcome.ranked.windows(2) {
            assert!(w[0].responsibility >= w[1].responsibility);
        }
        let total: usize = outcome.ranked.iter().map(|c| c.size).sum();
        assert_eq!(total, train.n_rows());
    }
}
