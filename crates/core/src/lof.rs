//! Local Outlier Factor (Breunig et al. 2000).
//!
//! This is the paper's *failing* baseline for poisoning detection (§6.7):
//! anchoring-attack poisons sit inside dense regions of the clean data, so
//! their LOF scores look perfectly normal. We implement the standard
//! brute-force O(n²) variant — the datasets here are small.

use gopher_linalg::{vecops, Matrix};

/// Computes the LOF score of every row of `x` using `k` nearest neighbours.
/// Scores near 1 are inliers; substantially larger scores are outliers.
///
/// # Panics
/// If `k == 0` or `k >= x.rows()`.
pub fn local_outlier_factor(x: &Matrix, k: usize) -> Vec<f64> {
    let n = x.rows();
    assert!(k > 0, "lof: k must be positive");
    assert!(k < n, "lof: k={k} must be below the number of points {n}");

    // k nearest neighbours (indices + distances) per point, brute force.
    let mut neighbours: Vec<Vec<(f64, usize)>> = Vec::with_capacity(n);
    let mut dists: Vec<(f64, usize)> = Vec::with_capacity(n - 1);
    for i in 0..n {
        dists.clear();
        for j in 0..n {
            if i != j {
                dists.push((vecops::distance(x.row(i), x.row(j)), j));
            }
        }
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Include ties with the k-th distance, as the definition requires.
        let kth = dists[k - 1].0;
        let cutoff = dists.iter().take_while(|(d, _)| *d <= kth).count();
        neighbours.push(dists[..cutoff].to_vec());
    }

    // k-distance per point = distance to the k-th neighbour.
    let k_dist: Vec<f64> = neighbours.iter().map(|nb| nb[k - 1].0).collect();

    // Local reachability density.
    let lrd: Vec<f64> = (0..n)
        .map(|i| {
            let nb = &neighbours[i];
            let sum: f64 = nb.iter().map(|&(d, j)| d.max(k_dist[j])).sum();
            if sum == 0.0 {
                f64::INFINITY // duplicate points: infinite density
            } else {
                nb.len() as f64 / sum
            }
        })
        .collect();

    // LOF = mean ratio of neighbour densities to own density.
    (0..n)
        .map(|i| {
            let nb = &neighbours[i];
            if lrd[i].is_infinite() {
                return 1.0; // duplicates are maximal inliers
            }
            let sum: f64 = nb
                .iter()
                .map(|&(_, j)| {
                    if lrd[j].is_infinite() {
                        // Neighbour infinitely denser: contributes a large
                        // but finite ratio.
                        1e12
                    } else {
                        lrd[j] / lrd[i]
                    }
                })
                .sum();
            sum / nb.len() as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopher_prng::Rng;

    #[test]
    fn isolated_point_has_high_lof() {
        let mut rng = Rng::new(111);
        let n = 60;
        let mut x = Matrix::zeros(n + 1, 2);
        for r in 0..n {
            x[(r, 0)] = rng.normal();
            x[(r, 1)] = rng.normal();
        }
        // One far-away outlier.
        x[(n, 0)] = 50.0;
        x[(n, 1)] = 50.0;
        let scores = local_outlier_factor(&x, 5);
        let max_inlier = scores[..n].iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(
            scores[n] > 2.0 * max_inlier,
            "outlier LOF {} vs max inlier {max_inlier}",
            scores[n]
        );
    }

    #[test]
    fn uniform_cluster_scores_near_one() {
        let mut rng = Rng::new(112);
        let n = 100;
        let mut x = Matrix::zeros(n, 3);
        for r in 0..n {
            for c in 0..3 {
                x[(r, c)] = rng.uniform();
            }
        }
        let scores = local_outlier_factor(&x, 8);
        for (i, s) in scores.iter().enumerate() {
            assert!((0.7..1.8).contains(s), "point {i} has LOF {s}");
        }
    }

    #[test]
    fn handles_duplicate_points() {
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let scores = local_outlier_factor(&x, 2);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    #[should_panic(expected = "must be below")]
    fn rejects_k_too_large() {
        let x = Matrix::zeros(3, 2);
        let _ = local_outlier_factor(&x, 3);
    }
}
