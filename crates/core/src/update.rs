//! Update-based explanations (paper Section 5).
//!
//! Instead of deleting a responsible subset `S`, Gopher searches for a
//! **homogeneous update**: a single perturbation vector `δ` (in encoded
//! feature space) applied to every point of `S`, chosen to maximally reduce
//! bias. Following Eq. 16–18, the objective is
//!
//! `minimize_δ  J(δ) = ∇θF(θ*, D_test)ᵀ · Σ_{z∈S} ∇θL(z + δ, θ*)`
//!
//! solved by projected gradient descent: after every step, `δ` is projected
//! so that every updated point stays inside the valid input domain
//! (Eq. 19) — numeric coordinates respect the training min/max box, one-hot
//! coordinates stay within `[−1, 1]` during optimization and are snapped to
//! the nearest valid one-hot when the final updated dataset is materialized.

use crate::explainer::{Explanation, ExplanationReport};
use crate::session::{ExplainRequest, ExplainSession};
use gopher_data::{Encoded, EncodedGroup, Value};
use gopher_fairness::{bias_gradient, FairnessMetric};
use gopher_influence::{retrain_updated, HessianBackend, ModelFamily};
use gopher_linalg::vecops;
use gopher_models::Differentiable;
use gopher_patterns::Candidate;

/// Projected-gradient-descent configuration for the update search.
#[derive(Debug, Clone)]
pub struct UpdateConfig {
    /// Step size for the δ updates.
    pub learning_rate: f64,
    /// Maximum gradient-descent iterations.
    pub max_iters: usize,
    /// Stop when the δ-gradient norm falls below this.
    pub grad_tol: f64,
    /// Finite-difference step for `∇_δ J`.
    pub fd_eps: f64,
    /// Learning rate η of the one-step-GD bias estimate (Eq. 14).
    pub one_step_eta: f64,
    /// Retrain on the updated data to report ground truth.
    pub ground_truth: bool,
    /// Restrict the update to at most this many *features* (schema features,
    /// i.e. whole one-hot blocks count as one). The paper's updates touch
    /// 2–3 features; unconstrained homogeneous updates tend to nudge every
    /// coordinate a little, which is less interpretable. `None` = no limit.
    pub max_changed_features: Option<usize>,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.1,
            max_iters: 120,
            grad_tol: 1e-7,
            fd_eps: 1e-4,
            one_step_eta: 1.0,
            ground_truth: true,
            max_changed_features: Some(3),
        }
    }
}

/// A per-feature summary of what the update changed.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureChange {
    /// A categorical feature was moved to a new level for (most of) the
    /// subset.
    Categorical {
        /// Schema feature index.
        feature: usize,
        /// Most common original level among changed rows.
        from: u32,
        /// New level.
        to: u32,
        /// Fraction of subset rows that changed to `to`.
        fraction: f64,
    },
    /// A numeric feature was shifted.
    Numeric {
        /// Schema feature index.
        feature: usize,
        /// Mean shift in raw (unstandardized) units.
        mean_shift: f64,
    },
}

impl FeatureChange {
    /// Renders the change with schema names.
    pub fn render(&self, schema: &gopher_data::Schema) -> String {
        match self {
            Self::Categorical {
                feature,
                from,
                to,
                fraction,
            } => format!(
                "{}: {} → {} ({:.0}% of subset)",
                schema.feature(*feature).name,
                schema.level_name(*feature, *from),
                schema.level_name(*feature, *to),
                100.0 * fraction
            ),
            Self::Numeric {
                feature,
                mean_shift,
            } => {
                format!("{}: {:+.2}", schema.feature(*feature).name, mean_shift)
            }
        }
    }
}

/// An update-based explanation for one pattern.
#[derive(Debug, Clone)]
pub struct UpdateExplanation {
    /// The pattern whose subset was updated.
    pub pattern_text: String,
    /// Number of updated training rows.
    pub n_rows: usize,
    /// The optimized homogeneous perturbation (encoded space, before
    /// per-point domain projection).
    pub delta_encoded: Vec<f64>,
    /// Human-readable per-feature changes after projection.
    pub changes: Vec<FeatureChange>,
    /// Estimated bias change from the one-step-GD surrogate (Eq. 14–15);
    /// negative = bias reduction.
    pub est_bias_change: f64,
    /// Ground-truth relative bias reduction `(F_old − F_new)/F_old` from
    /// retraining on the updated data (when requested).
    pub ground_truth_responsibility: Option<f64>,
}

impl<M> ExplainSession<M>
where
    M: ModelFamily<Backend = HessianBackend<M>> + Differentiable,
{
    /// Computes the best homogeneous update for one candidate pattern,
    /// optimizing the given metric's one-step-GD bias surrogate.
    pub fn update_explanation(
        &self,
        candidate: &Candidate,
        metric: FairnessMetric,
        cfg: &UpdateConfig,
    ) -> UpdateExplanation {
        let rows = candidate.coverage.to_indices();
        assert!(!rows.is_empty(), "cannot update an empty subset");
        let train = self.train();
        let model = self.model();
        let d = train.n_cols();
        let grad_f = bias_gradient(metric, model, self.test());

        // Box constraints keeping every updated point inside the training
        // domain: per encoded column, δ ∈ [lo − max_i x, hi − min_i x].
        let (delta_lo, delta_hi) = self.delta_bounds(&rows);

        // Minimize J(δ) = −∇Fᵀ Σ_S ∇θL(x+δ, y). Under the one-step update
        // model (Eq. 14), θ moves along −Σ∇L(S_p), so the bias change is
        // ΔF ∝ −∇Fᵀ Σ∇L(S_p): *maximizing* ∇FᵀΣ∇L(S_p) maximizes bias
        // reduction. (The paper's Eq. 16–17 write this as an argmin after
        // folding the sign of the gradient step.)
        let mut grad_buf = vec![0.0; model.n_params()];
        let mut x_buf = vec![0.0; d];
        let score = |delta: &[f64], grad_buf: &mut Vec<f64>, x_buf: &mut Vec<f64>| -> f64 {
            let mut total = 0.0;
            for &r in &rows {
                let r = r as usize;
                x_buf.copy_from_slice(train.x.row(r));
                vecops::axpy(1.0, delta, x_buf);
                grad_buf.iter_mut().for_each(|g| *g = 0.0);
                model.accumulate_grad(x_buf, train.y[r], grad_buf);
                total -= vecops::dot(&grad_f, grad_buf);
            }
            total
        };

        // Projected gradient descent on δ, optionally restricted to a
        // coordinate mask.
        let run_pgd =
            |mask: Option<&[bool]>, grad_buf: &mut Vec<f64>, x_buf: &mut Vec<f64>| -> Vec<f64> {
                let mut delta = vec![0.0; d];
                let mut g = vec![0.0; d];
                for _ in 0..cfg.max_iters {
                    // Central finite differences per (unmasked) coordinate.
                    for j in 0..d {
                        if mask.is_some_and(|m| !m[j]) {
                            g[j] = 0.0;
                            continue;
                        }
                        let orig = delta[j];
                        delta[j] = orig + cfg.fd_eps;
                        let plus = score(&delta, grad_buf, x_buf);
                        delta[j] = orig - cfg.fd_eps;
                        let minus = score(&delta, grad_buf, x_buf);
                        delta[j] = orig;
                        g[j] = (plus - minus) / (2.0 * cfg.fd_eps);
                    }
                    let gnorm = vecops::norm2(&g);
                    if gnorm < cfg.grad_tol {
                        break;
                    }
                    for j in 0..d {
                        delta[j] =
                            (delta[j] - cfg.learning_rate * g[j]).clamp(delta_lo[j], delta_hi[j]);
                    }
                }
                delta
            };

        let mut delta = run_pgd(None, &mut grad_buf, &mut x_buf);

        // Sparsification: keep the most impactful feature groups and
        // re-optimize only their coordinates (zeroing a one-hot block keeps
        // the original category after projection, so masked features are
        // genuinely unchanged).
        if let Some(max_features) = cfg.max_changed_features {
            let groups = self.encoder().layout().groups().to_vec();
            if groups.len() > max_features {
                let baseline = score(&vec![0.0; d], &mut grad_buf, &mut x_buf);
                // Impact of each feature group alone.
                let mut impacts: Vec<(usize, f64)> = Vec::with_capacity(groups.len());
                for (g_idx, group) in groups.iter().enumerate() {
                    let mut only = vec![0.0; d];
                    copy_group(group, &delta, &mut only);
                    let value = score(&only, &mut grad_buf, &mut x_buf);
                    impacts.push((g_idx, baseline - value));
                }
                impacts.sort_by(|a, b| b.1.total_cmp(&a.1));
                let mut mask = vec![false; d];
                for &(g_idx, impact) in impacts.iter().take(max_features) {
                    if impact > 0.0 {
                        copy_group_mask(&groups[g_idx], &mut mask);
                    }
                }
                delta = run_pgd(Some(&mask), &mut grad_buf, &mut x_buf);
            }
        }

        // Materialize the updated training set with per-point projection.
        let updated = self.apply_update(&rows, &delta);

        // One-step-GD estimate of the bias change (Eq. 14–15).
        let est_bias_change = {
            let p = model.n_params();
            let mut diff = vec![0.0; p]; // Σ ∇L(z_p) − Σ ∇L(z)
            for &r in &rows {
                let r = r as usize;
                model.accumulate_grad(updated.x.row(r), updated.y[r], &mut diff);
            }
            let mut orig = vec![0.0; p];
            for &r in &rows {
                let r = r as usize;
                model.accumulate_grad(train.x.row(r), train.y[r], &mut orig);
            }
            vecops::axpy(-1.0, &orig, &mut diff);
            // Mean data gradient over the full set ≈ −λθ* at the optimum;
            // include it for fidelity to Eq. 14.
            let mut mean_grad = vec![0.0; p];
            for r in 0..train.n_rows() {
                vecops::axpy(1.0, self.engine().row_gradient(r), &mut mean_grad);
            }
            let n = train.n_rows() as f64;
            let mut step = vec![0.0; p];
            for j in 0..p {
                step[j] = -cfg.one_step_eta * (mean_grad[j] + diff[j]) / n;
            }
            vecops::dot(&grad_f, &step)
        };

        let ground_truth_responsibility = if cfg.ground_truth {
            let outcome = retrain_updated(model, &updated);
            let new_bias = gopher_fairness::bias(metric, &outcome.model, self.test());
            let base = gopher_fairness::bias(metric, model, self.test());
            Some(if base.abs() < 1e-12 {
                0.0
            } else {
                (base - new_bias) / base
            })
        } else {
            None
        };

        let changes = self.describe_changes(&rows, &updated);
        UpdateExplanation {
            pattern_text: candidate
                .pattern
                .render(self.predicate_table(), self.train_raw().schema()),
            n_rows: rows.len(),
            delta_encoded: delta,
            changes,
            est_bias_change,
            ground_truth_responsibility,
        }
    }

    /// Runs [`ExplainSession::explain`] and derives an update-based
    /// explanation for each returned pattern (paper Tables 4–6). The per
    /// pattern update searches are independent (projected gradient descent
    /// plus an optional retrain each), so they fan out across the session's
    /// worker threads; results are bit-identical at any thread count.
    pub fn explain_with_updates(
        &self,
        request: &ExplainRequest,
        cfg: &UpdateConfig,
    ) -> (ExplanationReport, Vec<UpdateExplanation>) {
        let report = self.explain(request).report;
        let updates = gopher_par::par_map(
            self.threads().min(report.explanations.len()),
            &report.explanations,
            |_, e: &Explanation| self.update_explanation(&e.candidate, request.metric, cfg),
        );
        (report, updates)
    }

    /// Per-column bounds on δ so every subset point stays inside the domain.
    fn delta_bounds(&self, rows: &[u32]) -> (Vec<f64>, Vec<f64>) {
        let train = self.train();
        let d = train.n_cols();
        let mut lo = vec![-1.0; d];
        let mut hi = vec![1.0; d];
        for group in self.encoder().layout().groups() {
            if let EncodedGroup::Numeric {
                col,
                lo: dom_lo,
                hi: dom_hi,
                ..
            } = group
            {
                let mut min_x = f64::INFINITY;
                let mut max_x = f64::NEG_INFINITY;
                for &r in rows {
                    let v = train.x[(r as usize, *col)];
                    min_x = min_x.min(v);
                    max_x = max_x.max(v);
                }
                lo[*col] = dom_lo - max_x;
                hi[*col] = dom_hi - min_x;
                // Degenerate guard: keep lo <= hi even if the subset already
                // touches both domain boundaries.
                if lo[*col] > hi[*col] {
                    lo[*col] = 0.0;
                    hi[*col] = 0.0;
                }
            }
        }
        (lo, hi)
    }

    /// Returns a copy of the training set with `delta` applied to the given
    /// rows and each updated row projected back into the input domain.
    pub fn apply_update(&self, rows: &[u32], delta: &[f64]) -> Encoded {
        let mut updated = self.train().clone();
        for &r in rows {
            let row = updated.x.row_mut(r as usize);
            vecops::axpy(1.0, delta, row);
            self.encoder().project_row(row);
        }
        updated
    }

    /// Summarizes per-feature differences between original and updated rows.
    fn describe_changes(&self, rows: &[u32], updated: &Encoded) -> Vec<FeatureChange> {
        let train = self.train();
        let schema = self.train_raw().schema();
        let mut changes = Vec::new();
        for (f, _feat) in schema.features().iter().enumerate() {
            // Decode both versions of each subset row for this feature.
            let mut cat_moves: std::collections::HashMap<(u32, u32), usize> =
                std::collections::HashMap::new();
            let mut num_shift = 0.0;
            let mut n_num = 0usize;
            for &r in rows {
                let r = r as usize;
                let before = self.encoder().decode_row(train.x.row(r));
                let after = self.encoder().decode_row(updated.x.row(r));
                match (before[f], after[f]) {
                    (Value::Level(a), Value::Level(b)) => {
                        if a != b {
                            *cat_moves.entry((a, b)).or_insert(0) += 1;
                        }
                    }
                    (Value::Number(a), Value::Number(b)) => {
                        num_shift += b - a;
                        n_num += 1;
                    }
                    _ => unreachable!("encoding is stable"),
                }
            }
            if let Some((&(from, to), &count)) = cat_moves.iter().max_by_key(|(_, &c)| c) {
                // The update vector is homogeneous, but rows already at the
                // target level do not move, so even a systematic repair can
                // flip a minority of the subset. Report anything that moves
                // at least 10% of the rows (with the fraction attached).
                let fraction = count as f64 / rows.len() as f64;
                if fraction >= 0.1 {
                    changes.push(FeatureChange::Categorical {
                        feature: f,
                        from,
                        to,
                        fraction,
                    });
                }
            }
            if n_num > 0 {
                let mean = num_shift / n_num as f64;
                if mean.abs() > 1e-6 {
                    changes.push(FeatureChange::Numeric {
                        feature: f,
                        mean_shift: mean,
                    });
                }
            }
        }
        changes
    }
}

#[allow(deprecated)]
impl<M> crate::explainer::Gopher<M>
where
    M: ModelFamily<Backend = HessianBackend<M>> + Differentiable,
{
    /// Computes the best homogeneous update for one candidate pattern
    /// (façade for [`ExplainSession::update_explanation`] under the
    /// configured metric).
    pub fn update_explanation(
        &self,
        candidate: &Candidate,
        cfg: &UpdateConfig,
    ) -> UpdateExplanation {
        self.session()
            .update_explanation(candidate, self.config().metric, cfg)
    }

    /// Runs `explain` and derives an update-based explanation for each
    /// returned pattern (façade for
    /// [`ExplainSession::explain_with_updates`]).
    pub fn explain_with_updates(
        &self,
        cfg: &UpdateConfig,
    ) -> (ExplanationReport, Vec<UpdateExplanation>) {
        self.session()
            .explain_with_updates(&self.config().to_request(), cfg)
    }
}

/// Copies the coordinates of one encoded feature group from `src` to `dst`.
fn copy_group(group: &EncodedGroup, src: &[f64], dst: &mut [f64]) {
    match group {
        EncodedGroup::Numeric { col, .. } => dst[*col] = src[*col],
        EncodedGroup::OneHot {
            first_col,
            n_levels,
            ..
        } => {
            dst[*first_col..first_col + n_levels]
                .copy_from_slice(&src[*first_col..first_col + n_levels]);
        }
    }
}

/// Marks the coordinates of one encoded feature group in a boolean mask.
fn copy_group_mask(group: &EncodedGroup, mask: &mut [bool]) {
    match group {
        EncodedGroup::Numeric { col, .. } => mask[*col] = true,
        EncodedGroup::OneHot {
            first_col,
            n_levels,
            ..
        } => {
            mask[*first_col..first_col + n_levels]
                .iter_mut()
                .for_each(|m| *m = true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionBuilder;
    use gopher_data::generators::german;
    use gopher_models::LogisticRegression;
    use gopher_prng::Rng;

    const METRIC: FairnessMetric = FairnessMetric::StatisticalParity;

    fn build() -> ExplainSession<LogisticRegression> {
        let mut rng = Rng::new(81);
        let (train, test) = german(800, 81).train_test_split(0.3, &mut rng);
        SessionBuilder::new().fit(|cols| LogisticRegression::new(cols, 1e-3), &train, &test)
    }

    fn request() -> ExplainRequest {
        ExplainRequest::default().with_ground_truth(false)
    }

    #[test]
    fn update_reduces_bias_for_top_pattern() {
        let gopher = build();
        let report = gopher.explain(&request()).report;
        let top = &report.explanations[0];
        let update = gopher.update_explanation(&top.candidate, METRIC, &UpdateConfig::default());
        assert_eq!(update.n_rows, top.candidate.coverage.count());
        // The optimizer minimizes the bias-change surrogate; it must at
        // least not be positive (an update of δ=0 achieves exactly 0).
        assert!(
            update.est_bias_change <= 1e-9,
            "estimated bias change {} should be <= 0",
            update.est_bias_change
        );
        let gt = update.ground_truth_responsibility.expect("requested");
        assert!(
            gt > -0.5,
            "update should not catastrophically backfire: {gt}"
        );
    }

    #[test]
    fn delta_respects_domain_bounds() {
        let gopher = build();
        let report = gopher.explain(&request()).report;
        let top = &report.explanations[0];
        let update = gopher.update_explanation(&top.candidate, METRIC, &UpdateConfig::default());
        // Applying the update and projecting must keep every point equal to
        // its own projection (idempotence ⇒ in-domain).
        let rows = top.candidate.coverage.to_indices();
        let updated = gopher.apply_update(&rows, &update.delta_encoded);
        for &r in &rows {
            let mut row = updated.x.row(r as usize).to_vec();
            let before = row.clone();
            gopher.encoder().project_row(&mut row);
            for (a, b) in row.iter().zip(&before) {
                assert!((a - b).abs() < 1e-12, "projection not idempotent");
            }
        }
    }

    #[test]
    fn zero_delta_changes_nothing() {
        let gopher = build();
        let rows: Vec<u32> = (0..20).collect();
        let delta = vec![0.0; gopher.train().n_cols()];
        let updated = gopher.apply_update(&rows, &delta);
        // Rows are already valid domain points, so projection is a no-op.
        for r in 0..gopher.train().n_rows() {
            for c in 0..gopher.train().n_cols() {
                assert_eq!(updated.x[(r, c)], gopher.train().x[(r, c)]);
            }
        }
    }

    #[test]
    fn feature_change_rendering() {
        let gopher = build();
        let schema = gopher.train_raw().schema();
        let gender = schema.feature_index("gender").unwrap();
        let change = FeatureChange::Categorical {
            feature: gender,
            from: 1,
            to: 0,
            fraction: 0.8,
        };
        let text = change.render(schema);
        assert!(text.contains("gender"), "{text}");
        assert!(text.contains("Male"), "{text}");
        assert!(text.contains("Female"), "{text}");
        let age = schema.feature_index("age").unwrap();
        let shift = FeatureChange::Numeric {
            feature: age,
            mean_shift: -12.5,
        };
        assert!(shift.render(schema).contains("-12.5"));
    }
}
