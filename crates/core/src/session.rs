//! The query-oriented explainer API: a long-lived [`ExplainSession`] serving
//! many cheap [`ExplainRequest`]s.
//!
//! The paper's Gopher system is an *interactive* debugging tool: an analyst
//! fixes one trained model and then iterates over fairness metrics, k,
//! support thresholds, and estimators. The expensive state — encoding, model
//! training, influence-engine precomputation (per-example gradients + the
//! factored Hessian), predicate generation, and pattern coverage bitsets —
//! depends only on the *model and data*, while every knob the analyst turns
//! is *per-query*. This module makes that split explicit:
//!
//! * [`SessionBuilder`] → [`ExplainSession`] — pay the per-model setup once;
//! * [`ExplainRequest`] → [`ExplainResponse`] — ask as many questions as you
//!   like against the same session, including batched multi-metric queries
//!   via [`ExplainSession::explain_batch`], which shares one lattice sweep
//!   (structural enumeration + coverage intersection) across requests and
//!   fans the scoring callbacks out per request.
//!
//! Results are **bit-identical** to cold [`Gopher`](crate::Gopher) runs with
//! the equivalent [`GopherConfig`](crate::GopherConfig): the session only
//! caches pure functions
//! of the trained model (coverage bitsets, per-metric bias gradients,
//! finished sweeps), never approximations.
//!
//! ```
//! use gopher_core::{ExplainRequest, SessionBuilder};
//! use gopher_data::generators::german;
//! use gopher_fairness::FairnessMetric;
//! use gopher_models::LogisticRegression;
//! use gopher_prng::Rng;
//!
//! let mut rng = Rng::new(0);
//! let (train, test) = german(600, 0).train_test_split(0.3, &mut rng);
//! let session = SessionBuilder::new()
//!     .fit(|n_cols| LogisticRegression::new(n_cols, 1e-3), &train, &test);
//! // Two metrics, one batch, one lattice sweep.
//! let responses = session.explain_batch(&[
//!     ExplainRequest::default().with_k(3),
//!     ExplainRequest::default()
//!         .with_metric(FairnessMetric::EqualOpportunity)
//!         .with_k(3),
//! ]);
//! assert_eq!(responses.len(), 2);
//! assert!(responses[0].report.base_bias > 0.0);
//! ```

use crate::explainer::{Explanation, ExplanationReport, PatternProfile};
use gopher_data::{Dataset, Encoded, Encoder};
use gopher_fairness::FairnessMetric;
use gopher_influence::{
    retrain_without, BiasEval, BiasInfluence, BiasPrecomp, Estimator, InfluenceConfig,
    InfluenceEngine,
};
use gopher_models::train::fit_default;
use gopher_models::Model;
use gopher_patterns::{
    generate_predicates, lattice, topk, BitSet, Candidate, CoverageCache, LatticeConfig,
    PredicateTable, ScoreFn, SearchStats,
};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Builds an [`ExplainSession`]: the per-model options that must be fixed
/// before any query can run (everything else lives on [`ExplainRequest`]).
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    max_bins: usize,
    influence: InfluenceConfig,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionBuilder {
    /// Default session options (4 quantile bins per numeric feature,
    /// default influence-engine parameters).
    pub fn new() -> Self {
        Self {
            max_bins: 4,
            influence: InfluenceConfig::default(),
        }
    }

    /// Quantile bins per numeric feature for predicate generation.
    #[must_use]
    pub fn max_bins(mut self, max_bins: usize) -> Self {
        self.max_bins = max_bins;
        self
    }

    /// Influence-engine parameters (damping, CG budget, …).
    #[must_use]
    pub fn influence(mut self, influence: InfluenceConfig) -> Self {
        self.influence = influence;
        self
    }

    /// Builds a session around an **already trained** model. The model must
    /// have been trained on `Encoder::fit(train_raw)`-encoded data;
    /// influence functions assume its parameters are a stationary point.
    ///
    /// # Panics
    /// If the model's input width does not match the encoded data.
    pub fn build<M: Model>(
        self,
        model: M,
        train_raw: &Dataset,
        test_raw: &Dataset,
    ) -> ExplainSession<M> {
        let encoder = Encoder::fit(train_raw);
        let train = encoder.transform(train_raw);
        let test = encoder.transform(test_raw);
        assert_eq!(
            model.n_inputs(),
            train.n_cols(),
            "model input width must match the encoded data"
        );
        let engine = InfluenceEngine::new(model, &train, self.influence.clone());
        let table = generate_predicates(train_raw, self.max_bins);
        let accuracy = gopher_models::train::accuracy(engine.model(), &test);
        ExplainSession {
            train_raw: train_raw.clone(),
            encoder,
            train,
            test,
            engine,
            table,
            accuracy,
            coverage: CoverageCache::new(),
            bias_cache: Mutex::new(HashMap::new()),
            sweep_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Convenience constructor that encodes the data, builds the model via
    /// `make_model(n_encoded_cols)`, trains it to convergence, and wraps it.
    pub fn fit<M: Model>(
        self,
        make_model: impl FnOnce(usize) -> M,
        train_raw: &Dataset,
        test_raw: &Dataset,
    ) -> ExplainSession<M> {
        let encoder = Encoder::fit(train_raw);
        let train = encoder.transform(train_raw);
        let mut model = make_model(train.n_cols());
        fit_default(&mut model, &train);
        self.build(model, train_raw, test_raw)
    }
}

/// One explanation query against an [`ExplainSession`]: everything an
/// analyst iterates over between questions, none of the per-model state.
#[derive(Debug, Clone)]
pub struct ExplainRequest {
    /// Fairness metric to debug.
    pub metric: FairnessMetric,
    /// Number of explanations to return.
    pub k: usize,
    /// Containment threshold `c` for diversity (Definition 3.7).
    pub containment_threshold: f64,
    /// Lattice search parameters (support threshold τ, depth, pruning).
    pub lattice: LatticeConfig,
    /// Influence estimator used to score candidate patterns.
    pub estimator: Estimator,
    /// How estimated parameter changes become bias changes.
    pub bias_eval: BiasEval,
    /// Retrain without each top-k subset to report ground-truth Δbias
    /// (the paper reports this for every table; costs k retrainings).
    pub ground_truth_for_topk: bool,
    /// Re-score the top candidates with the second-order estimator before
    /// the final ranking (cheap: only the survivors of the containment
    /// filter are re-scored). Off by default to match the paper.
    pub rescore_top_with_so: bool,
}

impl Default for ExplainRequest {
    fn default() -> Self {
        Self {
            metric: FairnessMetric::StatisticalParity,
            k: 3,
            containment_threshold: 0.75,
            lattice: LatticeConfig::default(),
            estimator: Estimator::SecondOrder,
            bias_eval: BiasEval::ChainRule,
            ground_truth_for_topk: true,
            rescore_top_with_so: false,
        }
    }
}

impl ExplainRequest {
    /// Sets the fairness metric.
    #[must_use]
    pub fn with_metric(mut self, metric: FairnessMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the number of explanations to return.
    #[must_use]
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the influence estimator.
    #[must_use]
    pub fn with_estimator(mut self, estimator: Estimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// Sets the minimum pattern support threshold τ.
    #[must_use]
    pub fn with_support_threshold(mut self, tau: f64) -> Self {
        self.lattice.support_threshold = tau;
        self
    }

    /// Sets the maximum number of predicates per pattern.
    #[must_use]
    pub fn with_max_predicates(mut self, depth: usize) -> Self {
        self.lattice.max_predicates = depth;
        self
    }

    /// Enables or disables ground-truth verification of the top-k patterns.
    #[must_use]
    pub fn with_ground_truth(mut self, on: bool) -> Self {
        self.ground_truth_for_topk = on;
        self
    }
}

/// The answer to one [`ExplainRequest`].
#[derive(Debug, Clone)]
pub struct ExplainResponse {
    /// The request this response answers (echoed for batch bookkeeping).
    pub request: ExplainRequest,
    /// The explanation report, identical in content to what a cold
    /// [`Gopher`](crate::Gopher) run with the equivalent config produces.
    pub report: ExplanationReport,
    /// Wall-clock time this request cost the session, including the lattice
    /// sweep when this request was the first in its batch to need it. A
    /// repeat of a cached request (or a batch peer sharing a sweep) reports
    /// only its own selection and ground-truth time — near zero with ground
    /// truth off.
    pub query_time: Duration,
}

/// Hashable identity of a lattice sweep: its structural parameters plus the
/// scoring function (metric × estimator × bias-eval). Two requests with the
/// same `SweepKey` share one `compute_candidates` result exactly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SweepKey {
    support_bits: u64,
    max_predicates: usize,
    prune_by_responsibility: bool,
    max_level_candidates: Option<usize>,
    metric: FairnessMetric,
    estimator: (u8, u64),
    bias_eval: BiasEval,
}

impl SweepKey {
    fn of(req: &ExplainRequest) -> Self {
        Self {
            support_bits: req.lattice.support_threshold.to_bits(),
            max_predicates: req.lattice.max_predicates,
            prune_by_responsibility: req.lattice.prune_by_responsibility,
            max_level_candidates: req.lattice.max_level_candidates,
            metric: req.metric,
            estimator: estimator_key(req.estimator),
            bias_eval: req.bias_eval,
        }
    }

    /// The structural (scoring-independent) part, for grouping requests that
    /// can share one multi-scorer sweep.
    fn structural(&self) -> (u64, usize, bool, Option<usize>) {
        (
            self.support_bits,
            self.max_predicates,
            self.prune_by_responsibility,
            self.max_level_candidates,
        )
    }
}

fn estimator_key(e: Estimator) -> (u8, u64) {
    match e {
        Estimator::FirstOrder => (0, 0),
        Estimator::SecondOrder => (1, 0),
        Estimator::NewtonStep => (2, 0),
        Estimator::OneStepGd { learning_rate } => (3, learning_rate.to_bits()),
    }
}

/// Cap on retained sweep results. A sweep's candidate vector is the largest
/// thing a session caches, so — like the coverage cache — retention is
/// bounded: past the cap, fresh sweeps are still served but not stored.
const SWEEP_CACHE_CAP: usize = 256;

/// A finished lattice sweep, cached per [`SweepKey`] for the session's
/// lifetime (candidates are pure functions of the trained model).
struct SweepResult {
    candidates: Vec<Candidate>,
    stats: SearchStats,
    /// Wall-clock cost of the sweep when it actually ran (reported as the
    /// search time of every request that reuses it).
    duration: Duration,
}

/// A long-lived explainer bound to one trained model.
///
/// Owns everything expensive — the raw and encoded data, the influence
/// engine (per-example gradients + factored Hessian), the predicate table, a
/// [`CoverageCache`] of materialized pattern bitsets, per-metric bias
/// precomputations, and finished sweeps — and answers [`ExplainRequest`]s
/// against that state. All caches sit behind mutexes, so a session is `Sync`
/// and can serve concurrent `&self` queries.
pub struct ExplainSession<M: Model> {
    train_raw: Dataset,
    encoder: Encoder,
    train: Encoded,
    test: Encoded,
    engine: InfluenceEngine<M>,
    table: PredicateTable,
    accuracy: f64,
    coverage: CoverageCache,
    bias_cache: Mutex<HashMap<FairnessMetric, BiasPrecomp>>,
    sweep_cache: Mutex<HashMap<SweepKey, Arc<SweepResult>>>,
}

impl<M: Model> ExplainSession<M> {
    /// The trained model.
    pub fn model(&self) -> &M {
        self.engine.model()
    }

    /// The fitted encoder.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// The encoded training set.
    pub fn train(&self) -> &Encoded {
        &self.train
    }

    /// The encoded test set.
    pub fn test(&self) -> &Encoded {
        &self.test
    }

    /// The raw training dataset.
    pub fn train_raw(&self) -> &Dataset {
        &self.train_raw
    }

    /// The influence engine (for advanced queries).
    pub fn engine(&self) -> &InfluenceEngine<M> {
        &self.engine
    }

    /// The candidate predicate table.
    pub fn predicate_table(&self) -> &PredicateTable {
        &self.table
    }

    /// Test accuracy of the model (computed once at session build).
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// Hard bias of the model under `metric` on the test set (cached).
    pub fn base_bias(&self, metric: FairnessMetric) -> f64 {
        self.bias_precomp(metric).base_hard
    }

    /// Number of materialized pattern coverages the session has cached.
    pub fn cached_coverages(&self) -> usize {
        self.coverage.len()
    }

    /// Answers one request. Equivalent to `explain_batch` with a singleton
    /// slice; the response content matches a cold
    /// [`Gopher`](crate::Gopher) run with the equivalent config bit for bit.
    pub fn explain(&self, request: &ExplainRequest) -> ExplainResponse {
        self.explain_batch(std::slice::from_ref(request))
            .pop()
            .expect("one request in, one response out")
    }

    /// Answers a batch of requests, sharing work wherever the requests
    /// allow:
    ///
    /// * requests with identical structural lattice parameters share **one
    ///   sweep** — the structural enumeration and every coverage
    ///   intersection run once, with the per-request scoring callbacks
    ///   (metric × estimator × bias-eval) fanned out over it;
    /// * requests with identical scoring too (differing only in k,
    ///   containment, or ground-truth flags) share the sweep *result*;
    /// * all sweeps consult the session's coverage cache, so later batches
    ///   and queries skip intersections any earlier query materialized.
    ///
    /// Responses come back in request order, each with content identical to
    /// a cold run of that request alone.
    pub fn explain_batch(&self, requests: &[ExplainRequest]) -> Vec<ExplainResponse> {
        let keys: Vec<SweepKey> = requests.iter().map(SweepKey::of).collect();

        // Find sweeps not yet cached, grouped by structural lattice config
        // (first-seen order keeps runs deterministic).
        let mut missing: Vec<(SweepKey, &ExplainRequest)> = Vec::new();
        {
            let cache = self.sweep_cache.lock().expect("sweep cache poisoned");
            for (key, req) in keys.iter().zip(requests) {
                if !cache.contains_key(key) && !missing.iter().any(|(k, _)| k == key) {
                    missing.push((key.clone(), req));
                }
            }
        }
        // Freshly-swept keys: their sweep cost is charged to the first
        // request in the batch that needed them (see `query_time`).
        let mut fresh: HashSet<SweepKey> = missing.iter().map(|(k, _)| k.clone()).collect();

        struct Group<'r> {
            structural: (u64, usize, bool, Option<usize>),
            lattice: LatticeConfig,
            members: Vec<(SweepKey, &'r ExplainRequest)>,
        }
        let mut structural_groups: Vec<Group<'_>> = Vec::new();
        for (key, req) in missing {
            let structural = key.structural();
            match structural_groups
                .iter_mut()
                .find(|g| g.structural == structural)
            {
                Some(group) => group.members.push((key, req)),
                None => structural_groups.push(Group {
                    structural,
                    lattice: req.lattice.clone(),
                    members: vec![(key, req)],
                }),
            }
        }

        // Fresh sweeps are handed back directly (and cached subject to the
        // cap) so over-cap batches still answer without recomputation.
        let mut batch_sweeps: HashMap<SweepKey, Arc<SweepResult>> = HashMap::new();
        for group in structural_groups {
            for (key, sweep) in self.run_sweeps(&group.lattice, &group.members) {
                batch_sweeps.insert(key, sweep);
            }
        }

        keys.iter()
            .zip(requests)
            .map(|(key, req)| {
                let sweep = match batch_sweeps.get(key) {
                    Some(sweep) => Arc::clone(sweep),
                    None => Arc::clone(
                        self.sweep_cache
                            .lock()
                            .expect("sweep cache poisoned")
                            .get(key)
                            .expect("sweep cached before this batch"),
                    ),
                };
                self.answer(&sweep, req, fresh.remove(key))
            })
            .collect()
    }

    /// Runs one multi-scorer sweep for all `members` (same structural
    /// lattice config, distinct scoring), caches the per-scorer results
    /// subject to [`SWEEP_CACHE_CAP`], and returns them for this batch.
    fn run_sweeps(
        &self,
        lattice_cfg: &LatticeConfig,
        members: &[(SweepKey, &ExplainRequest)],
    ) -> Vec<(SweepKey, Arc<SweepResult>)> {
        let bis: Vec<BiasInfluence<'_, M>> = members
            .iter()
            .map(|(_, req)| {
                BiasInfluence::from_precomp(
                    &self.engine,
                    req.metric,
                    &self.test,
                    self.bias_precomp(req.metric),
                )
            })
            .collect();
        let mut scorers: Vec<ScoreFn<'_>> = members
            .iter()
            .zip(&bis)
            .map(|((_, req), bi)| {
                let estimator = req.estimator;
                let bias_eval = req.bias_eval;
                let train = &self.train;
                Box::new(move |cov: &BitSet| {
                    let rows = cov.to_indices();
                    bi.responsibility(train, &rows, estimator, bias_eval)
                }) as ScoreFn<'_>
            })
            .collect();
        let results = lattice::compute_candidates_multi(
            &self.table,
            &mut scorers,
            lattice_cfg,
            &self.coverage,
        );
        let mut fresh_sweeps = Vec::with_capacity(members.len());
        let mut cache = self.sweep_cache.lock().expect("sweep cache poisoned");
        for ((key, _), (candidates, stats)) in members.iter().zip(results) {
            let duration = stats.levels.iter().map(|l| l.duration).sum();
            let sweep = Arc::new(SweepResult {
                candidates,
                stats,
                duration,
            });
            // Bound retention: past the cap, the sweep still answers this
            // batch but is recomputed if the same request ever returns.
            if cache.len() < SWEEP_CACHE_CAP || cache.contains_key(key) {
                cache.insert(key.clone(), Arc::clone(&sweep));
            }
            fresh_sweeps.push((key.clone(), sweep));
        }
        fresh_sweeps
    }

    /// Builds the response for one request from its sweep. `charge_sweep` is
    /// set for the first request of the batch that needed a fresh sweep, so
    /// its `query_time` carries the sweep's cost.
    fn answer(
        &self,
        sweep: &SweepResult,
        req: &ExplainRequest,
        charge_sweep: bool,
    ) -> ExplainResponse {
        let t_query = Instant::now();
        let precomp = self.bias_precomp(req.metric);
        let t_select = Instant::now();
        let mut selected = topk::top_k(&sweep.candidates, req.k, req.containment_threshold);
        if req.rescore_top_with_so {
            let bi =
                BiasInfluence::from_precomp(&self.engine, req.metric, &self.test, precomp.clone());
            for cand in &mut selected {
                let rows = cand.coverage.to_indices();
                cand.responsibility =
                    bi.responsibility(&self.train, &rows, Estimator::SecondOrder, req.bias_eval);
                cand.interestingness = cand.responsibility / cand.support;
            }
            selected.sort_by(|a, b| b.interestingness.total_cmp(&a.interestingness));
        }
        let search_time = sweep.duration + t_select.elapsed();

        let explanations = selected
            .into_iter()
            .map(|candidate| self.finalize_explanation(candidate, req))
            .collect();

        let report = ExplanationReport {
            metric: req.metric,
            base_bias: precomp.base_hard,
            accuracy: self.accuracy,
            explanations,
            stats: sweep.stats.clone(),
            search_time,
        };
        let mut query_time = t_query.elapsed();
        if charge_sweep {
            query_time += sweep.duration;
        }
        ExplainResponse {
            request: req.clone(),
            report,
            query_time,
        }
    }

    fn finalize_explanation(&self, candidate: Candidate, req: &ExplainRequest) -> Explanation {
        let pattern_text = candidate
            .pattern
            .render(&self.table, self.train_raw.schema());
        let (gt_resp, gt_new) = if req.ground_truth_for_topk {
            let rows = candidate.coverage.to_indices();
            let (resp, new_bias) = self.ground_truth_responsibility(req.metric, &rows);
            (Some(resp), Some(new_bias))
        } else {
            (None, None)
        };
        Explanation {
            pattern_text,
            support: candidate.support,
            est_responsibility: candidate.responsibility,
            ground_truth_responsibility: gt_resp,
            ground_truth_new_bias: gt_new,
            candidate,
        }
    }

    /// Descriptive statistics of a pattern's coverage, for reports: how the
    /// covered rows differ from the rest of the training data in label and
    /// group composition. This is the "why is this subset responsible"
    /// context a reviewer needs next to the raw responsibility number.
    pub fn pattern_profile(&self, candidate: &Candidate) -> PatternProfile {
        let n = self.train.n_rows();
        let mut in_pos = 0usize;
        let mut in_priv = 0usize;
        let mut in_count = 0usize;
        let mut out_pos = 0usize;
        let mut out_priv = 0usize;
        for r in 0..n {
            let covered = candidate.coverage.contains(r);
            let pos = self.train.y[r] == 1.0;
            let priv_ = self.train.privileged[r];
            if covered {
                in_count += 1;
                in_pos += usize::from(pos);
                in_priv += usize::from(priv_);
            } else {
                out_pos += usize::from(pos);
                out_priv += usize::from(priv_);
            }
        }
        let out_count = n - in_count;
        let frac = |num: usize, den: usize| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        PatternProfile {
            rows: in_count,
            positive_rate: frac(in_pos, in_count),
            privileged_rate: frac(in_priv, in_count),
            rest_positive_rate: frac(out_pos, out_count),
            rest_privileged_rate: frac(out_priv, out_count),
        }
    }

    /// Ground-truth responsibility of an arbitrary row subset under
    /// `metric` (retrains without the subset).
    pub fn ground_truth_responsibility(&self, metric: FairnessMetric, rows: &[u32]) -> (f64, f64) {
        let outcome = retrain_without(self.engine.model(), &self.train, rows);
        let new_bias = gopher_fairness::bias(metric, &outcome.model, &self.test);
        let base = gopher_fairness::bias(metric, self.engine.model(), &self.test);
        let resp = if base.abs() < 1e-12 {
            0.0
        } else {
            (base - new_bias) / base
        };
        (resp, new_bias)
    }

    /// The per-metric bias precomputation (gradient + baselines), cached.
    fn bias_precomp(&self, metric: FairnessMetric) -> BiasPrecomp {
        let mut cache = self.bias_cache.lock().expect("bias cache poisoned");
        cache
            .entry(metric)
            .or_insert_with(|| BiasPrecomp::compute(metric, self.engine.model(), &self.test))
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopher_data::generators::german;
    use gopher_models::LogisticRegression;
    use gopher_prng::Rng;

    fn session(n: usize, seed: u64) -> ExplainSession<LogisticRegression> {
        let mut rng = Rng::new(seed);
        let (train, test) = german(n, seed).train_test_split(0.3, &mut rng);
        SessionBuilder::new().fit(|cols| LogisticRegression::new(cols, 1e-3), &train, &test)
    }

    fn assert_reports_equal(a: &ExplanationReport, b: &ExplanationReport) {
        assert_eq!(a.metric, b.metric);
        assert_eq!(a.base_bias, b.base_bias);
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.stats.total_scored, b.stats.total_scored);
        assert_eq!(a.explanations.len(), b.explanations.len());
        for (x, y) in a.explanations.iter().zip(&b.explanations) {
            assert_eq!(x.pattern_text, y.pattern_text);
            assert_eq!(x.support, y.support);
            assert_eq!(x.est_responsibility, y.est_responsibility);
            assert_eq!(x.ground_truth_responsibility, y.ground_truth_responsibility);
        }
    }

    #[test]
    fn batch_equals_sequential_singles() {
        let s = session(700, 42);
        let reqs = [
            ExplainRequest::default().with_ground_truth(false),
            ExplainRequest::default()
                .with_metric(FairnessMetric::EqualOpportunity)
                .with_ground_truth(false),
        ];
        let batch = s.explain_batch(&reqs);
        // A fresh session answering the same requests one at a time.
        let s2 = session(700, 42);
        for (req, resp) in reqs.iter().zip(&batch) {
            let solo = s2.explain(req);
            assert_reports_equal(&solo.report, &resp.report);
        }
    }

    #[test]
    fn repeat_query_hits_the_sweep_cache() {
        let s = session(500, 43);
        let req = ExplainRequest::default().with_ground_truth(false);
        let first = s.explain(&req);
        let scored_once = first.report.stats.total_scored;
        let again = s.explain(&req.clone().with_k(1));
        // Same sweep: identical scoring counts, k only trims the selection.
        assert_eq!(again.report.stats.total_scored, scored_once);
        assert!(again.report.explanations.len() <= 1);
        assert!(s.cached_coverages() > 0);
    }

    #[test]
    fn distinct_metrics_share_the_coverage_cache() {
        let s = session(500, 44);
        let _ = s.explain(&ExplainRequest::default().with_ground_truth(false));
        let after_first = s.cached_coverages();
        assert!(after_first > 0);
        let _ = s.explain(
            &ExplainRequest::default()
                .with_metric(FairnessMetric::EqualOpportunity)
                .with_ground_truth(false),
        );
        // The second metric walks (a subset of) the same lattice; coverage
        // entries are keyed by pattern, so overlap is reused, not recloned.
        assert!(s.cached_coverages() >= after_first);
    }

    #[test]
    fn session_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<ExplainSession<LogisticRegression>>();
    }
}
