//! The query-oriented explainer API: a long-lived [`ExplainSession`] serving
//! many cheap [`ExplainRequest`]s.
//!
//! The paper's Gopher system is an *interactive* debugging tool: an analyst
//! fixes one trained model and then iterates over fairness metrics, k,
//! support thresholds, and estimators. The expensive state — encoding, model
//! training, influence-engine precomputation (per-example gradients + the
//! factored Hessian), predicate generation, and pattern coverage bitsets —
//! depends only on the *model and data*, while every knob the analyst turns
//! is *per-query*. This module makes that split explicit:
//!
//! * [`SessionBuilder`] → [`ExplainSession`] — pay the per-model setup once;
//! * [`ExplainRequest`] → [`ExplainResponse`] — ask as many questions as you
//!   like against the same session, including batched multi-metric queries
//!   via [`ExplainSession::explain_batch`], which shares one lattice sweep
//!   (structural enumeration + coverage intersection) across requests and
//!   fans the scoring callbacks out per request.
//!
//! Results are **bit-identical** to cold [`Gopher`](crate::Gopher) runs with
//! the equivalent [`GopherConfig`](crate::GopherConfig): the session only
//! caches pure functions
//! of the trained model (coverage bitsets, per-metric bias gradients,
//! finished sweeps), never approximations.
//!
//! ```
//! use gopher_core::{ExplainRequest, SessionBuilder};
//! use gopher_data::generators::german;
//! use gopher_fairness::FairnessMetric;
//! use gopher_models::LogisticRegression;
//! use gopher_prng::Rng;
//!
//! let mut rng = Rng::new(0);
//! let (train, test) = german(600, 0).train_test_split(0.3, &mut rng);
//! let session = SessionBuilder::new()
//!     .fit(|n_cols| LogisticRegression::new(n_cols, 1e-3), &train, &test);
//! // Two metrics, one batch, one lattice sweep.
//! let responses = session.explain_batch(&[
//!     ExplainRequest::default().with_k(3),
//!     ExplainRequest::default()
//!         .with_metric(FairnessMetric::EqualOpportunity)
//!         .with_k(3),
//! ]);
//! assert_eq!(responses.len(), 2);
//! assert!(responses[0].report.base_bias > 0.0);
//! ```

use crate::explainer::{Explanation, ExplanationReport, PatternProfile};
use gopher_data::{Dataset, Encoded, Encoder};
use gopher_fairness::FairnessMetric;
use gopher_influence::{
    BiasEval, BiasPrecomp, EngineUpdateReport, Estimator, HessianBackend, InfluenceBackend,
    InfluenceConfig, InfluenceEngine, ModelFamily,
};
use gopher_models::Differentiable;
use gopher_patterns::{
    generate_predicates, lattice, min_count_for, topk, BitSet, Candidate, CoverageCache,
    LatticeConfig, PredicateIndex, PredicateTable, ScoreFn, SearchStats, SupportPrefilter,
    SweepStructure,
};
use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// Session caches lock via `gopher_par::lock_recover`: every cache only ever
// stores fully-built values that are pure functions of the trained model
// (inserts happen after the value is complete), so the data behind a
// poisoned lock is always valid — a caught panic in one query must not
// brick the session for the next.
use gopher_par::lock_recover;

/// Ground-truth responsibility `(F_old − F_new)/F_old` (Definition 3.2),
/// shared by the solo and fanned-out retraining paths so they can never
/// diverge. Zero when the baseline is (numerically) zero — an unbiased
/// model has no root causes to attribute.
fn gt_responsibility(base: f64, new_bias: f64) -> f64 {
    if base.abs() < 1e-12 {
        0.0
    } else {
        (base - new_bias) / base
    }
}

/// Environment variable consulted when [`SessionBuilder::threads`] is left
/// on auto: `GOPHER_THREADS=<n>` pins the worker count (used by CI to run
/// the whole test suite single- and multi-threaded).
pub const THREADS_ENV: &str = "GOPHER_THREADS";

/// Resolves the builder's thread knob: an explicit positive value wins, then
/// [`THREADS_ENV`], then the host's available parallelism.
fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(value) = std::env::var(THREADS_ENV) {
        if let Ok(n) = value.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    gopher_par::available_parallelism()
}

/// Builds an [`ExplainSession`]: the per-model options that must be fixed
/// before any query can run (everything else lives on [`ExplainRequest`]).
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    max_bins: usize,
    influence: InfluenceConfig,
    threads: usize,
    sweep_cache_cap: usize,
    structure_cache_cap: usize,
    coverage_cache_cap: usize,
    prefilter_sample: usize,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionBuilder {
    /// Default session options (4 quantile bins per numeric feature,
    /// default influence-engine parameters, automatic thread count,
    /// 256-entry scored sweep cache, 64-entry structure cache,
    /// 2¹⁸-entry coverage cache).
    pub fn new() -> Self {
        Self {
            max_bins: 4,
            influence: InfluenceConfig::default(),
            threads: 0,
            sweep_cache_cap: SWEEP_CACHE_CAP,
            structure_cache_cap: STRUCTURE_CACHE_CAP,
            coverage_cache_cap: gopher_patterns::coverage::DEFAULT_COVERAGE_CACHE_CAP,
            prefilter_sample: 0,
        }
    }

    /// Quantile bins per numeric feature for predicate generation.
    #[must_use]
    pub fn max_bins(mut self, max_bins: usize) -> Self {
        self.max_bins = max_bins;
        self
    }

    /// Influence-engine parameters (damping, CG budget, …).
    #[must_use]
    pub fn influence(mut self, influence: InfluenceConfig) -> Self {
        self.influence = influence;
        self
    }

    /// Worker threads for batched queries: scorer passes, structural sweep
    /// groups, and ground-truth retrains all fan out across this many
    /// threads. `0` (the default) resolves to the `GOPHER_THREADS`
    /// environment variable if set, else the host's available parallelism.
    /// Results are bit-identical at every thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Retention bound of the scored sweep cache (finished lattice sweeps),
    /// in entries. Past the cap the least-recently-used sweep is evicted;
    /// `0` disables retention entirely (every query recomputes its sweep).
    #[must_use]
    pub fn sweep_cache_cap(mut self, cap: usize) -> Self {
        self.sweep_cache_cap = cap;
        self
    }

    /// Retention bound of the structure cache (the metric-independent
    /// structural artifact per `(τ, depth, pruning)` configuration —
    /// per-level candidates with shared coverages and supports). Past the
    /// cap the least-recently-used artifact is evicted; `0` disables
    /// retention (every sweep rebuilds its structural phase).
    #[must_use]
    pub fn structure_cache_cap(mut self, cap: usize) -> Self {
        self.structure_cache_cap = cap;
        self
    }

    /// Retention bound of the coverage cache (materialized pattern coverage
    /// bitsets shared across sweeps), in entries. Past the cap fresh
    /// coverages are still computed and returned but not retained; `0`
    /// disables retention entirely (every sweep re-intersects — the
    /// *cold-path* configuration the `support_sweep` bench measures
    /// against).
    #[must_use]
    pub fn coverage_cache_cap(mut self, cap: usize) -> Self {
        self.coverage_cache_cap = cap;
        self
    }

    /// Row-sample size of the admissible sampled-support prefilter, or `0`
    /// (the default) to disable it. When on, the structural pass bounds each
    /// merge's support from above on ~this many sampled rows and skips the
    /// exact intersection when the bound already fails the support
    /// threshold. The skip rule is *admissible* — a merge is skipped iff the
    /// bound proves `count < min_count` — so results, candidates, and every
    /// sweep statistic are bit-identical with the prefilter on or off; only
    /// the structural pass gets cheaper. The bound's power scales with the
    /// sampled *fraction* — about a quarter of the training rows works
    /// well; a fixed few thousand rows proves nothing at SQF scale (see
    /// `gopher_patterns::SupportPrefilter`). Worth turning on from ~100k
    /// rows; at small n the probe overhead outweighs the skipped work, and
    /// around 1M rows the structural pass goes memory-bandwidth-bound and
    /// the prefilter lands at break-even rather than a win.
    #[must_use]
    pub fn prefilter_sample(mut self, sample_rows: usize) -> Self {
        self.prefilter_sample = sample_rows;
        self
    }

    /// Builds a session around an **already trained** model. The model must
    /// have been trained on `Encoder::fit(train_raw)`-encoded data;
    /// influence functions assume its parameters are a stationary point.
    ///
    /// # Panics
    /// If the model's input width does not match the encoded data.
    pub fn build<M: ModelFamily>(
        self,
        model: M,
        train_raw: &Dataset,
        test_raw: &Dataset,
    ) -> ExplainSession<M> {
        let encoder = Encoder::fit(train_raw);
        let train = encoder.transform(train_raw);
        let test = encoder.transform(test_raw);
        assert_eq!(
            model.n_inputs(),
            train.n_cols(),
            "model input width must match the encoded data"
        );
        let backend = M::Backend::build(model, &train, self.influence.clone());
        let table = generate_predicates(train_raw, self.max_bins);
        let coverage = CoverageCache::with_capacity_cap(self.coverage_cache_cap);
        // Materialize every predicate's coverage once, up front: sweeps at
        // any support threshold or metric start from these shared bitsets.
        let index = PredicateIndex::build(&table, &coverage);
        let accuracy = gopher_models::train::accuracy(backend.model(), &test);
        let prefilter = (self.prefilter_sample > 0)
            .then(|| Arc::new(SupportPrefilter::new(table.n_rows(), self.prefilter_sample)));
        ExplainSession {
            train_raw: train_raw.clone(),
            encoder,
            train,
            test,
            backend,
            table,
            index,
            accuracy,
            threads: resolve_threads(self.threads),
            coverage,
            bias_cache: Mutex::new(HashMap::new()),
            sweep_cache: Mutex::new(LruCache::new(self.sweep_cache_cap)),
            structure_cache: Mutex::new(LruCache::new(self.structure_cache_cap)),
            prefilter,
            requests_served: AtomicU64::new(0),
            batches_served: AtomicU64::new(0),
            max_batch_requests: AtomicU64::new(0),
            updates_applied: AtomicU64::new(0),
            artifacts_survived: AtomicU64::new(0),
            artifacts_invalidated: AtomicU64::new(0),
            factor_fallbacks: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        }
    }

    /// Convenience constructor that encodes the data, builds the model via
    /// `make_model(n_encoded_cols)`, trains it to convergence, and wraps it.
    pub fn fit<M: ModelFamily>(
        self,
        make_model: impl FnOnce(usize) -> M,
        train_raw: &Dataset,
        test_raw: &Dataset,
    ) -> ExplainSession<M> {
        let encoder = Encoder::fit(train_raw);
        let train = encoder.transform(train_raw);
        let mut model = make_model(train.n_cols());
        ModelFamily::fit(&mut model, &train);
        self.build(model, train_raw, test_raw)
    }
}

/// One explanation query against an [`ExplainSession`]: everything an
/// analyst iterates over between questions, none of the per-model state.
#[derive(Debug, Clone)]
pub struct ExplainRequest {
    /// Fairness metric to debug.
    pub metric: FairnessMetric,
    /// Number of explanations to return.
    pub k: usize,
    /// Containment threshold `c` for diversity (Definition 3.7).
    pub containment_threshold: f64,
    /// Lattice search parameters (support threshold τ, depth, pruning).
    pub lattice: LatticeConfig,
    /// Influence estimator used to score candidate patterns.
    pub estimator: Estimator,
    /// How estimated parameter changes become bias changes.
    pub bias_eval: BiasEval,
    /// Retrain without each top-k subset to report ground-truth Δbias
    /// (the paper reports this for every table; costs k retrainings).
    pub ground_truth_for_topk: bool,
    /// Re-score the top candidates with the second-order estimator before
    /// the final ranking (cheap: only the survivors of the containment
    /// filter are re-scored). Off by default to match the paper.
    pub rescore_top_with_so: bool,
}

impl Default for ExplainRequest {
    fn default() -> Self {
        Self {
            metric: FairnessMetric::StatisticalParity,
            k: 3,
            containment_threshold: 0.75,
            lattice: LatticeConfig::default(),
            estimator: Estimator::SecondOrder,
            bias_eval: BiasEval::ChainRule,
            ground_truth_for_topk: true,
            rescore_top_with_so: false,
        }
    }
}

impl ExplainRequest {
    /// Sets the fairness metric.
    #[must_use]
    pub fn with_metric(mut self, metric: FairnessMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the number of explanations to return.
    #[must_use]
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the influence estimator.
    #[must_use]
    pub fn with_estimator(mut self, estimator: Estimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// Sets the minimum pattern support threshold τ.
    #[must_use]
    pub fn with_support_threshold(mut self, tau: f64) -> Self {
        self.lattice.support_threshold = tau;
        self
    }

    /// Sets the maximum number of predicates per pattern.
    #[must_use]
    pub fn with_max_predicates(mut self, depth: usize) -> Self {
        self.lattice.max_predicates = depth;
        self
    }

    /// Enables or disables ground-truth verification of the top-k patterns.
    #[must_use]
    pub fn with_ground_truth(mut self, on: bool) -> Self {
        self.ground_truth_for_topk = on;
        self
    }
}

/// The answer to one [`ExplainRequest`].
#[derive(Debug, Clone)]
pub struct ExplainResponse {
    /// The request this response answers (echoed for batch bookkeeping).
    pub request: ExplainRequest,
    /// The explanation report, identical in content to what a cold
    /// [`Gopher`](crate::Gopher) run with the equivalent config produces.
    pub report: ExplanationReport,
    /// Wall-clock time this request cost the session, including the lattice
    /// sweep when this request was the first in its batch to need it. A
    /// repeat of a cached request (or a batch peer sharing a sweep) reports
    /// only its own selection and ground-truth time — near zero with ground
    /// truth off.
    pub query_time: Duration,
}

/// What one [`ExplainSession::update`] did: the delta's shape, the
/// influence-engine path taken, and how the structural cache fared.
#[derive(Debug, Clone)]
pub struct UpdateReport {
    /// Rows removed from the training set.
    pub rows_removed: usize,
    /// Rows appended to the training set.
    pub rows_added: usize,
    /// Training rows after the delta.
    pub n_rows: usize,
    /// The influence-engine delta report: whether the Cholesky patch held,
    /// whether the engine fell back to a full rebuild, and the warm-retrain
    /// diagnostics.
    pub engine: EngineUpdateReport,
    /// Structural artifacts re-anchored in place by the frontier check.
    pub artifacts_survived: usize,
    /// Structural artifacts invalidated (level-1 frontier flipped).
    pub artifacts_invalidated: usize,
    /// Wall-clock cost of applying the delta end to end.
    pub update_time: Duration,
}

/// Hashable identity of the *structural* half of a lattice sweep: the
/// parameters candidate enumeration depends on, none of the scoring. Two
/// requests with the same `StructuralKey` share one [`SweepStructure`]
/// artifact — pattern enumeration, coverage intersection, and support
/// counting run once across all their metrics, estimators, and bias-evals.
///
/// The support threshold enters as the **integer count** `⌈τ·n⌉` a pattern
/// must clear, not τ's bit pattern: the sweep never consults τ except
/// through that count, so any two thresholds with the same `min_count`
/// (including the `-0.0`/`0.0` pair, whose `f64::to_bits` differ) are the
/// *same* structural configuration and share one artifact. The integer key
/// is also what makes the cache range-capable — see
/// [`StructuralKey::serves`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StructuralKey {
    min_count: usize,
    max_predicates: usize,
    prune_by_responsibility: bool,
    max_level_candidates: Option<usize>,
}

impl StructuralKey {
    fn of(lattice: &LatticeConfig, n_rows: usize) -> Self {
        Self {
            min_count: min_count_for(lattice.support_threshold, n_rows),
            max_predicates: lattice.max_predicates,
            prune_by_responsibility: lattice.prune_by_responsibility,
            max_level_candidates: lattice.max_level_candidates,
        }
    }

    /// True when an artifact cached under `self` can serve a request keyed
    /// by `req` through [`SweepStructure::refilter_view`]: identical
    /// depth/pruning knobs and a looser-or-equal support count. Support is
    /// anti-monotone, so the looser artifact's singles and merge records
    /// are a superset of everything the tighter sweep can reach.
    fn serves(&self, req: &StructuralKey) -> bool {
        self.max_predicates == req.max_predicates
            && self.prune_by_responsibility == req.prune_by_responsibility
            && self.max_level_candidates == req.max_level_candidates
            && self.min_count <= req.min_count
    }
}

/// Hashable identity of the *scoring* half of a sweep: the metric ×
/// estimator × bias-eval triple that turns a coverage into a responsibility.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ScoringKey {
    metric: FairnessMetric,
    estimator: (u8, u64),
    bias_eval: BiasEval,
}

/// Full identity of a scored sweep: structural part + scoring part. Two
/// requests with the same `SweepKey` share one scored `compute_candidates`
/// result exactly; requests agreeing only on the structural part still
/// share the structural artifact (the cheaper tier to miss).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SweepKey {
    structural: StructuralKey,
    scoring: ScoringKey,
}

impl SweepKey {
    fn of(req: &ExplainRequest, n_rows: usize) -> Self {
        Self {
            structural: StructuralKey::of(&req.lattice, n_rows),
            scoring: ScoringKey {
                metric: req.metric,
                estimator: estimator_key(req.estimator),
                bias_eval: req.bias_eval,
            },
        }
    }
}

/// Canonical bit pattern for an `f64` embedded in a cache key: `-0.0`
/// normalizes to `0.0` first, so numerically equal configurations share one
/// cache entry instead of silently duplicating artifacts (the structural
/// τ-key bug fixed in PR 5 — now denied workspace-wide by `gopher-analyze`'s
/// `float-bits-key` rule).
fn canonical_f64_key_bits(x: f64) -> u64 {
    let x = if x == 0.0 { 0.0 } else { x };
    // gopher-lint: allow(float-bits-key) — the canonicalization helper itself
    x.to_bits()
}

fn estimator_key(e: Estimator) -> (u8, u64) {
    match e {
        Estimator::FirstOrder => (0, 0),
        Estimator::SecondOrder => (1, 0),
        Estimator::NewtonStep => (2, 0),
        Estimator::OneStepGd { learning_rate } => (3, canonical_f64_key_bits(learning_rate)),
    }
}

/// Default cap on retained scored sweep results. A sweep's candidate vector
/// is the largest thing a session caches, so — like the coverage cache —
/// retention is bounded: past the cap, the least-recently-used sweep is
/// evicted (tunable via [`SessionBuilder::sweep_cache_cap`]).
const SWEEP_CACHE_CAP: usize = 256;

/// Default cap on retained structural artifacts. One artifact exists per
/// structural configuration (support τ × depth × pruning), which an analyst
/// turns far less often than metrics or estimators (tunable via
/// [`SessionBuilder::structure_cache_cap`]).
const STRUCTURE_CACHE_CAP: usize = 64;

/// A finished scored lattice sweep, cached per [`SweepKey`] for the
/// session's lifetime (candidates are pure functions of the trained model).
struct SweepResult {
    candidates: Vec<Candidate>,
    stats: SearchStats,
    /// Wall-clock cost of the sweep when it actually ran (reported as the
    /// search time of every request that reuses it).
    duration: Duration,
}

/// LRU-bounded map with hit/miss/eviction counters, backing both cache
/// tiers: scored sweeps ([`SweepKey`] → [`SweepResult`]) and structural
/// artifacts ([`StructuralKey`] → [`SweepStructure`]). The counters are the
/// serving deployment's observability surface — see
/// [`ExplainSession::stats`].
struct LruCache<K, V> {
    entries: HashMap<K, LruSlot<V>>,
    /// Logical clock bumped on every access; slots carry the tick of their
    /// last use, and eviction removes the minimum.
    tick: u64,
    cap: usize,
    hits: u64,
    misses: u64,
    /// Lookups answered by *re-filtering* a differently-keyed entry rather
    /// than an exact match — the structure tier's τ-monotone serve. Always
    /// zero on the scored tier (scored sweeps have no range semantics).
    range_hits: u64,
    evictions: u64,
}

struct LruSlot<V> {
    value: V,
    last_used: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    fn new(cap: usize) -> Self {
        Self {
            entries: HashMap::new(),
            tick: 0,
            cap,
            hits: 0,
            misses: 0,
            range_hits: 0,
            evictions: 0,
        }
    }

    /// Counter bumps for callers that drive lookups through
    /// [`Self::get_quiet`] plus their own matching logic (the structure
    /// tier's range-capable path): classification — exact hit, range serve,
    /// or miss — happens outside, the tallies live here.
    fn note_hit(&mut self) {
        self.hits += 1;
    }

    fn note_miss(&mut self) {
        self.misses += 1;
    }

    fn note_range_hit(&mut self) {
        self.range_hits += 1;
    }

    /// Iterates the cached keys (no recency or counter side effects).
    fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.keys()
    }

    /// Looks `key` up, counting a hit or miss and refreshing recency.
    fn lookup(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(slot) => {
                slot.last_used = self.tick;
                self.hits += 1;
                Some(slot.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Like [`Self::lookup`] but without touching the hit/miss counters:
    /// used when re-reading a key the caller already counted.
    fn get_quiet(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|slot| {
            slot.last_used = tick;
            slot.value.clone()
        })
    }

    /// Drops every cached value while preserving the hit/miss/eviction
    /// counters and the recency clock: a data update invalidates *values*,
    /// not the session's serving history.
    fn clear_values(&mut self) {
        self.entries.clear();
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used entry
    /// if the cache is at capacity. With `cap == 0` nothing is retained.
    fn insert(&mut self, key: K, value: V) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.cap {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            LruSlot {
                value,
                last_used: self.tick,
            },
        );
    }
}

/// Number of geometric latency buckets: bucket `i` covers `[2^(i−1), 2^i)`
/// microseconds (bucket 0 is `< 1 µs`), so the last bucket's lower bound is
/// `2^38 µs` ≈ 3 days — effectively open-ended for an explain request.
const LATENCY_BUCKETS: usize = 40;

/// Lock-free fixed-boundary histogram of per-request explain latency.
///
/// Recording is one relaxed atomic increment fed from the `query_time` each
/// request already measures — the scored paths gain **no** new clock reads —
/// and the boundaries are fixed powers of two, so concurrent recording never
/// contends or rebalances. Quantiles are answered as the *upper* boundary of
/// the bucket containing the target rank: conservative, and exact to within
/// the 2× bucket width (plenty for the p50/p99 a deployment alerts on).
struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
}

impl LatencyHistogram {
    fn new() -> Self {
        Self {
            buckets: (0..LATENCY_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = (64 - us.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Upper boundary (µs) of the bucket holding quantile `q` of everything
    /// recorded so far; 0 when nothing has been recorded.
    fn quantile_upper_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (LATENCY_BUCKETS - 1)
    }
}

/// Counters a serving deployment watches: effectiveness of all three cache
/// layers (scored sweeps, structural artifacts, coverage bitsets) and the
/// session's parallelism. Snapshot via [`ExplainSession::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStats {
    /// Worker threads the session fans batched queries across.
    pub threads: usize,
    /// Finished scored sweeps currently retained.
    pub sweep_entries: usize,
    /// Capacity bound on retained scored sweeps (LRU past this).
    pub sweep_cache_cap: usize,
    /// Requests answered from a cached scored sweep.
    pub sweep_hits: u64,
    /// Requests that had to run (or re-run) their scored sweep.
    pub sweep_misses: u64,
    /// Scored sweeps evicted to respect the cap.
    pub sweep_evictions: u64,
    /// Structural artifacts currently retained (one per structural config).
    pub structure_entries: usize,
    /// Capacity bound on retained structural artifacts.
    pub structure_cache_cap: usize,
    /// Sweeps that reused a cached structural artifact — pattern
    /// enumeration, coverage intersection, and support counting skipped.
    pub structure_hits: u64,
    /// Sweeps served by **re-filtering** an artifact cached at a looser
    /// support threshold (same depth/pruning): the τ-monotone range path.
    /// No coverage is intersected or materialized on this path — singles
    /// and merge records are filtered against the tighter count.
    pub structure_range_hits: u64,
    /// Sweeps that had to build (or rebuild) their structural artifact.
    pub structure_misses: u64,
    /// Structural artifacts evicted to respect the cap.
    pub structure_evictions: u64,
    /// Materialized pattern coverages shared across sweeps.
    pub cached_coverages: usize,
    /// Coverage-cache lookups answered without intersecting.
    pub coverage_hits: u64,
    /// Coverage-cache lookups that computed their intersection.
    pub coverage_misses: u64,
    /// Fresh coverages the coverage-cache cap refused to retain (nonzero
    /// means the cap is too small for the workload).
    pub coverage_inserts_refused: u64,
    /// Effective row-sample size of the sampled-support prefilter (`0` when
    /// the prefilter is off).
    pub prefilter_sample_rows: usize,
    /// Merge resolutions that consulted the prefilter.
    pub prefilter_probes: u64,
    /// Prefilter consultations whose sampled upper bound skipped the exact
    /// intersection (each one a provably unsupported merge).
    pub prefilter_skips: u64,
    /// Total explanation requests answered (every entry point funnels
    /// through [`ExplainSession::explain_batch`]). Registry-facing: the
    /// per-session traffic counter a serving deployment watches.
    pub requests_served: u64,
    /// `explain_batch` invocations. `batches_served < requests_served`
    /// means callers were coalesced — the serving daemon's micro-batching
    /// win, measured at the layer where the sweeps actually run.
    pub batches_served: u64,
    /// Largest single batch answered so far.
    pub max_batch_requests: u64,
    /// Data deltas applied via [`ExplainSession::update`].
    pub updates_applied: u64,
    /// Structural artifacts that survived updates via the frontier-flip
    /// check (re-anchored in place instead of rebuilt).
    pub artifacts_survived: u64,
    /// Structural artifacts dropped by updates because a level-1 single
    /// crossed the support frontier.
    pub artifacts_invalidated: u64,
    /// Updates whose influence-engine delta fell back — a refactorization
    /// after a failed factor patch, or a full engine rebuild (drift bound,
    /// warm-retrain stall, non-analytic model). Fallbacks trade the speedup
    /// for exactness; a high rate means deltas are too large relative to n.
    pub factor_fallbacks: u64,
    /// Median per-request explain latency in µs (upper bucket boundary of
    /// the session's fixed power-of-two histogram; 0 until a request runs).
    pub explain_p50_us: u64,
    /// 99th-percentile per-request explain latency in µs (same histogram).
    pub explain_p99_us: u64,
}

/// A long-lived explainer bound to one trained model.
///
/// Owns everything expensive — the raw and encoded data, the influence
/// engine (per-example gradients + factored Hessian), the predicate table, a
/// [`CoverageCache`] of materialized pattern bitsets, per-metric bias
/// precomputations, and finished sweeps — and answers [`ExplainRequest`]s
/// against that state. All caches sit behind mutexes, so a session is `Sync`
/// and can serve concurrent `&self` queries.
pub struct ExplainSession<M: ModelFamily> {
    train_raw: Dataset,
    encoder: Encoder,
    train: Encoded,
    test: Encoded,
    backend: M::Backend,
    table: PredicateTable,
    /// Every predicate's coverage bitset, materialized once at build.
    index: PredicateIndex,
    accuracy: f64,
    threads: usize,
    coverage: CoverageCache,
    bias_cache: Mutex<HashMap<FairnessMetric, BiasPrecomp>>,
    /// Tier 2: finished scored sweeps, keyed by structural × scoring.
    sweep_cache: Mutex<LruCache<SweepKey, Arc<SweepResult>>>,
    /// Tier 1: structural artifacts, keyed by structural config alone and
    /// reused across metrics, estimators, and bias evaluations.
    structure_cache: Mutex<LruCache<StructuralKey, Arc<SweepStructure>>>,
    /// Admissible sampled-support prefilter attached to every structural
    /// artifact this session builds; `None` when the knob is off. Session-
    /// constant, so it is deliberately *not* part of [`StructuralKey`] —
    /// artifacts differ only in speed, never content.
    prefilter: Option<Arc<SupportPrefilter>>,
    /// Total [`ExplainRequest`]s this session has answered (every entry
    /// point funnels through [`Self::explain_batch`]). Registry-facing: a
    /// serving deployment's per-session traffic counter.
    requests_served: AtomicU64,
    /// Number of [`Self::explain_batch`] invocations. The gap between this
    /// and [`Self::requests_served`] is exactly what batching amortized:
    /// `batches < requests` means concurrent callers were coalesced.
    batches_served: AtomicU64,
    /// Largest single batch answered so far.
    max_batch_requests: AtomicU64,
    /// Data deltas applied via [`Self::update`].
    updates_applied: AtomicU64,
    /// Structural artifacts carried across updates by the frontier check.
    artifacts_survived: AtomicU64,
    /// Structural artifacts dropped by updates (frontier flip).
    artifacts_invalidated: AtomicU64,
    /// Updates whose engine delta refactored or fully rebuilt.
    factor_fallbacks: AtomicU64,
    /// Per-request explain latency, fed from each response's `query_time`.
    latency: LatencyHistogram,
}

impl<M: ModelFamily> ExplainSession<M> {
    /// The trained model.
    pub fn model(&self) -> &M {
        self.backend.model()
    }

    /// The fitted encoder.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// The encoded training set.
    pub fn train(&self) -> &Encoded {
        &self.train
    }

    /// The encoded test set.
    pub fn test(&self) -> &Encoded {
        &self.test
    }

    /// The raw training dataset.
    pub fn train_raw(&self) -> &Dataset {
        &self.train_raw
    }

    /// The influence backend behind this session (family-generic).
    pub fn backend(&self) -> &M::Backend {
        &self.backend
    }

    /// The influence engine (for advanced Hessian-side queries: per-row
    /// gradients, parameter changes, the factored Hessian). Only available
    /// when the session's family is Hessian-backed — a forest session fails
    /// to *type-check* here instead of panicking at runtime.
    pub fn engine(&self) -> &InfluenceEngine<M>
    where
        M: ModelFamily<Backend = HessianBackend<M>> + Differentiable,
    {
        self.backend.engine()
    }

    /// The candidate predicate table.
    pub fn predicate_table(&self) -> &PredicateTable {
        &self.table
    }

    /// Test accuracy of the model (computed once at session build).
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// Worker threads batched queries fan out across (resolved at build
    /// from [`SessionBuilder::threads`]).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of the session's serving counters: hits, misses, and
    /// evictions of the scored sweep cache, the structure cache, and the
    /// coverage cache, plus retained entries and the thread count.
    pub fn stats(&self) -> SessionStats {
        let coverage = self.coverage.stats();
        // No query path ever holds both cache locks at once, so taking both
        // here cannot deadlock against a running batch.
        let sweep = lock_recover(&self.sweep_cache);
        let structure = lock_recover(&self.structure_cache);
        SessionStats {
            threads: self.threads,
            sweep_entries: sweep.entries.len(),
            sweep_cache_cap: sweep.cap,
            sweep_hits: sweep.hits,
            sweep_misses: sweep.misses,
            sweep_evictions: sweep.evictions,
            structure_entries: structure.entries.len(),
            structure_cache_cap: structure.cap,
            structure_hits: structure.hits,
            structure_range_hits: structure.range_hits,
            structure_misses: structure.misses,
            structure_evictions: structure.evictions,
            cached_coverages: coverage.entries,
            coverage_hits: coverage.hits,
            coverage_misses: coverage.misses,
            coverage_inserts_refused: coverage.inserts_refused,
            prefilter_sample_rows: self.prefilter.as_ref().map_or(0, |p| p.sample_rows()),
            prefilter_probes: self.prefilter.as_ref().map_or(0, |p| p.probes()),
            prefilter_skips: self.prefilter.as_ref().map_or(0, |p| p.skips()),
            requests_served: self.requests_served.load(Ordering::Relaxed),
            batches_served: self.batches_served.load(Ordering::Relaxed),
            max_batch_requests: self.max_batch_requests.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            artifacts_survived: self.artifacts_survived.load(Ordering::Relaxed),
            artifacts_invalidated: self.artifacts_invalidated.load(Ordering::Relaxed),
            factor_fallbacks: self.factor_fallbacks.load(Ordering::Relaxed),
            explain_p50_us: self.latency.quantile_upper_us(0.50),
            explain_p99_us: self.latency.quantile_upper_us(0.99),
        }
    }

    /// Hard bias of the model under `metric` on the test set (cached).
    pub fn base_bias(&self, metric: FairnessMetric) -> f64 {
        self.bias_precomp(metric).base_hard
    }

    /// Number of materialized pattern coverages the session has cached.
    pub fn cached_coverages(&self) -> usize {
        self.coverage.len()
    }

    /// Answers one request. Equivalent to `explain_batch` with a singleton
    /// slice; the response content matches a cold
    /// [`Gopher`](crate::Gopher) run with the equivalent config bit for bit.
    pub fn explain(&self, request: &ExplainRequest) -> ExplainResponse {
        self.explain_batch(std::slice::from_ref(request))
            .pop()
            .expect("one request in, one response out")
    }

    /// Answers a batch of requests, sharing and fanning out work wherever
    /// the requests allow:
    ///
    /// * requests with identical structural lattice parameters share **one
    ///   sweep** — the structural enumeration and every coverage
    ///   intersection run once, with the per-request scoring callbacks
    ///   (metric × estimator × bias-eval) fanned out across the session's
    ///   worker threads;
    /// * distinct structural groups run **concurrently**, each on its own
    ///   worker;
    /// * requests with identical scoring too (differing only in k,
    ///   containment, or ground-truth flags) share the sweep *result*;
    /// * all sweeps consult the session's coverage cache, so later batches
    ///   and queries skip intersections any earlier query materialized;
    /// * ground-truth retrains for each answer's top-k fan out per pattern.
    ///
    /// Responses come back in request order, each with content identical to
    /// a cold run of that request alone — at any thread count.
    pub fn explain_batch(&self, requests: &[ExplainRequest]) -> Vec<ExplainResponse> {
        if !requests.is_empty() {
            self.requests_served
                .fetch_add(requests.len() as u64, Ordering::Relaxed);
            self.batches_served.fetch_add(1, Ordering::Relaxed);
            self.max_batch_requests
                .fetch_max(requests.len() as u64, Ordering::Relaxed);
        }
        let n_rows = self.table.n_rows();
        let keys: Vec<SweepKey> = requests.iter().map(|r| SweepKey::of(r, n_rows)).collect();

        // Find sweeps not yet cached, grouped by structural lattice config
        // (first-seen order keeps runs deterministic). This is also where
        // the hit/miss counters are charged — once per request.
        let mut missing: Vec<(SweepKey, &ExplainRequest)> = Vec::new();
        {
            let mut cache = lock_recover(&self.sweep_cache);
            for (key, req) in keys.iter().zip(requests) {
                if cache.lookup(key).is_none() && !missing.iter().any(|(k, _)| k == key) {
                    missing.push((key.clone(), req));
                }
            }
        }
        // Freshly-swept keys: their sweep cost is charged to the first
        // request in the batch that needed them (see `query_time`).
        let mut fresh: HashSet<SweepKey> = missing.iter().map(|(k, _)| k.clone()).collect();

        struct Group<'r> {
            structural: StructuralKey,
            lattice: LatticeConfig,
            members: Vec<(SweepKey, &'r ExplainRequest)>,
            structure: Option<Arc<SweepStructure>>,
        }
        let mut structural_groups: Vec<Group<'_>> = Vec::new();
        for (key, req) in missing {
            let structural = key.structural.clone();
            match structural_groups
                .iter_mut()
                .find(|g| g.structural == structural)
            {
                Some(group) => group.members.push((key, req)),
                None => structural_groups.push(Group {
                    structural,
                    lattice: req.lattice.clone(),
                    members: vec![(key, req)],
                    structure: None,
                }),
            }
        }

        // Resolve each group's structural artifact up front, loosest support
        // count first (stable on ties, so equal-count groups keep first-seen
        // order): a batch mixing τ = 0.02 and τ = 0.05 must let the tighter
        // group range-serve off the looser artifact deterministically, which
        // the concurrent group fan-out below could not guarantee. Artifacts
        // are level-1 filters — cheap; the expensive merge resolution still
        // happens inside the (parallel) sweeps.
        let mut resolve_order: Vec<usize> = (0..structural_groups.len()).collect();
        resolve_order.sort_by_key(|&i| structural_groups[i].structural.min_count);
        for i in resolve_order {
            let structure = self.structure_for(&structural_groups[i].lattice);
            structural_groups[i].structure = Some(structure);
        }

        // Distinct structural groups are independent sweeps: fan them out,
        // splitting the thread budget between the group level and each
        // group's scorer fan-out so nesting can't oversubscribe to
        // ~threads² live workers. Fresh sweeps are handed back directly
        // (and cached subject to the LRU bound) so over-cap batches still
        // answer without recomputation.
        let outer = self.threads.min(structural_groups.len()).max(1);
        let inner = (self.threads / outer).max(1);
        let group_results = gopher_par::par_map(outer, &structural_groups, |_, group| {
            let structure = group.structure.as_ref().expect("resolved above");
            self.run_sweeps_with(&group.lattice, &group.members, inner, structure)
        });
        let mut batch_sweeps: HashMap<SweepKey, Arc<SweepResult>> = HashMap::new();
        for (key, sweep) in group_results.into_iter().flatten() {
            batch_sweeps.insert(key, sweep);
        }

        keys.iter()
            .zip(requests)
            .map(|(key, req)| {
                // The `let` matters: it drops the cache guard before the
                // recompute path below re-enters `run_sweeps` (which takes
                // the same lock to store its result).
                let cached = match batch_sweeps.get(key) {
                    Some(sweep) => Some(Arc::clone(sweep)),
                    None => lock_recover(&self.sweep_cache).get_quiet(key),
                };
                let sweep = match cached {
                    Some(sweep) => sweep,
                    // The key was cached when the batch started, but this is
                    // a second lock acquisition: a concurrent batch (or this
                    // batch's own inserts) may have LRU-evicted it since.
                    // Recompute instead of panicking.
                    None => {
                        let recomputed = self
                            .run_sweeps(&req.lattice, &[(key.clone(), req)])
                            .pop()
                            .expect("one member in, one sweep out")
                            .1;
                        // The rerun is this request's own cost.
                        fresh.insert(key.clone());
                        recomputed
                    }
                };
                let response = self.answer(&sweep, req, fresh.remove(key));
                // Feed the latency histogram from the duration the response
                // already carries — no extra clock reads on the scored path.
                self.latency.record(response.query_time);
                response
            })
            .collect()
    }

    /// [`Self::run_sweeps_with`] using the session's full thread budget
    /// (the path for single-group work, e.g. the eviction fallback).
    fn run_sweeps(
        &self,
        lattice_cfg: &LatticeConfig,
        members: &[(SweepKey, &ExplainRequest)],
    ) -> Vec<(SweepKey, Arc<SweepResult>)> {
        let structure = self.structure_for(lattice_cfg);
        self.run_sweeps_with(lattice_cfg, members, self.threads, &structure)
    }

    /// The structural artifact for one lattice configuration, through the
    /// **range-capable** structure cache:
    ///
    /// * an exact hit returns the shared [`SweepStructure`] as-is;
    /// * otherwise, support counts being anti-monotone, any artifact cached
    ///   over the *same depth/pruning knobs at a looser (≤) support count*
    ///   already contains every single and merge record this request can
    ///   reach — the tightest such artifact is served through
    ///   [`SweepStructure::refilter_view`] (a filter, zero intersections)
    ///   and the view is cached under this request's own key so repeats
    ///   exact-hit it;
    /// * a genuine miss builds a fresh artifact from the session's
    ///   predicate index.
    ///
    /// Everything is retained subject to the LRU bound.
    fn structure_for(&self, lattice_cfg: &LatticeConfig) -> Arc<SweepStructure> {
        let key = StructuralKey::of(lattice_cfg, self.table.n_rows());
        let base = {
            let mut cache = lock_recover(&self.structure_cache);
            if let Some(hit) = cache.get_quiet(&key) {
                cache.note_hit();
                return hit;
            }
            // τ-monotone range lookup. The tightest qualifying source wins:
            // it has the least content to re-filter, and any qualifying
            // artifact yields bit-identical sweeps.
            let source = cache
                .keys()
                .filter(|k| k.serves(&key))
                .max_by_key(|k| k.min_count)
                .cloned();
            match source {
                Some(src) => {
                    cache.note_range_hit();
                    Some(cache.get_quiet(&src).expect("key scanned under this lock"))
                }
                None => {
                    cache.note_miss();
                    None
                }
            }
        };
        // Build or re-filter outside the lock; on a race, keep the first
        // artifact so concurrent queries keep sharing one set of resolved
        // merges.
        let fresh = Arc::new(match base {
            Some(base) => base.refilter_view(key.min_count),
            None => SweepStructure::build_with_prefilter(
                &self.index,
                lattice_cfg,
                self.prefilter.clone(),
            ),
        });
        let mut cache = lock_recover(&self.structure_cache);
        if let Some(raced) = cache.get_quiet(&key) {
            return raced;
        }
        cache.insert(key, Arc::clone(&fresh));
        fresh
    }

    /// Runs one multi-scorer sweep for all `members` (same structural
    /// lattice config, distinct scoring) against an already-resolved
    /// `structure` (callers fetch it via [`Self::structure_for`] — the
    /// batch path resolves all its groups' artifacts up front, in
    /// loosest-τ-first order), fanning the per-member scorer passes across
    /// up to `threads` workers (the batched path splits the session budget
    /// between concurrent groups and this fan-out). Results are cached
    /// subject to the LRU bound and returned for this batch.
    fn run_sweeps_with(
        &self,
        lattice_cfg: &LatticeConfig,
        members: &[(SweepKey, &ExplainRequest)],
        threads: usize,
        structure: &Arc<SweepStructure>,
    ) -> Vec<(SweepKey, Arc<SweepResult>)> {
        let mut scorers: Vec<ScoreFn<'_>> = members
            .iter()
            .map(|(_, req)| {
                let scorer = self.backend.scorer(
                    &self.train,
                    &self.test,
                    req.metric,
                    self.bias_precomp(req.metric),
                    req.estimator,
                    req.bias_eval,
                );
                Box::new(move |cov: &BitSet| scorer(&cov.to_indices())) as ScoreFn<'_>
            })
            .collect();
        let results = lattice::compute_candidates_multi(
            &self.table,
            &mut scorers,
            lattice_cfg,
            &self.coverage,
            structure,
            threads,
        );
        let mut fresh_sweeps = Vec::with_capacity(members.len());
        let mut cache = lock_recover(&self.sweep_cache);
        for ((key, _), (candidates, stats)) in members.iter().zip(results) {
            let duration = stats.levels.iter().map(|l| l.duration).sum();
            let sweep = Arc::new(SweepResult {
                candidates,
                stats,
                duration,
            });
            cache.insert(key.clone(), Arc::clone(&sweep));
            fresh_sweeps.push((key.clone(), sweep));
        }
        fresh_sweeps
    }

    /// Builds the response for one request from its sweep. `charge_sweep` is
    /// set for the first request of the batch that needed a fresh sweep, so
    /// its `query_time` carries the sweep's cost.
    fn answer(
        &self,
        sweep: &SweepResult,
        req: &ExplainRequest,
        charge_sweep: bool,
    ) -> ExplainResponse {
        let t_query = Instant::now();
        let precomp = self.bias_precomp(req.metric);
        let t_select = Instant::now();
        let mut selected = topk::top_k(&sweep.candidates, req.k, req.containment_threshold);
        if req.rescore_top_with_so {
            let scorer = self.backend.scorer(
                &self.train,
                &self.test,
                req.metric,
                precomp.clone(),
                Estimator::SecondOrder,
                req.bias_eval,
            );
            for cand in &mut selected {
                let rows = cand.coverage.to_indices();
                cand.responsibility = scorer(&rows);
                cand.interestingness = cand.responsibility / cand.support;
            }
            selected.sort_by(|a, b| b.interestingness.total_cmp(&a.interestingness));
        }
        let search_time = sweep.duration + t_select.elapsed();

        // Ground truth is the per-answer hot path (one full retrain per
        // pattern), so the k retrains fan out across the worker threads;
        // everything else about finalization is cheap and stays inline.
        let explanations: Vec<Explanation> = if req.ground_truth_for_topk {
            let subsets: Vec<Vec<u32>> = selected
                .iter()
                .map(|candidate| candidate.coverage.to_indices())
                .collect();
            let models = self.backend.ground_truth_models(
                &self.train,
                &subsets,
                self.threads.min(subsets.len()),
            );
            // The baseline bias never changes within an answer.
            let base = gopher_fairness::bias(req.metric, self.backend.model(), &self.test);
            selected
                .into_iter()
                .zip(models)
                .map(|(candidate, model)| {
                    let new_bias = gopher_fairness::bias(req.metric, &model, &self.test);
                    let resp = gt_responsibility(base, new_bias);
                    Explanation {
                        pattern_text: candidate
                            .pattern
                            .render(&self.table, self.train_raw.schema()),
                        support: candidate.support,
                        est_responsibility: candidate.responsibility,
                        ground_truth_responsibility: Some(resp),
                        ground_truth_new_bias: Some(new_bias),
                        candidate,
                    }
                })
                .collect()
        } else {
            selected
                .into_iter()
                .map(|candidate| self.finalize_explanation(candidate, req))
                .collect()
        };

        let report = ExplanationReport {
            metric: req.metric,
            base_bias: precomp.base_hard,
            accuracy: self.accuracy,
            explanations,
            stats: sweep.stats.clone(),
            search_time,
        };
        let mut query_time = t_query.elapsed();
        if charge_sweep {
            query_time += sweep.duration;
        }
        ExplainResponse {
            request: req.clone(),
            report,
            query_time,
        }
    }

    fn finalize_explanation(&self, candidate: Candidate, req: &ExplainRequest) -> Explanation {
        let pattern_text = candidate
            .pattern
            .render(&self.table, self.train_raw.schema());
        let (gt_resp, gt_new) = if req.ground_truth_for_topk {
            let rows = candidate.coverage.to_indices();
            let (resp, new_bias) = self.ground_truth_responsibility(req.metric, &rows);
            (Some(resp), Some(new_bias))
        } else {
            (None, None)
        };
        Explanation {
            pattern_text,
            support: candidate.support,
            est_responsibility: candidate.responsibility,
            ground_truth_responsibility: gt_resp,
            ground_truth_new_bias: gt_new,
            candidate,
        }
    }

    /// Descriptive statistics of a pattern's coverage, for reports: how the
    /// covered rows differ from the rest of the training data in label and
    /// group composition. This is the "why is this subset responsible"
    /// context a reviewer needs next to the raw responsibility number.
    pub fn pattern_profile(&self, candidate: &Candidate) -> PatternProfile {
        let n = self.train.n_rows();
        let mut in_pos = 0usize;
        let mut in_priv = 0usize;
        let mut in_count = 0usize;
        let mut out_pos = 0usize;
        let mut out_priv = 0usize;
        for r in 0..n {
            let covered = candidate.coverage.contains(r);
            let pos = self.train.y[r] == 1.0;
            let priv_ = self.train.privileged[r];
            if covered {
                in_count += 1;
                in_pos += usize::from(pos);
                in_priv += usize::from(priv_);
            } else {
                out_pos += usize::from(pos);
                out_priv += usize::from(priv_);
            }
        }
        let out_count = n - in_count;
        let frac = |num: usize, den: usize| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        PatternProfile {
            rows: in_count,
            positive_rate: frac(in_pos, in_count),
            privileged_rate: frac(in_priv, in_count),
            rest_positive_rate: frac(out_pos, out_count),
            rest_privileged_rate: frac(out_priv, out_count),
        }
    }

    /// Ground-truth responsibility of an arbitrary row subset under
    /// `metric` (retrains without the subset).
    pub fn ground_truth_responsibility(&self, metric: FairnessMetric, rows: &[u32]) -> (f64, f64) {
        let model = self.backend.ground_truth_model(&self.train, rows);
        let new_bias = gopher_fairness::bias(metric, &model, &self.test);
        let base = gopher_fairness::bias(metric, self.backend.model(), &self.test);
        (gt_responsibility(base, new_bias), new_bias)
    }

    /// Applies a training-data delta — `removed` row indices dropped,
    /// `added` rows (same schema) appended — **incrementally**, without
    /// re-paying the session build.
    ///
    /// Featurization is *frozen*: the encoder's statistics and the predicate
    /// thresholds/bins fixed at session build stay as they are, so
    /// explanations before and after a delta range over the same predicate
    /// space and the same feature scaling (re-binning under the analyst
    /// would silently change what patterns mean). Under that contract the
    /// updated session is equivalent to [`Self::cold_rebuild`] — a
    /// from-scratch session over the new data with the same frozen
    /// featurization:
    ///
    /// * the **model** is warm-retrained to the same convergence tolerance
    ///   on the true post-delta gradient, its Hessian re-assembled
    ///   incrementally and its Cholesky factor patched by rank-1
    ///   updates/downdates (falling back to a verified refactorization or a
    ///   full engine rebuild when the patch drifts — see
    ///   [`EngineUpdateReport`]), so parameters match a cold fit within the
    ///   trainer's tolerance;
    /// * **predicate coverages** are bitset-patched (prefix-sum remap +
    ///   matching only the appended rows), bit-identical to re-evaluating
    ///   the frozen predicates;
    /// * **structural artifacts** survive when their level-1 support
    ///   frontier provably did not flip, re-anchored onto the new coverages;
    ///   flipped ones are dropped for lazy rebuild;
    /// * **scored sweeps and bias gradients** are invalidated wholesale
    ///   (they depend on the model's parameters, which moved).
    ///
    /// # Panics
    /// If a removed index is out of range or listed twice, if `added`'s
    /// schema differs from the training schema, or if the delta would leave
    /// the training set empty.
    pub fn update(&mut self, removed: &[usize], added: &Dataset) -> UpdateReport {
        let t0 = Instant::now();
        let n_old = self.train_raw.n_rows();
        let mut mask = vec![false; n_old];
        for &r in removed {
            assert!(r < n_old, "update: removed row {r} out of range ({n_old})");
            assert!(!mask[r], "update: removed row {r} listed twice");
            mask[r] = true;
        }
        let new_raw = self.train_raw.patched(&mask, added);
        assert!(
            new_raw.n_rows() > 0,
            "update: delta would leave the training set empty"
        );
        // Encoding is row-wise under the frozen layout, so patching the
        // encoded matrix (drop removed rows, append the transformed delta)
        // is bit-identical to `self.encoder.transform(&new_raw)` without
        // re-encoding the unchanged rows.
        let new_train = self.train.patched(&mask, &self.encoder.transform(added));
        let keep = n_old - removed.len();

        // Engine delta. Removed rows are read from the *old* encoded train;
        // the frozen encoder guarantees they equal what `transform` produced
        // for those raw rows, so the engine's incremental Hessian subtracts
        // exactly what was once added.
        let removed_pairs: Vec<(&[f64], f64)> = removed
            .iter()
            .map(|&r| (self.train.x.row(r), self.train.y[r]))
            .collect();
        let added_pairs: Vec<(&[f64], f64)> = (keep..new_train.n_rows())
            .map(|r| (new_train.x.row(r), new_train.y[r]))
            .collect();
        let engine = self.backend.update(
            &self.train,
            &new_train,
            removed,
            &removed_pairs,
            &added_pairs,
        );

        // Coverage layer: prefix-sum bitset patch over the frozen predicate
        // set, then a fresh index + coverage cache over the new universe
        // (old cached merge coverages range over the old row space and can
        // never be served again).
        let table = self.table.patch(&new_raw, removed);
        let coverage = CoverageCache::with_capacity_cap(self.coverage.cap());
        let index = PredicateIndex::build(&table, &coverage);
        let prefilter = self
            .prefilter
            .as_ref()
            .map(|p| Arc::new(SupportPrefilter::new(new_raw.n_rows(), p.sample_rows())));

        // Structure tier: re-anchor artifacts whose frontier held, drop the
        // rest. Keys stay as they are — they are integer min-counts, and a
        // surviving artifact still answers them (and τ-monotone range
        // lookups) exactly.
        let (survived, invalidated) = {
            let mut cache = lock_recover(&self.structure_cache);
            let keys: Vec<StructuralKey> = cache.keys().cloned().collect();
            let mut survived = 0usize;
            let mut invalidated = 0usize;
            for key in keys {
                let artifact = cache
                    .get_quiet(&key)
                    .expect("key enumerated under this lock");
                match artifact.patched(&index, &coverage, prefilter.clone()) {
                    Some(patched) => {
                        cache.insert(key, Arc::new(patched));
                        survived += 1;
                    }
                    None => {
                        cache.entries.remove(&key);
                        invalidated += 1;
                    }
                }
            }
            (survived, invalidated)
        };

        // Scored sweeps and bias gradients are functions of the parameters,
        // which just moved: invalid wholesale.
        lock_recover(&self.sweep_cache).clear_values();
        lock_recover(&self.bias_cache).clear();

        self.train_raw = new_raw;
        self.train = new_train;
        self.table = table;
        self.index = index;
        self.coverage = coverage;
        self.prefilter = prefilter;
        self.accuracy = gopher_models::train::accuracy(self.backend.model(), &self.test);

        self.updates_applied.fetch_add(1, Ordering::Relaxed);
        self.artifacts_survived
            .fetch_add(survived as u64, Ordering::Relaxed);
        self.artifacts_invalidated
            .fetch_add(invalidated as u64, Ordering::Relaxed);
        if engine.fell_back() {
            self.factor_fallbacks.fetch_add(1, Ordering::Relaxed);
        }

        UpdateReport {
            rows_removed: removed.len(),
            rows_added: added.n_rows(),
            n_rows: self.train_raw.n_rows(),
            engine,
            artifacts_survived: survived,
            artifacts_invalidated: invalidated,
            update_time: t0.elapsed(),
        }
    }

    /// The from-scratch reference for [`Self::update`]: a fresh session over
    /// this session's *current* training data under the same frozen
    /// featurization (encoder statistics, predicate set, cache caps, thread
    /// count). `make_model` supplies an untrained model of the original
    /// shape; it is trained to convergence from its own initialization, so
    /// the oracle carries none of the updated session's warm state.
    ///
    /// Identity contract (documented in the README): predicate coverages
    /// and pattern supports match **bit for bit**; model parameters match
    /// within the trainer's convergence tolerance; estimator
    /// responsibilities match within the engine's drift bound (exactly when
    /// the update path fell back to a full rebuild).
    pub fn cold_rebuild(&self, make_model: impl FnOnce(usize) -> M) -> ExplainSession<M> {
        let train = self.encoder.transform(&self.train_raw);
        let mut model = make_model(train.n_cols());
        ModelFamily::fit(&mut model, &train);
        let backend = M::Backend::build(model, &train, self.backend.config().clone());
        let table = self.table.rebuild_on(&self.train_raw);
        let coverage = CoverageCache::with_capacity_cap(self.coverage.cap());
        let index = PredicateIndex::build(&table, &coverage);
        let accuracy = gopher_models::train::accuracy(backend.model(), &self.test);
        let prefilter = self
            .prefilter
            .as_ref()
            .map(|p| Arc::new(SupportPrefilter::new(train.n_rows(), p.sample_rows())));
        ExplainSession {
            train_raw: self.train_raw.clone(),
            encoder: self.encoder.clone(),
            train,
            test: self.test.clone(),
            backend,
            table,
            index,
            accuracy,
            threads: self.threads,
            coverage,
            bias_cache: Mutex::new(HashMap::new()),
            sweep_cache: Mutex::new(LruCache::new(lock_recover(&self.sweep_cache).cap)),
            structure_cache: Mutex::new(LruCache::new(lock_recover(&self.structure_cache).cap)),
            prefilter,
            requests_served: AtomicU64::new(0),
            batches_served: AtomicU64::new(0),
            max_batch_requests: AtomicU64::new(0),
            updates_applied: AtomicU64::new(0),
            artifacts_survived: AtomicU64::new(0),
            artifacts_invalidated: AtomicU64::new(0),
            factor_fallbacks: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        }
    }

    /// The per-metric bias precomputation (gradient + baselines), cached.
    /// Uses [`lock_recover`]: the compute runs under the lock, so a model
    /// that panics mid-computation poisons the mutex — but the entry is only
    /// inserted once fully built, so recovery is always safe.
    fn bias_precomp(&self, metric: FairnessMetric) -> BiasPrecomp {
        let mut cache = lock_recover(&self.bias_cache);
        cache
            .entry(metric)
            .or_insert_with(|| self.backend.precompute(metric, &self.test))
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopher_data::generators::german;
    use gopher_models::{LogisticRegression, Model};
    use gopher_prng::Rng;

    fn session(n: usize, seed: u64) -> ExplainSession<LogisticRegression> {
        let mut rng = Rng::new(seed);
        let (train, test) = german(n, seed).train_test_split(0.3, &mut rng);
        SessionBuilder::new().fit(|cols| LogisticRegression::new(cols, 1e-3), &train, &test)
    }

    fn assert_reports_equal(a: &ExplanationReport, b: &ExplanationReport) {
        assert_eq!(a.metric, b.metric);
        assert_eq!(a.base_bias, b.base_bias);
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.stats.total_scored, b.stats.total_scored);
        assert_eq!(a.explanations.len(), b.explanations.len());
        for (x, y) in a.explanations.iter().zip(&b.explanations) {
            assert_eq!(x.pattern_text, y.pattern_text);
            assert_eq!(x.support, y.support);
            assert_eq!(x.est_responsibility, y.est_responsibility);
            assert_eq!(x.ground_truth_responsibility, y.ground_truth_responsibility);
        }
    }

    #[test]
    fn batch_equals_sequential_singles() {
        let s = session(700, 42);
        let reqs = [
            ExplainRequest::default().with_ground_truth(false),
            ExplainRequest::default()
                .with_metric(FairnessMetric::EqualOpportunity)
                .with_ground_truth(false),
        ];
        let batch = s.explain_batch(&reqs);
        // A fresh session answering the same requests one at a time.
        let s2 = session(700, 42);
        for (req, resp) in reqs.iter().zip(&batch) {
            let solo = s2.explain(req);
            assert_reports_equal(&solo.report, &resp.report);
        }
    }

    #[test]
    fn repeat_query_hits_the_sweep_cache() {
        let s = session(500, 43);
        let req = ExplainRequest::default().with_ground_truth(false);
        let first = s.explain(&req);
        let scored_once = first.report.stats.total_scored;
        let again = s.explain(&req.clone().with_k(1));
        // Same sweep: identical scoring counts, k only trims the selection.
        assert_eq!(again.report.stats.total_scored, scored_once);
        assert!(again.report.explanations.len() <= 1);
        assert!(s.cached_coverages() > 0);
    }

    #[test]
    fn distinct_metrics_share_the_coverage_cache() {
        let s = session(500, 44);
        let _ = s.explain(&ExplainRequest::default().with_ground_truth(false));
        let after_first = s.cached_coverages();
        assert!(after_first > 0);
        let _ = s.explain(
            &ExplainRequest::default()
                .with_metric(FairnessMetric::EqualOpportunity)
                .with_ground_truth(false),
        );
        // The second metric walks (a subset of) the same lattice; coverage
        // entries are keyed by pattern, so overlap is reused, not recloned.
        assert!(s.cached_coverages() >= after_first);
    }

    #[test]
    fn session_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<ExplainSession<LogisticRegression>>();
    }

    /// A logistic regression that panics on demand inside `predict_proba` —
    /// the hook used to poison a session cache mutex mid-computation.
    #[derive(Clone)]
    struct PanickyModel {
        inner: LogisticRegression,
        armed: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl Model for PanickyModel {
        fn n_inputs(&self) -> usize {
            self.inner.n_inputs()
        }
        fn predict_proba(&self, x: &[f64]) -> f64 {
            assert!(
                !self.armed.load(std::sync::atomic::Ordering::Relaxed),
                "injected query panic"
            );
            self.inner.predict_proba(x)
        }
    }

    impl Differentiable for PanickyModel {
        fn n_params(&self) -> usize {
            self.inner.n_params()
        }
        fn params(&self) -> &[f64] {
            self.inner.params()
        }
        fn params_mut(&mut self) -> &mut [f64] {
            self.inner.params_mut()
        }
        fn l2(&self) -> f64 {
            self.inner.l2()
        }
        fn loss(&self, x: &[f64], y: f64) -> f64 {
            self.inner.loss(x, y)
        }
        fn accumulate_grad(&self, x: &[f64], y: f64, out: &mut [f64]) {
            self.inner.accumulate_grad(x, y, out);
        }
        fn accumulate_grad_proba(&self, x: &[f64], out: &mut [f64]) {
            self.inner.accumulate_grad_proba(x, out);
        }
        fn has_analytic_hessian(&self) -> bool {
            self.inner.has_analytic_hessian()
        }
        fn accumulate_hessian_vec(&self, x: &[f64], y: f64, v: &[f64], out: &mut [f64]) {
            self.inner.accumulate_hessian_vec(x, y, v, out);
        }
        fn accumulate_hessian(&self, x: &[f64], y: f64, out: &mut gopher_linalg::Matrix) {
            self.inner.accumulate_hessian(x, y, out);
        }
    }

    impl ModelFamily for PanickyModel {
        type Backend = HessianBackend<Self>;
        fn fit(&mut self, train: &Encoded) -> gopher_models::train::TrainReport {
            gopher_models::train::fit_default(self, train)
        }
    }

    /// Satellite regression: a query that panics while a cache lock is held
    /// (here: `bias_precomp` computing under the `bias_cache` mutex) must
    /// not brick the session — the next query recovers the poisoned guard
    /// and answers normally.
    #[test]
    fn panicking_query_does_not_poison_the_session() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let mut rng = Rng::new(45);
        let (train, test) = german(500, 45).train_test_split(0.3, &mut rng);
        let encoder = gopher_data::Encoder::fit(&train);
        let encoded = encoder.transform(&train);
        let mut inner = LogisticRegression::new(encoded.n_cols(), 1e-3);
        gopher_models::train::fit_default(&mut inner, &encoded);
        let armed = std::sync::Arc::new(AtomicBool::new(false));
        let model = PanickyModel {
            inner,
            armed: std::sync::Arc::clone(&armed),
        };
        let session = SessionBuilder::new().threads(1).build(model, &train, &test);

        let req = ExplainRequest::default().with_ground_truth(false);
        armed.store(true, Ordering::Relaxed);
        let panicked =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session.explain(&req)));
        assert!(panicked.is_err(), "armed model must panic the first query");
        armed.store(false, Ordering::Relaxed);

        // The session must still answer — and agree with a clean session.
        let after = session.explain(&req);
        assert!(after.report.base_bias > 0.0);
        assert!(!after.report.explanations.is_empty());
        let clean = session_with(500, 45, SessionBuilder::new().threads(1));
        let reference = clean.explain(&req);
        assert_reports_equal(&after.report, &reference.report);
    }

    fn session_with(
        n: usize,
        seed: u64,
        builder: SessionBuilder,
    ) -> ExplainSession<LogisticRegression> {
        let mut rng = Rng::new(seed);
        let (train, test) = german(n, seed).train_test_split(0.3, &mut rng);
        builder.fit(|cols| LogisticRegression::new(cols, 1e-3), &train, &test)
    }

    /// Satellite regression: a sweep that was cached when the batch started
    /// can be LRU-evicted before the batch re-reads it (here forced with a
    /// cap of 1). The old code panicked on `expect("sweep cached before
    /// this batch")`; it must now recompute and answer bit-identically.
    #[test]
    fn eviction_mid_batch_recomputes_instead_of_panicking() {
        let req_a = ExplainRequest::default().with_ground_truth(false);
        let req_b = ExplainRequest::default()
            .with_support_threshold(0.08)
            .with_ground_truth(false);

        let s = session_with(500, 46, SessionBuilder::new().sweep_cache_cap(1));
        let solo_a = s.explain(&req_a); // caches sweep A (the only slot)
                                        // Batch: B misses and sweeps fresh → inserting B evicts A; the
                                        // second lock window then finds A gone and must fall back.
        let batch = s.explain_batch(&[req_b.clone(), req_a.clone()]);
        assert_eq!(batch.len(), 2);
        assert_reports_equal(&batch[1].report, &solo_a.report);
        let reference_b = session_with(500, 46, SessionBuilder::new()).explain(&req_b);
        assert_reports_equal(&batch[0].report, &reference_b.report);
        let stats = s.stats();
        assert!(
            stats.sweep_evictions >= 1,
            "cap-1 cache must have evicted: {stats:?}"
        );
    }

    #[test]
    fn sweep_cache_evicts_least_recently_used() {
        let s = session_with(400, 47, SessionBuilder::new().sweep_cache_cap(2));
        let req_a = ExplainRequest::default().with_ground_truth(false);
        let req_b = req_a.clone().with_support_threshold(0.07);
        let req_c = req_a.clone().with_support_threshold(0.09);
        let _ = s.explain(&req_a);
        let _ = s.explain(&req_b);
        let _ = s.explain(&req_a); // refresh A: B is now least recent
        let _ = s.explain(&req_c); // evicts B
        let before = s.stats();
        let _ = s.explain(&req_a); // must still hit
        let _ = s.explain(&req_c); // must still hit
        let mid = s.stats();
        assert_eq!(mid.sweep_hits, before.sweep_hits + 2);
        assert_eq!(mid.sweep_misses, before.sweep_misses);
        let _ = s.explain(&req_b); // B was evicted: a fresh miss
        let after = s.stats();
        assert_eq!(after.sweep_misses, mid.sweep_misses + 1);
        assert_eq!(after.sweep_evictions, mid.sweep_evictions + 1);
        assert_eq!(after.sweep_entries, 2);
    }

    #[test]
    fn stats_track_hits_misses_and_threads() {
        let s = session_with(400, 48, SessionBuilder::new().threads(3));
        assert_eq!(s.threads(), 3);
        let initial = s.stats();
        assert_eq!(initial.threads, 3);
        assert_eq!(initial.sweep_cache_cap, SWEEP_CACHE_CAP);
        assert_eq!(initial.structure_cache_cap, STRUCTURE_CACHE_CAP);
        assert_eq!((initial.sweep_hits, initial.sweep_misses), (0, 0));
        assert_eq!((initial.structure_hits, initial.structure_misses), (0, 0));
        // The predicate index materializes every singleton at build.
        assert!(initial.cached_coverages > 0);
        assert!(initial.coverage_misses > 0);
        let req = ExplainRequest::default().with_ground_truth(false);
        let _ = s.explain(&req);
        let cold = s.stats();
        assert_eq!(cold.sweep_misses, 1);
        assert_eq!(cold.sweep_entries, 1);
        assert_eq!(cold.structure_misses, 1);
        assert_eq!(cold.structure_entries, 1);
        assert!(cold.cached_coverages > initial.cached_coverages);
        let _ = s.explain(&req);
        let warm = s.stats();
        assert_eq!(warm.sweep_hits, cold.sweep_hits + 1);
        assert_eq!(warm.sweep_misses, cold.sweep_misses);
        // A scored-cache hit never reaches the structure tier.
        assert_eq!(warm.structure_hits, cold.structure_hits);
        assert_eq!(warm.structure_misses, cold.structure_misses);
    }

    /// The two-tier split's whole point: a second metric over the same
    /// structural knobs misses the scored tier but hits the structure tier —
    /// pattern enumeration and coverage intersection run once for both.
    #[test]
    fn second_metric_hits_the_structure_cache() {
        let s = session(500, 50);
        let _ = s.explain(&ExplainRequest::default().with_ground_truth(false));
        let after_first = s.stats();
        assert_eq!(
            (after_first.structure_misses, after_first.structure_hits),
            (1, 0)
        );
        let _ = s.explain(
            &ExplainRequest::default()
                .with_metric(FairnessMetric::EqualOpportunity)
                .with_ground_truth(false),
        );
        let after_second = s.stats();
        assert_eq!(after_second.sweep_misses, 2, "distinct scoring keys");
        assert_eq!(after_second.structure_misses, 1, "shared structural key");
        assert_eq!(after_second.structure_hits, 1);
        // A tighter support threshold is a different structural key, but a
        // τ-monotone one: served by re-filtering the τ = 0.05 artifact, not
        // by rebuilding (the view is retained under its own key).
        let _ = s.explain(
            &ExplainRequest::default()
                .with_support_threshold(0.08)
                .with_ground_truth(false),
        );
        let after_third = s.stats();
        assert_eq!(after_third.structure_misses, 1);
        assert_eq!(after_third.structure_range_hits, 1);
        assert_eq!(after_third.structure_entries, 2);
        // A *looser* threshold cannot be range-served (the cached artifacts
        // lack its singles/merges): a genuine miss.
        let _ = s.explain(
            &ExplainRequest::default()
                .with_support_threshold(0.01)
                .with_ground_truth(false),
        );
        let after_fourth = s.stats();
        assert_eq!(after_fourth.structure_misses, 2);
        assert_eq!(after_fourth.structure_range_hits, 1);
        assert_eq!(after_fourth.structure_entries, 3);
    }

    /// Satellite regression (τ keying): `-0.0` passes the `[0, 1)` range
    /// check but its `f64::to_bits` differs from `0.0`'s — the old
    /// bit-pattern key built duplicate artifacts for the same structural
    /// configuration. Under the integer `min_count` key, `-0.0`, `0.0`, and
    /// any τ ≤ 1/n all mean "at least one covered row" and must share one
    /// artifact, one cache entry, and one scored sweep.
    #[test]
    fn negative_zero_and_tiny_taus_share_one_artifact() {
        let s = session(400, 52);
        let n = s.train().n_rows() as f64;
        let taus = [-0.0, 0.0, 0.5 / n, 0.99 / n];
        let responses: Vec<_> = taus
            .iter()
            .map(|&tau| {
                s.explain(
                    &ExplainRequest::default()
                        .with_support_threshold(tau)
                        .with_ground_truth(false),
                )
            })
            .collect();
        for r in &responses[1..] {
            assert_reports_equal(&responses[0].report, &r.report);
        }
        let stats = s.stats();
        assert_eq!(stats.structure_misses, 1, "one artifact build");
        assert_eq!(stats.structure_entries, 1, "one cache entry");
        assert_eq!(stats.structure_range_hits, 0, "equal keys are exact hits");
        assert_eq!(stats.sweep_misses, 1, "one scored sweep too");
        assert_eq!(stats.sweep_hits, 3);
    }

    /// The τ-monotone acceptance property: after a sweep at a loose τ, a
    /// sweep at a tighter τ' (same depth/pruning, same metric) is served by
    /// re-filtering — *zero* coverage intersections are materialized or even
    /// counted (the coverage-cache miss counter stays put), the range-hit
    /// counter proves the path taken, and the answer is bit-identical to a
    /// cold session's.
    #[test]
    fn warm_tighter_tau_sweep_materializes_no_intersections() {
        let loose = ExplainRequest::default()
            .with_support_threshold(0.02)
            .with_ground_truth(false);
        let tight = loose.clone().with_support_threshold(0.05);

        let s = session(600, 53);
        let _ = s.explain(&loose);
        let before = s.stats();
        let warm = s.explain(&tight);
        let after = s.stats();

        assert_eq!(after.structure_range_hits, before.structure_range_hits + 1);
        assert_eq!(after.structure_misses, before.structure_misses);
        assert_eq!(
            after.coverage_misses, before.coverage_misses,
            "a range-served sweep must intersect nothing"
        );
        assert_eq!(after.coverage_hits, before.coverage_hits);

        let cold = session(600, 53).explain(&tight);
        assert_reports_equal(&warm.report, &cold.report);
    }

    #[test]
    fn structure_cache_cap_zero_disables_retention() {
        let s = session_with(400, 51, SessionBuilder::new().structure_cache_cap(0));
        let req = ExplainRequest::default().with_ground_truth(false);
        let _ = s.explain(&req);
        let _ = s.explain(&req.clone().with_metric(FairnessMetric::EqualOpportunity));
        let stats = s.stats();
        assert_eq!(stats.structure_entries, 0, "nothing retained at cap 0");
        assert_eq!(stats.structure_misses, 2, "every sweep rebuilds");
        // Results are still correct — retention is an optimization only.
        let reference = session(400, 51).explain(&req);
        let again = s.explain(&req);
        assert_reports_equal(&again.report, &reference.report);
    }

    /// The builder's `threads` knob and `GOPHER_THREADS` must not change
    /// results: a 4-thread session answers a mixed batch bit-identically to
    /// a single-threaded one (the full property-based check lives in
    /// `tests/parallel_identity.rs`).
    #[test]
    fn multithreaded_batch_matches_single_threaded() {
        let reqs = [
            ExplainRequest::default().with_ground_truth(false),
            ExplainRequest::default()
                .with_metric(FairnessMetric::EqualOpportunity)
                .with_ground_truth(false),
            ExplainRequest::default()
                .with_metric(FairnessMetric::PredictiveParity)
                .with_estimator(Estimator::FirstOrder)
                .with_ground_truth(false),
            ExplainRequest::default()
                .with_support_threshold(0.08)
                .with_ground_truth(true)
                .with_k(2),
        ];
        let s1 = session_with(500, 49, SessionBuilder::new().threads(1));
        let s4 = session_with(500, 49, SessionBuilder::new().threads(4));
        let r1 = s1.explain_batch(&reqs);
        let r4 = s4.explain_batch(&reqs);
        assert_eq!(r1.len(), r4.len());
        for (a, b) in r1.iter().zip(&r4) {
            assert_reports_equal(&a.report, &b.report);
        }
    }

    /// Registry-facing traffic counters: every entry point funnels through
    /// `explain_batch`, so requests/batches/max-batch tally exactly — the
    /// serving daemon reads the batching win straight off these.
    #[test]
    fn request_and_batch_counters_tally() {
        let s = session(400, 54);
        let req = ExplainRequest::default().with_ground_truth(false);
        assert_eq!(s.stats().requests_served, 0);
        assert_eq!(s.stats().batches_served, 0);

        let _ = s.explain(&req);
        let _ = s.explain_batch(&[
            req.clone(),
            req.clone().with_metric(FairnessMetric::EqualOpportunity),
            req.clone().with_k(1),
        ]);
        let _ = s.explain_batch(&[]);

        let stats = s.stats();
        assert_eq!(stats.requests_served, 4, "1 solo + 3 batched");
        assert_eq!(stats.batches_served, 2, "empty batches are not counted");
        assert_eq!(stats.max_batch_requests, 3);
    }

    /// Drift-aware variant of [`assert_reports_equal`] for comparing an
    /// incrementally updated session against its cold-rebuild oracle:
    /// pattern identity and supports are bit-exact (the coverage layer is),
    /// while model-dependent scores match within the documented bounds (both
    /// models converge on the same gradient, from different starts).
    fn assert_reports_match(a: &ExplanationReport, b: &ExplanationReport) {
        assert_eq!(a.metric, b.metric);
        assert!(
            (a.base_bias - b.base_bias).abs() <= 1e-6,
            "base bias drift: {} vs {}",
            a.base_bias,
            b.base_bias
        );
        assert_eq!(a.explanations.len(), b.explanations.len());
        for (x, y) in a.explanations.iter().zip(&b.explanations) {
            assert_eq!(x.pattern_text, y.pattern_text);
            assert_eq!(x.support, y.support);
            let scale = x.est_responsibility.abs().max(y.est_responsibility.abs());
            let rel = (x.est_responsibility - y.est_responsibility).abs() / scale.max(1e-12);
            assert!(
                rel <= 1e-2,
                "responsibility drift on {}: {} vs {} (rel {rel})",
                x.pattern_text,
                x.est_responsibility,
                y.est_responsibility
            );
        }
    }

    /// The tentpole identity: after a small balanced delta, `update()`
    /// answers like a from-scratch session over the new data — patterns and
    /// supports bit-exact, scores within the drift bound — without a
    /// fallback refactorization (the delta is small enough for the rank-1
    /// patch path).
    #[test]
    fn update_then_explain_matches_cold_rebuild() {
        let mut s = session(4000, 60);
        let req = ExplainRequest::default().with_ground_truth(false);
        let _ = s.explain(&req); // warm the structural tier pre-delta

        let added = german(1, 61);
        let report = s.update(&[388], &added);
        assert_eq!(report.rows_removed, 1);
        assert_eq!(report.rows_added, 1);
        assert_eq!(report.n_rows, s.train().n_rows());
        assert!(
            !report.engine.fell_back(),
            "a single-row balanced delta at n=2800 must stay incremental: {:?}",
            report.engine
        );

        let oracle = s.cold_rebuild(|cols| LogisticRegression::new(cols, 1e-3));
        let warm = s.explain(&req);
        let cold = oracle.explain(&req);
        // Pattern identities and supports are bit-exact against the oracle —
        // stale supports over the old universe would show up right here.
        // (`total_scored` is *not* compared: responsibility pruning takes
        // hard `<=` branches on scores that only match within the drift
        // bound, so near-tie candidates may prune differently.)
        assert_reports_match(&warm.report, &cold.report);
    }

    /// Counters and cache hygiene across an update: scored sweeps and bias
    /// gradients are dropped wholesale (the parameters moved), structural
    /// artifacts survive by frontier proof, and the stats surface reports
    /// exactly what happened.
    #[test]
    fn update_invalidates_scored_tier_and_counts_survivors() {
        let mut s = session(1000, 62);
        let req = ExplainRequest::default().with_ground_truth(false);
        let _ = s.explain(&req);
        let _ = s.explain(&req.clone().with_metric(FairnessMetric::EqualOpportunity));
        let before = s.stats();
        assert_eq!(before.sweep_entries, 2);
        assert_eq!(before.structure_entries, 1);
        assert_eq!(before.updates_applied, 0);

        let report = s.update(&[17], &german(1, 63));
        let after = s.stats();
        assert_eq!(after.updates_applied, 1);
        assert_eq!(after.sweep_entries, 0, "scored sweeps are stale wholesale");
        assert_eq!(
            after.artifacts_survived + after.artifacts_invalidated,
            1,
            "every cached artifact is either re-anchored or dropped"
        );
        assert_eq!(report.artifacts_survived as u64, after.artifacts_survived);
        assert_eq!(
            report.artifacts_invalidated as u64,
            after.artifacts_invalidated
        );
        // A one-in, one-out delta on n=700 leaves every support frontier
        // intact for this seed: the artifact must survive, and the next
        // query must reuse it (a structure hit, not a rebuild).
        assert_eq!(after.artifacts_survived, 1);
        let _ = s.explain(&req);
        let warm = s.stats();
        assert_eq!(warm.structure_hits, before.structure_hits + 1);
        assert_eq!(warm.structure_misses, before.structure_misses);
        assert_eq!(warm.sweep_misses, before.sweep_misses + 1);
    }

    /// An adversarial delta — a fifth of the training set removed at once —
    /// must trip the drift bound (counted as a factor fallback) and *still*
    /// answer like the cold oracle: fallbacks trade speed, never
    /// correctness.
    #[test]
    fn adversarial_delta_falls_back_and_still_matches() {
        let mut s = session(500, 64);
        let req = ExplainRequest::default().with_ground_truth(false);
        let _ = s.explain(&req);

        let n = s.train().n_rows();
        let removed: Vec<usize> = (0..n / 5).map(|i| i * 5).collect();
        let report = s.update(&removed, &german(4, 65));
        assert!(
            report.engine.fell_back(),
            "a 20% removal must not survive the drift bound: {:?}",
            report.engine
        );
        assert_eq!(s.stats().factor_fallbacks, 1);

        let oracle = s.cold_rebuild(|cols| LogisticRegression::new(cols, 1e-3));
        assert_reports_match(&s.explain(&req).report, &oracle.explain(&req).report);
    }

    /// Repeated updates compose: three consecutive small deltas leave the
    /// session equivalent to one cold rebuild over the final data, and the
    /// update counter tallies each application.
    #[test]
    fn consecutive_updates_compose() {
        let mut s = session(900, 66);
        let req = ExplainRequest::default().with_ground_truth(false);
        for (i, seed) in [67u64, 68, 69].iter().enumerate() {
            let _ = s.update(&[i * 3], &german(1, *seed));
        }
        assert_eq!(s.stats().updates_applied, 3);
        let oracle = s.cold_rebuild(|cols| LogisticRegression::new(cols, 1e-3));
        assert_reports_match(&s.explain(&req).report, &oracle.explain(&req).report);
    }

    /// The explain-latency histogram: quantiles are zero before any query,
    /// populated after, and ordered (p99 upper bound ≥ p50 upper bound). The
    /// histogram reads the already-measured `query_time` — this asserts the
    /// wiring, not the clock.
    #[test]
    fn latency_quantiles_populate_from_queries() {
        let s = session(400, 70);
        let stats = s.stats();
        assert_eq!((stats.explain_p50_us, stats.explain_p99_us), (0, 0));
        let req = ExplainRequest::default().with_ground_truth(false);
        for _ in 0..5 {
            let _ = s.explain(&req);
        }
        let stats = s.stats();
        assert!(stats.explain_p50_us > 0, "p50 must populate: {stats:?}");
        assert!(stats.explain_p99_us >= stats.explain_p50_us);
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn update_rejects_duplicate_removals() {
        let mut s = session(300, 71);
        let _ = s.update(&[4, 4], &german(1, 72));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_rejects_out_of_range_removal() {
        let mut s = session(300, 73);
        let n = s.train().n_rows();
        let _ = s.update(&[n], &german(1, 74));
    }
}
