//! **Gopher** — interpretable data-based explanations for fairness debugging.
//!
//! A from-scratch Rust implementation of Pradhan, Zhu, Glavic, Salimi:
//! *"Interpretable Data-Based Explanations for Fairness Debugging"*
//! (SIGMOD 2022). Given a trained classifier that violates a fairness metric,
//! Gopher finds compact **patterns** (conjunctions of predicates) describing
//! training-data subsets that are *causally responsible* for the bias:
//! removing — or homogeneously updating — those subsets and retraining would
//! shrink the bias the most.
//!
//! # Quickstart
//!
//! The API is query-oriented: build one [`ExplainSession`] per trained model
//! (this pays for encoding, training, Hessian precomputation, and predicate
//! generation once), then answer as many [`ExplainRequest`]s as you like —
//! singly or batched, across metrics, estimators, k, and thresholds.
//!
//! ```
//! use gopher_core::{ExplainRequest, SessionBuilder};
//! use gopher_data::generators::german;
//! use gopher_fairness::FairnessMetric;
//! use gopher_models::LogisticRegression;
//! use gopher_prng::Rng;
//!
//! let mut rng = Rng::new(0);
//! let (train, test) = german(600, 0).train_test_split(0.3, &mut rng);
//! let session = SessionBuilder::new()
//!     .fit(|n_cols| LogisticRegression::new(n_cols, 1e-3), &train, &test);
//!
//! // One cheap query…
//! let response = session.explain(&ExplainRequest::default().with_k(3));
//! assert!(response.report.base_bias > 0.0);
//! for exp in &response.report.explanations {
//!     println!("{} (support {:.1}%)", exp.pattern_text, 100.0 * exp.support);
//! }
//! // …and a second metric against the same session costs only the sweep,
//! // with every pattern coverage already cached.
//! let eo = session.explain(
//!     &ExplainRequest::default().with_metric(FairnessMetric::EqualOpportunity),
//! );
//! assert_eq!(eo.report.metric, FairnessMetric::EqualOpportunity);
//! ```
//!
//! # Modules
//!
//! * [`session`] — the query-oriented API: [`SessionBuilder`],
//!   [`ExplainSession`], [`ExplainRequest`]/[`ExplainResponse`], and batched
//!   multi-metric queries over one lattice sweep.
//! * [`explainer`] — the report types plus the deprecated [`Gopher`] façade
//!   (one session + one fixed config, kept for source compatibility).
//! * [`update`] — update-based explanations (paper Section 5): homogeneous
//!   perturbations found by projected gradient descent.
//! * [`fo_tree`] — the FO-tree baseline the paper compares against (a CART
//!   regression tree over per-point first-order influences).
//! * [`mod@mitigate`] — a greedy pre-processing repair loop built on the explainer
//!   (remove the top pattern, retrain, re-audit).
//! * [`kmeans`] / [`gmm`] / [`lof`] / [`poison_detect`] — the data-error detection
//!   pipeline of paper §6.7 (anchoring-attack poisons, influence-ranked
//!   clusters vs. a LocalOutlierFactor baseline).
//! * [`report`] — plain-text table rendering for the experiment harness.

#![forbid(unsafe_code)]

pub mod explainer;
pub mod fo_tree;
pub mod gmm;
pub mod kmeans;
pub mod lof;
pub mod mitigate;
pub mod poison_detect;
pub mod report;
pub mod session;
pub mod update;

#[allow(deprecated)]
pub use explainer::Gopher;
pub use explainer::{Explanation, ExplanationReport, GopherConfig, PatternProfile};
pub use mitigate::{mitigate, MitigationConfig, MitigationReport};
pub use session::{
    ExplainRequest, ExplainResponse, ExplainSession, SessionBuilder, SessionStats, UpdateReport,
    THREADS_ENV,
};
pub use update::{FeatureChange, UpdateConfig, UpdateExplanation};
