//! **Gopher** — interpretable data-based explanations for fairness debugging.
//!
//! A from-scratch Rust implementation of Pradhan, Zhu, Glavic, Salimi:
//! *"Interpretable Data-Based Explanations for Fairness Debugging"*
//! (SIGMOD 2022). Given a trained classifier that violates a fairness metric,
//! Gopher finds compact **patterns** (conjunctions of predicates) describing
//! training-data subsets that are *causally responsible* for the bias:
//! removing — or homogeneously updating — those subsets and retraining would
//! shrink the bias the most.
//!
//! # Quickstart
//!
//! ```
//! use gopher_core::{Gopher, GopherConfig};
//! use gopher_data::generators::german;
//! use gopher_fairness::FairnessMetric;
//! use gopher_models::LogisticRegression;
//! use gopher_prng::Rng;
//!
//! let mut rng = Rng::new(0);
//! let (train, test) = german(600, 0).train_test_split(0.3, &mut rng);
//! let config = GopherConfig { k: 3, ..Default::default() };
//! let gopher = Gopher::fit(
//!     |n_cols| LogisticRegression::new(n_cols, 1e-3),
//!     &train,
//!     &test,
//!     config,
//! );
//! let report = gopher.explain();
//! assert!(report.base_bias > 0.0);
//! for exp in &report.explanations {
//!     println!("{} (support {:.1}%)", exp.pattern_text, 100.0 * exp.support);
//! }
//! ```
//!
//! # Modules
//!
//! * [`explainer`] — the [`Gopher`] façade: end-to-end top-k explanations
//!   (paper Algorithms 1–2) with optional ground-truth verification.
//! * [`update`] — update-based explanations (paper Section 5): homogeneous
//!   perturbations found by projected gradient descent.
//! * [`fo_tree`] — the FO-tree baseline the paper compares against (a CART
//!   regression tree over per-point first-order influences).
//! * [`mod@mitigate`] — a greedy pre-processing repair loop built on the explainer
//!   (remove the top pattern, retrain, re-audit).
//! * [`kmeans`] / [`gmm`] / [`lof`] / [`poison_detect`] — the data-error detection
//!   pipeline of paper §6.7 (anchoring-attack poisons, influence-ranked
//!   clusters vs. a LocalOutlierFactor baseline).
//! * [`report`] — plain-text table rendering for the experiment harness.

pub mod explainer;
pub mod fo_tree;
pub mod gmm;
pub mod kmeans;
pub mod lof;
pub mod mitigate;
pub mod poison_detect;
pub mod report;
pub mod update;

pub use explainer::{Explanation, ExplanationReport, Gopher, GopherConfig, PatternProfile};
pub use mitigate::{mitigate, MitigationConfig, MitigationReport};
pub use update::{FeatureChange, UpdateConfig, UpdateExplanation};
