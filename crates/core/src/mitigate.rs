//! Greedy bias mitigation: iteratively remove Gopher's top explanation and
//! retrain until the bias target is met.
//!
//! This is the pre-processing repair loop the paper's introduction motivates
//! ("if the ML algorithm had been trained on the modified training data, it
//! would not have exhibited the unexpected behavior"): Gopher points at the
//! most responsible cohesive subset, we drop it, retrain, re-audit, and
//! repeat. Unlike blind reweighing, every removal is an *interpretable*
//! pattern, so the data owner can review what is being dropped.

use crate::explainer::GopherConfig;
use gopher_data::Dataset;
use gopher_influence::ModelFamily;

/// Stopping rules for the mitigation loop.
#[derive(Debug, Clone)]
pub struct MitigationConfig {
    /// Stop once `|bias|` falls to or below this.
    pub target_bias: f64,
    /// Hard cap on loop iterations.
    pub max_rounds: usize,
    /// Stop if more than this fraction of the original training data has
    /// been removed (guards against the degenerate "delete everything"
    /// solution the paper's interestingness score is designed to avoid).
    pub max_removed_fraction: f64,
}

impl Default for MitigationConfig {
    fn default() -> Self {
        Self {
            target_bias: 0.05,
            max_rounds: 5,
            max_removed_fraction: 0.3,
        }
    }
}

/// One round of the loop.
#[derive(Debug, Clone)]
pub struct MitigationRound {
    /// The pattern that was removed this round.
    pub pattern_text: String,
    /// Rows removed (indices into the *current* training set of the round).
    pub removed_rows: usize,
    /// Bias before the removal.
    pub bias_before: f64,
    /// Bias after retraining without the subset.
    pub bias_after: f64,
    /// Test accuracy after retraining.
    pub accuracy_after: f64,
}

/// Outcome of the mitigation loop.
#[derive(Debug, Clone)]
pub struct MitigationReport {
    /// Per-round log.
    pub rounds: Vec<MitigationRound>,
    /// Bias of the final model.
    pub final_bias: f64,
    /// Test accuracy of the final model.
    pub final_accuracy: f64,
    /// Total fraction of the original training data removed.
    pub removed_fraction: f64,
    /// Whether the bias target was reached.
    pub achieved: bool,
    /// The repaired training dataset.
    pub repaired_train: Dataset,
}

/// Runs the greedy mitigation loop.
///
/// `make_model` is invoked once per round (the model is retrained from
/// scratch on the shrinking data). Ground-truth verification inside the
/// explainer is disabled — the loop retrains anyway.
pub fn mitigate<M: ModelFamily>(
    mut make_model: impl FnMut(usize) -> M,
    train_raw: &Dataset,
    test_raw: &Dataset,
    gopher_config: &GopherConfig,
    config: &MitigationConfig,
) -> MitigationReport {
    assert!(
        config.target_bias >= 0.0,
        "target bias must be non-negative"
    );
    assert!(
        (0.0..=1.0).contains(&config.max_removed_fraction),
        "max_removed_fraction must be a fraction"
    );
    let original_rows = train_raw.n_rows();
    let mut current = train_raw.clone();
    let mut rounds = Vec::new();
    let mut final_bias = f64::NAN;
    let mut final_accuracy = f64::NAN;

    let mut request = gopher_config.to_request();
    request.k = 1;
    request.ground_truth_for_topk = false;

    for _ in 0..config.max_rounds {
        // The model retrains every round, so each round needs a fresh
        // session; the per-query state (metric, thresholds) is the same
        // request throughout.
        let session = gopher_config
            .to_session_builder()
            .fit(&mut make_model, &current, test_raw);
        let report = session.explain(&request).report;
        final_bias = report.base_bias;
        final_accuracy = report.accuracy;

        if report.base_bias.abs() <= config.target_bias {
            break;
        }
        let Some(top) = report.explanations.first() else {
            break; // no candidate passes the support threshold any more
        };
        let removed_so_far = original_rows - current.n_rows();
        let would_remove = top.candidate.coverage.count();
        if (removed_so_far + would_remove) as f64 / original_rows as f64
            > config.max_removed_fraction
        {
            break;
        }

        // Remove the subset and measure the retrained bias for the log.
        let mut mask = vec![false; current.n_rows()];
        for r in top.candidate.coverage.iter() {
            mask[r as usize] = true;
        }
        let next = current.remove_rows(&mask);
        let next_session = gopher_config
            .to_session_builder()
            .fit(&mut make_model, &next, test_raw);
        let bias_after = gopher_fairness::bias(
            gopher_config.metric,
            next_session.model(),
            next_session.test(),
        );
        let accuracy_after =
            gopher_models::train::accuracy(next_session.model(), next_session.test());
        rounds.push(MitigationRound {
            pattern_text: top.pattern_text.clone(),
            removed_rows: would_remove,
            bias_before: report.base_bias,
            bias_after,
            accuracy_after,
        });
        final_bias = bias_after;
        final_accuracy = accuracy_after;
        current = next;
        if bias_after.abs() <= config.target_bias {
            break;
        }
    }

    MitigationReport {
        rounds,
        final_bias,
        final_accuracy,
        removed_fraction: (original_rows - current.n_rows()) as f64 / original_rows as f64,
        achieved: final_bias.abs() <= config.target_bias,
        repaired_train: current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopher_data::generators::german;
    use gopher_models::LogisticRegression;
    use gopher_prng::Rng;

    fn split(seed: u64) -> (Dataset, Dataset) {
        let mut rng = Rng::new(seed);
        german(900, seed).train_test_split(0.3, &mut rng)
    }

    #[test]
    fn mitigation_reduces_bias_monotonically_enough() {
        let (train, test) = split(601);
        let report = mitigate(
            |cols| LogisticRegression::new(cols, 1e-3),
            &train,
            &test,
            &GopherConfig::default(),
            &MitigationConfig {
                target_bias: 0.02,
                max_rounds: 4,
                max_removed_fraction: 0.4,
            },
        );
        assert!(
            !report.rounds.is_empty(),
            "at least one removal round expected"
        );
        let initial = report.rounds[0].bias_before;
        assert!(
            report.final_bias < initial,
            "bias should drop: {initial} -> {}",
            report.final_bias
        );
        assert!(report.removed_fraction <= 0.4 + 1e-9);
        // The log is internally consistent.
        for w in report.rounds.windows(2) {
            assert!((w[0].bias_after - w[1].bias_before).abs() < 1e-12);
        }
    }

    #[test]
    fn loose_target_stops_immediately() {
        let (train, test) = split(602);
        let report = mitigate(
            |cols| LogisticRegression::new(cols, 1e-3),
            &train,
            &test,
            &GopherConfig::default(),
            &MitigationConfig {
                target_bias: 10.0,
                ..Default::default()
            },
        );
        assert!(report.achieved);
        assert!(report.rounds.is_empty());
        assert_eq!(report.removed_fraction, 0.0);
        assert_eq!(report.repaired_train.n_rows(), train.n_rows());
    }

    #[test]
    fn removal_cap_is_respected() {
        let (train, test) = split(603);
        let report = mitigate(
            |cols| LogisticRegression::new(cols, 1e-3),
            &train,
            &test,
            &GopherConfig::default(),
            &MitigationConfig {
                target_bias: 0.0,
                max_rounds: 10,
                max_removed_fraction: 0.10,
            },
        );
        assert!(report.removed_fraction <= 0.10 + 1e-9);
    }
}
