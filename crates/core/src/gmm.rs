//! Diagonal-covariance Gaussian mixture model fit by EM.
//!
//! §6.7 of the paper clusters the training data "using k-means or Gaussian
//! mixture models"; this provides the second option. Initialization comes
//! from a k-means run (means = centroids, variances = within-cluster
//! variance), then EM refines soft assignments. Covariances are diagonal
//! and floored — sufficient for the one-hot + standardized feature spaces
//! used here and numerically robust for near-degenerate clusters.

use crate::kmeans::kmeans;
use gopher_linalg::Matrix;
use gopher_prng::Rng;

/// A fitted mixture model.
#[derive(Debug, Clone)]
pub struct Gmm {
    /// Mixture weights (sum to 1).
    pub weights: Vec<f64>,
    /// `k × d` component means.
    pub means: Matrix,
    /// `k × d` component variances (diagonal covariance).
    pub variances: Matrix,
    /// Hard assignment per row (argmax responsibility).
    pub assignments: Vec<usize>,
    /// Final mean log-likelihood per row.
    pub log_likelihood: f64,
    /// EM iterations performed.
    pub iterations: usize,
}

impl Gmm {
    /// Rows hard-assigned to component `c`.
    pub fn members(&self, c: usize) -> Vec<u32> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == c)
            .map(|(r, _)| r as u32)
            .collect()
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.means.rows()
    }
}

/// Variance floor preventing singular components. Deliberately generous:
/// the detector clusters one-hot features, where a tighter floor makes
/// responsibilities so peaked that EM degenerates to k-means with dead
/// components.
const VAR_FLOOR: f64 = 5e-2;

/// Fits a diagonal GMM with `k` components by EM (k-means initialization).
///
/// # Panics
/// If `k == 0` or `k > x.rows()`.
pub fn gmm(x: &Matrix, k: usize, em_iters: usize, rng: &mut Rng) -> Gmm {
    let n = x.rows();
    let d = x.cols();
    assert!(k > 0, "k must be positive");
    assert!(k <= n, "cannot fit {k} components to {n} points");

    // Initialize from k-means.
    let km = kmeans(x, k, 30, rng);
    let mut weights = vec![0.0; k];
    let mut means = km.centroids.clone();
    let mut variances = Matrix::zeros(k, d);
    let mut counts = vec![0usize; k];
    for (r, &c) in km.assignments.iter().enumerate() {
        counts[c] += 1;
        for j in 0..d {
            let diff = x[(r, j)] - means[(c, j)];
            variances[(c, j)] += diff * diff;
        }
    }
    for c in 0..k {
        weights[c] = (counts[c].max(1)) as f64 / n as f64;
        for j in 0..d {
            variances[(c, j)] = (variances[(c, j)] / counts[c].max(1) as f64).max(VAR_FLOOR);
        }
    }
    let wsum: f64 = weights.iter().sum();
    weights.iter_mut().for_each(|w| *w /= wsum);

    // EM in log space.
    let mut resp = Matrix::zeros(n, k);
    let mut log_likelihood = f64::NEG_INFINITY;
    let mut iterations = 0;
    for iter in 0..em_iters {
        iterations = iter + 1;
        // E step.
        let mut total_ll = 0.0;
        for r in 0..n {
            let row = x.row(r);
            let mut logs = vec![0.0; k];
            for c in 0..k {
                let mut lp = weights[c].max(1e-300).ln();
                for j in 0..d {
                    let var = variances[(c, j)];
                    let diff = row[j] - means[(c, j)];
                    lp += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var);
                }
                logs[c] = lp;
            }
            let max = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut z = 0.0;
            for c in 0..k {
                let e = (logs[c] - max).exp();
                resp[(r, c)] = e;
                z += e;
            }
            for c in 0..k {
                resp[(r, c)] /= z;
            }
            total_ll += max + z.ln();
        }
        let new_ll = total_ll / n as f64;
        // M step.
        for c in 0..k {
            let nk: f64 = (0..n).map(|r| resp[(r, c)]).sum();
            if nk < 1e-9 {
                continue; // dead component: keep its parameters
            }
            weights[c] = nk / n as f64;
            for j in 0..d {
                let mean: f64 = (0..n).map(|r| resp[(r, c)] * x[(r, j)]).sum::<f64>() / nk;
                means[(c, j)] = mean;
                let var: f64 = (0..n)
                    .map(|r| {
                        let diff = x[(r, j)] - mean;
                        resp[(r, c)] * diff * diff
                    })
                    .sum::<f64>()
                    / nk;
                variances[(c, j)] = var.max(VAR_FLOOR);
            }
        }
        if (new_ll - log_likelihood).abs() < 1e-7 {
            log_likelihood = new_ll;
            break;
        }
        log_likelihood = new_ll;
    }

    let assignments = (0..n)
        .map(|r| {
            let mut best = 0;
            for c in 1..k {
                if resp[(r, c)] > resp[(r, best)] {
                    best = c;
                }
            }
            best
        })
        .collect();
    Gmm {
        weights,
        means,
        variances,
        assignments,
        log_likelihood,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(rng: &mut Rng) -> (Matrix, Vec<usize>) {
        let centers = [[0.0, 0.0], [8.0, 8.0]];
        let n_per = 60;
        let mut x = Matrix::zeros(2 * n_per, 2);
        let mut truth = Vec::new();
        for (c, center) in centers.iter().enumerate() {
            for i in 0..n_per {
                let r = c * n_per + i;
                x[(r, 0)] = center[0] + rng.normal_with(0.0, 0.7);
                x[(r, 1)] = center[1] + rng.normal_with(0.0, 0.7);
                truth.push(c);
            }
        }
        (x, truth)
    }

    #[test]
    fn separates_two_blobs() {
        let mut rng = Rng::new(131);
        let (x, truth) = blobs(&mut rng);
        let model = gmm(&x, 2, 30, &mut rng);
        for c in 0..2 {
            let ids: std::collections::BTreeSet<usize> = truth
                .iter()
                .enumerate()
                .filter(|(_, &t)| t == c)
                .map(|(r, _)| model.assignments[r])
                .collect();
            assert_eq!(ids.len(), 1, "true blob {c} split across components");
        }
        // Weights roughly balanced.
        for &w in &model.weights {
            assert!((0.3..0.7).contains(&w), "weight {w}");
        }
    }

    #[test]
    fn log_likelihood_is_finite_and_members_partition() {
        let mut rng = Rng::new(132);
        let (x, _) = blobs(&mut rng);
        let model = gmm(&x, 4, 20, &mut rng);
        assert!(model.log_likelihood.is_finite());
        let total: usize = (0..4).map(|c| model.members(c).len()).sum();
        assert_eq!(total, x.rows());
    }

    #[test]
    fn variance_floor_prevents_singularities() {
        // Many duplicate points would collapse a component's variance.
        let mut rng = Rng::new(133);
        let mut x = Matrix::zeros(50, 2);
        for r in 25..50 {
            x[(r, 0)] = 5.0;
            x[(r, 1)] = 5.0;
        }
        let model = gmm(&x, 2, 25, &mut rng);
        assert!(model.log_likelihood.is_finite());
        for c in 0..2 {
            for j in 0..2 {
                assert!(model.variances[(c, j)] >= VAR_FLOOR);
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn rejects_k_above_n() {
        let mut rng = Rng::new(134);
        let x = Matrix::zeros(2, 2);
        let _ = gmm(&x, 3, 5, &mut rng);
    }
}
