//! FO-tree: the baseline explainer the paper compares Gopher against
//! (Section 6.2).
//!
//! A CART regression tree is fit on per-point **first-order influence**
//! values (the estimated bias reduction from removing each single training
//! point). Tree nodes partition the training data; the path from the root to
//! a node is a conjunction of predicates, so the top-k nodes by *combined*
//! influence (sum over member points) yield pattern-shaped explanations
//! directly comparable to Gopher's.

use gopher_data::binning::Bins;
use gopher_data::{Column, Dataset, FeatureKind};

/// Tree-fitting configuration.
#[derive(Debug, Clone)]
pub struct FoTreeConfig {
    /// Maximum tree depth (the paper's `l`, max predicates per explanation).
    pub max_depth: usize,
    /// Minimum samples in each child for a split to be admissible.
    pub min_samples: usize,
    /// Quantile bins per numeric feature for threshold candidates.
    pub max_bins: usize,
}

impl Default for FoTreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 3,
            min_samples: 20,
            max_bins: 8,
        }
    }
}

/// A binary split condition.
#[derive(Debug, Clone, PartialEq)]
enum SplitCond {
    /// Categorical `feature == level` (true branch) vs `!=` (false branch).
    Level { feature: usize, level: u32 },
    /// Numeric `feature < threshold` (true branch) vs `>=` (false branch).
    Threshold { feature: usize, threshold: f64 },
}

impl SplitCond {
    fn matches(&self, data: &Dataset, row: usize) -> bool {
        match self {
            Self::Level { feature, level } => match data.column(*feature) {
                Column::Categorical(v) => v[row] == *level,
                Column::Numeric(_) => unreachable!("kind checked at fit time"),
            },
            Self::Threshold { feature, threshold } => match data.column(*feature) {
                Column::Numeric(v) => v[row] < *threshold,
                Column::Categorical(_) => unreachable!("kind checked at fit time"),
            },
        }
    }

    fn render(&self, data: &Dataset, positive: bool) -> String {
        let schema = data.schema();
        match self {
            Self::Level { feature, level } => {
                let name = &schema.feature(*feature).name;
                let lvl = schema.level_name(*feature, *level);
                if positive {
                    format!("{name} = {lvl}")
                } else {
                    format!("{name} ≠ {lvl}")
                }
            }
            Self::Threshold { feature, threshold } => {
                let name = &schema.feature(*feature).name;
                if positive {
                    format!("{name} < {threshold}")
                } else {
                    format!("{name} >= {threshold}")
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    rows: Vec<u32>,
    depth: usize,
    /// Path of (condition, branch-direction) pairs from the root.
    path: Vec<(SplitCond, bool)>,
    total_influence: f64,
}

/// A fitted FO-tree.
#[derive(Debug, Clone)]
pub struct FoTree {
    nodes: Vec<Node>,
}

/// An explanation extracted from a tree node.
#[derive(Debug, Clone)]
pub struct FoTreeExplanation {
    /// Conjunction of path predicates (CART-style, may contain negations).
    pub pattern_text: String,
    /// Covered training rows.
    pub rows: Vec<u32>,
    /// Fraction of training rows covered.
    pub support: f64,
    /// Sum of per-point influences over the node (higher = more responsible
    /// for bias under the caller's influence convention).
    pub total_influence: f64,
    /// Node depth (number of predicates).
    pub depth: usize,
}

impl FoTree {
    /// Fits a variance-reduction regression tree on `influence` (one value
    /// per training row, higher = removing the point reduces bias more).
    ///
    /// # Panics
    /// If `influence.len() != data.n_rows()` or the dataset is empty.
    pub fn fit(data: &Dataset, influence: &[f64], cfg: &FoTreeConfig) -> FoTree {
        assert_eq!(
            influence.len(),
            data.n_rows(),
            "one influence value per row"
        );
        assert!(data.n_rows() > 0, "cannot fit a tree on an empty dataset");
        let mut nodes = Vec::new();
        let all_rows: Vec<u32> = (0..data.n_rows() as u32).collect();
        let total: f64 = influence.iter().sum();
        nodes.push(Node {
            rows: all_rows,
            depth: 0,
            path: Vec::new(),
            total_influence: total,
        });
        let mut frontier = vec![0usize];
        while let Some(node_idx) = frontier.pop() {
            let (depth, rows) = {
                let n = &nodes[node_idx];
                (n.depth, n.rows.clone())
            };
            if depth >= cfg.max_depth || rows.len() < 2 * cfg.min_samples {
                continue;
            }
            let Some(split) = best_split(data, influence, &rows, cfg) else {
                continue;
            };
            let (mut left_rows, mut right_rows) = (Vec::new(), Vec::new());
            for &r in &rows {
                if split.matches(data, r as usize) {
                    left_rows.push(r);
                } else {
                    right_rows.push(r);
                }
            }
            if left_rows.len() < cfg.min_samples || right_rows.len() < cfg.min_samples {
                continue;
            }
            for (branch_rows, positive) in [(left_rows, true), (right_rows, false)] {
                let total: f64 = branch_rows.iter().map(|&r| influence[r as usize]).sum();
                let mut path = nodes[node_idx].path.clone();
                path.push((split.clone(), positive));
                nodes.push(Node {
                    rows: branch_rows,
                    depth: depth + 1,
                    path,
                    total_influence: total,
                });
                frontier.push(nodes.len() - 1);
            }
        }
        FoTree { nodes }
    }

    /// Number of nodes (including the root).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The top-k non-root nodes by combined influence, rendered as
    /// explanations (paper: "identify the k nodes from the root to level l
    /// having the maximum combined influence").
    pub fn top_nodes(&self, data: &Dataset, k: usize) -> Vec<FoTreeExplanation> {
        let n = data.n_rows() as f64;
        let mut ranked: Vec<&Node> = self.nodes.iter().filter(|n| n.depth > 0).collect();
        ranked.sort_by(|a, b| b.total_influence.total_cmp(&a.total_influence));
        ranked
            .into_iter()
            .take(k)
            .map(|node| FoTreeExplanation {
                pattern_text: simplify_path(&node.path)
                    .iter()
                    .map(|(cond, positive)| cond.render(data, *positive))
                    .collect::<Vec<_>>()
                    .join(" ∧ "),
                rows: node.rows.clone(),
                support: node.rows.len() as f64 / n,
                total_influence: node.total_influence,
                depth: node.depth,
            })
            .collect()
    }
}

/// Drops path predicates subsumed by a tighter one on the same feature and
/// direction (CART happily re-splits a feature, producing `age >= 47 ∧
/// age >= 51`; only the tighter bound carries information).
fn simplify_path(path: &[(SplitCond, bool)]) -> Vec<(SplitCond, bool)> {
    let mut out: Vec<(SplitCond, bool)> = Vec::with_capacity(path.len());
    for (cond, positive) in path {
        if let SplitCond::Threshold { feature, threshold } = cond {
            if let Some(existing) = out.iter_mut().find(|(c, p)| {
                p == positive
                    && matches!(c, SplitCond::Threshold { feature: f2, .. } if f2 == feature)
            }) {
                let SplitCond::Threshold { threshold: t2, .. } = &mut existing.0 else {
                    unreachable!("matched a threshold above");
                };
                // true branch means `<`: keep the smaller bound; false
                // branch means `>=`: keep the larger.
                *t2 = if *positive {
                    t2.min(*threshold)
                } else {
                    t2.max(*threshold)
                };
                continue;
            }
        }
        out.push((cond.clone(), *positive));
    }
    out
}

/// Finds the split minimizing the weighted sum of child variances.
fn best_split(
    data: &Dataset,
    influence: &[f64],
    rows: &[u32],
    cfg: &FoTreeConfig,
) -> Option<SplitCond> {
    let parent_sse = sse(influence, rows.iter().copied());
    let mut best: Option<(f64, SplitCond)> = None;
    let mut consider = |cond: SplitCond| {
        let mut left = Vec::new();
        let mut right = Vec::new();
        for &r in rows {
            if cond.matches(data, r as usize) {
                left.push(r);
            } else {
                right.push(r);
            }
        }
        if left.len() < cfg.min_samples || right.len() < cfg.min_samples {
            return;
        }
        let child_sse =
            sse(influence, left.iter().copied()) + sse(influence, right.iter().copied());
        let gain = parent_sse - child_sse;
        if gain > 1e-12 && best.as_ref().is_none_or(|(g, _)| gain > *g) {
            best = Some((gain, cond));
        }
    };

    for (f, feat) in data.schema().features().iter().enumerate() {
        match (&feat.kind, data.column(f)) {
            (FeatureKind::Categorical { levels }, Column::Categorical(_)) => {
                for level in 0..levels.len() as u32 {
                    consider(SplitCond::Level { feature: f, level });
                }
            }
            (FeatureKind::Numeric, Column::Numeric(vals)) => {
                let subset: Vec<f64> = rows.iter().map(|&r| vals[r as usize]).collect();
                let bins = Bins::quantile(&subset, cfg.max_bins);
                for &t in bins.thresholds() {
                    consider(SplitCond::Threshold {
                        feature: f,
                        threshold: t,
                    });
                }
            }
            _ => unreachable!("dataset validated against schema"),
        }
    }
    best.map(|(_, cond)| cond)
}

/// Sum of squared errors around the subset mean.
fn sse(values: &[f64], rows: impl Iterator<Item = u32>) -> f64 {
    let rows: Vec<u32> = rows.collect();
    if rows.is_empty() {
        return 0.0;
    }
    let mean = rows.iter().map(|&r| values[r as usize]).sum::<f64>() / rows.len() as f64;
    rows.iter()
        .map(|&r| {
            let d = values[r as usize] - mean;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopher_data::generators::german;

    /// Synthetic influence concentrated on a known subgroup: the tree must
    /// recover that subgroup as its top node.
    #[test]
    fn recovers_planted_influential_subgroup() {
        let d = german(600, 91);
        let gender = d.schema().feature_index("gender").unwrap();
        let female = d.schema().level_index(gender, "Female").unwrap();
        let influence: Vec<f64> = (0..d.n_rows())
            .map(|r| {
                if d.value(r, gender).as_level() == female {
                    1.0
                } else {
                    -0.1
                }
            })
            .collect();
        let tree = FoTree::fit(&d, &influence, &FoTreeConfig::default());
        let top = tree.top_nodes(&d, 1);
        assert_eq!(top.len(), 1);
        assert!(
            top[0].pattern_text.contains("gender = Female"),
            "top node should isolate females: {}",
            top[0].pattern_text
        );
        // All covered rows are female.
        for &r in &top[0].rows {
            assert_eq!(d.value(r as usize, gender).as_level(), female);
        }
    }

    #[test]
    fn respects_depth_and_min_samples() {
        let d = german(400, 92);
        let influence: Vec<f64> = (0..d.n_rows()).map(|r| (r % 7) as f64).collect();
        let cfg = FoTreeConfig {
            max_depth: 2,
            min_samples: 30,
            max_bins: 4,
        };
        let tree = FoTree::fit(&d, &influence, &cfg);
        for node in tree.top_nodes(&d, 100) {
            assert!(node.depth <= 2);
            assert!(node.rows.len() >= 30);
        }
    }

    #[test]
    fn top_nodes_sorted_by_total_influence() {
        let d = german(500, 93);
        let influence: Vec<f64> = (0..d.n_rows())
            .map(|r| ((r * 31) % 11) as f64 - 5.0)
            .collect();
        let tree = FoTree::fit(&d, &influence, &FoTreeConfig::default());
        let top = tree.top_nodes(&d, 5);
        for w in top.windows(2) {
            assert!(w[0].total_influence >= w[1].total_influence);
        }
    }

    #[test]
    fn constant_influence_yields_no_split() {
        let d = german(200, 94);
        let influence = vec![1.0; d.n_rows()];
        let tree = FoTree::fit(&d, &influence, &FoTreeConfig::default());
        assert_eq!(tree.n_nodes(), 1, "no variance, no splits");
        assert!(tree.top_nodes(&d, 3).is_empty());
    }

    #[test]
    fn node_rows_partition_under_splits() {
        let d = german(500, 95);
        let influence: Vec<f64> = (0..d.n_rows())
            .map(|r| if r % 3 == 0 { 2.0 } else { -1.0 })
            .collect();
        let tree = FoTree::fit(&d, &influence, &FoTreeConfig::default());
        // Depth-1 nodes (children of the root) must partition all rows.
        let depth1: Vec<_> = tree.nodes.iter().filter(|n| n.depth == 1).collect();
        if depth1.len() == 2 {
            let total = depth1[0].rows.len() + depth1[1].rows.len();
            assert_eq!(total, d.n_rows());
        }
    }
}
