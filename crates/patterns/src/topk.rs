//! Top-k diverse explanation selection (paper Algorithm 2 / Definition 3.7).

use crate::lattice::Candidate;

/// Containment score `C(φ, φ') = |D(φ) ∩ D(φ')| / |D(φ)|`
/// (paper Definition 3.6). 0 when `φ` covers nothing.
pub fn containment(phi: &Candidate, other: &Candidate) -> f64 {
    let denom = phi.coverage.count();
    if denom == 0 {
        return 0.0;
    }
    phi.coverage.intersection_count(&other.coverage) as f64 / denom as f64
}

/// Selects the top-k most interesting, mutually diverse candidates:
/// candidates are visited in decreasing interestingness order and kept only
/// if their containment with every already-kept explanation is `< c`.
///
/// Ties in interestingness are broken deterministically (fewer predicates
/// first, then lexicographic predicate ids), fixing the arbitrary order the
/// paper imposes over `Φ_D`.
pub fn top_k(candidates: &[Candidate], k: usize, containment_threshold: f64) -> Vec<Candidate> {
    assert!(
        (0.0..=1.0).contains(&containment_threshold),
        "containment threshold must be in [0, 1]"
    );
    let mut order: Vec<&Candidate> = candidates.iter().collect();
    order.sort_by(|a, b| {
        b.interestingness
            .total_cmp(&a.interestingness)
            .then_with(|| a.pattern.len().cmp(&b.pattern.len()))
            .then_with(|| a.pattern.ids().cmp(b.pattern.ids()))
    });
    let mut kept: Vec<Candidate> = Vec::with_capacity(k);
    for cand in order {
        if kept.len() == k {
            break;
        }
        let diverse = kept
            .iter()
            .all(|prev| containment(cand, prev) < containment_threshold);
        if diverse {
            kept.push(cand.clone());
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::BitSet;
    use crate::pattern::Pattern;

    fn cand(id: u16, rows: &[u32], universe: usize, interestingness: f64) -> Candidate {
        let coverage = BitSet::from_indices(universe, rows);
        let support = coverage.count() as f64 / universe as f64;
        Candidate {
            pattern: Pattern::singleton(id),
            coverage: std::sync::Arc::new(coverage),
            support,
            responsibility: interestingness * support,
            interestingness,
        }
    }

    #[test]
    fn containment_definition() {
        let a = cand(0, &[0, 1, 2, 3], 10, 1.0);
        let b = cand(1, &[2, 3, 4, 5, 6, 7], 10, 1.0);
        assert!(
            (containment(&a, &b) - 0.5).abs() < 1e-12,
            "2 of 4 rows of a are in b"
        );
        assert!((containment(&b, &a) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn selects_by_interestingness() {
        let cands = vec![
            cand(0, &[0, 1], 10, 0.3),
            cand(1, &[2, 3], 10, 0.9),
            cand(2, &[4, 5], 10, 0.6),
        ];
        let top = top_k(&cands, 2, 0.5);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].pattern.ids(), &[1]);
        assert_eq!(top[1].pattern.ids(), &[2]);
    }

    #[test]
    fn filters_contained_candidates() {
        // Candidate 1 is the best; candidate 0 is fully contained in it and
        // must be skipped; candidate 2 is disjoint and survives.
        let cands = vec![
            cand(0, &[0, 1], 10, 0.8),
            cand(1, &[0, 1, 2, 3], 10, 0.9),
            cand(2, &[7, 8], 10, 0.2),
        ];
        let top = top_k(&cands, 3, 0.6);
        let ids: Vec<u16> = top.iter().map(|c| c.pattern.ids()[0]).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn containment_threshold_one_keeps_overlapping() {
        let cands = vec![cand(0, &[0, 1], 10, 0.8), cand(1, &[0, 1, 2, 3], 10, 0.9)];
        // Threshold 1.0 means only *fully* contained candidates (C = 1.0 is
        // not < 1.0) are dropped; candidate 0 IS fully contained.
        let top = top_k(&cands, 2, 1.0);
        assert_eq!(top.len(), 1);
        // Threshold slightly above 1 is invalid.
    }

    #[test]
    fn deterministic_tie_breaking() {
        let a = cand(3, &[0, 1], 10, 0.5);
        let b = cand(1, &[4, 5], 10, 0.5);
        let top1 = top_k(&[a.clone(), b.clone()], 1, 0.5);
        let top2 = top_k(&[b, a], 1, 0.5);
        assert_eq!(top1[0].pattern.ids(), top2[0].pattern.ids());
        assert_eq!(top1[0].pattern.ids(), &[1], "lowest ids win ties");
    }

    #[test]
    fn requests_beyond_supply_return_all_diverse() {
        let cands = vec![cand(0, &[0], 10, 0.5)];
        let top = top_k(&cands, 5, 0.5);
        assert_eq!(top.len(), 1);
    }

    #[test]
    #[should_panic(expected = "containment threshold")]
    fn rejects_invalid_threshold() {
        let _ = top_k(&[], 1, 1.5);
    }
}
