//! Predicate patterns over training data and the lattice search that finds
//! the most interesting ones (paper Sections 3 and 4.2).
//!
//! A [`Predicate`] is a single comparison `feature op value`; a [`Pattern`]
//! is a conjunction of predicates describing a training-data subset (its
//! *coverage*, stored as a [`BitSet`] over row ids). The
//! [`lattice::compute_candidates`] search implements Algorithm 1: it builds
//! patterns bottom-up, merging two size-(i−1) patterns that share i−2
//! predicates, pruning by
//!
//! * **support** — `Sup(φ) ≥ τ` (anti-monotone, prunes whole sub-lattices),
//! * **responsibility monotonicity** — a merged pattern must have strictly
//!   higher estimated responsibility than both parents (a heuristic: more
//!   predicates must buy more explanatory power), and
//! * **conflict detection** — contradictory or redundant same-feature
//!   predicate combinations are never generated.
//!
//! [`topk::top_k`] implements Algorithm 2: sort candidates by
//! interestingness `U(φ) = R(φ)/Sup(φ)` and greedily keep those whose
//! containment with every kept pattern stays below the threshold `c`.

mod bitset;
mod candidates;
pub mod coverage;
pub mod index;
pub mod lattice;
mod pattern;
mod predicate;
pub mod structure;
pub mod topk;

pub use bitset::{simd_backend, BitSet};
pub use candidates::{generate_predicates, PredicateTable};
pub use coverage::{CoverageCache, CoverageCacheStats};
pub use index::PredicateIndex;
pub use lattice::{Candidate, LatticeConfig, LevelStats, ScoreFn, SearchStats};
pub use pattern::Pattern;
pub use predicate::{Op, PredValue, Predicate};
pub use structure::{min_count_for, MergeRecord, ParentHint, SupportPrefilter, SweepStructure};
