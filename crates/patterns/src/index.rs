//! Per-session predicate coverage index.
//!
//! The lattice's level-1 pass used to re-clone every predicate's coverage
//! bitset out of the [`PredicateTable`] on each sweep. A [`PredicateIndex`]
//! materializes all of them **once** — `Arc`-shared through the session's
//! [`CoverageCache`], with support counts precomputed — so every sweep
//! (any support threshold, any metric) starts from the same shared bitsets
//! and level 1 costs a filter instead of `n_predicates` clones and popcounts.

use crate::bitset::BitSet;
use crate::candidates::PredicateTable;
use crate::coverage::CoverageCache;
use std::sync::Arc;

/// One predicate's materialized coverage: the id into the table it was built
/// from, the shared bitset, and its popcount.
#[derive(Debug, Clone)]
pub struct IndexedPredicate {
    /// Predicate id into the [`PredicateTable`] the index was built from.
    pub id: u16,
    /// Rows the predicate covers, shared with the session's coverage cache.
    pub coverage: Arc<BitSet>,
    /// `coverage.count()`, precomputed.
    pub count: usize,
}

/// Every predicate's coverage bitset, materialized once per session.
///
/// Built through a [`CoverageCache`] so the singleton entries are the same
/// allocations later sweeps and queries resolve through the cache.
#[derive(Debug, Clone)]
pub struct PredicateIndex {
    entries: Vec<IndexedPredicate>,
    n_rows: usize,
}

impl PredicateIndex {
    /// Materializes the coverage of every predicate in `table`, routing each
    /// bitset through `cache` (key: the singleton predicate id).
    pub fn build(table: &PredicateTable, cache: &CoverageCache) -> Self {
        let entries = table
            .iter()
            .map(|(id, _)| {
                let coverage = cache.get_or_insert_with(&[id], || table.coverage(id).clone());
                let count = coverage.count();
                IndexedPredicate {
                    id,
                    coverage,
                    count,
                }
            })
            .collect();
        Self {
            entries,
            n_rows: table.n_rows(),
        }
    }

    /// The indexed predicates, in predicate-id order.
    pub fn entries(&self) -> &[IndexedPredicate] {
        &self.entries
    }

    /// Number of indexed predicates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table had no predicates.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of dataset rows the coverage bitsets range over.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::generate_predicates;
    use gopher_data::generators::german;

    #[test]
    fn index_matches_table_coverages() {
        let d = german(300, 91);
        let table = generate_predicates(&d, 4);
        let cache = CoverageCache::new();
        let index = PredicateIndex::build(&table, &cache);
        assert_eq!(index.len(), table.len());
        assert_eq!(index.n_rows(), d.n_rows());
        for entry in index.entries() {
            assert_eq!(entry.coverage.as_ref(), table.coverage(entry.id));
            assert_eq!(entry.count, table.coverage(entry.id).count());
        }
    }

    #[test]
    fn index_shares_allocations_with_the_cache() {
        let d = german(200, 92);
        let table = generate_predicates(&d, 4);
        let cache = CoverageCache::new();
        let index = PredicateIndex::build(&table, &cache);
        assert_eq!(cache.len(), table.len());
        for entry in index.entries() {
            let cached = cache.get_or_insert_with(&[entry.id], || unreachable!("indexed"));
            assert!(Arc::ptr_eq(&cached, &entry.coverage));
        }
    }
}
