//! Lattice search for candidate explanations (paper Algorithm 1,
//! `ComputeCandidates`), staged into structural and scoring phases.
//!
//! Each level of the search runs in two explicit phases:
//!
//! 1. a **structural phase** — metric-independent: enumerate merge pairs
//!    over the *union* of all scorers' frontiers, intersect coverages, count
//!    support, and record every resolved merge in the sweep's
//!    [`SweepStructure`]. The pair space is chunked across `gopher-par`
//!    workers with deterministic, order-preserving concatenation, so the
//!    artifact is bit-identical at any thread count;
//! 2. per-scorer **scoring/pruning phases** — each scorer walks its own
//!    frontier (pruning is score-dependent), resolving every merge against
//!    the artifact instead of re-intersecting, and runs on its own worker.
//!
//! The split is what lets a session reuse the structural half across
//! metrics, estimators, and bias evaluations — see `SweepStructure`.

use crate::bitset::BitSet;
use crate::candidates::PredicateTable;
use crate::coverage::CoverageCache;
use crate::index::PredicateIndex;
use crate::pattern::Pattern;
use crate::structure::{min_count_for, ParentHint, SweepStructure};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Search configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LatticeConfig {
    /// Minimum support τ (fraction of training rows a pattern must cover).
    pub support_threshold: f64,
    /// Maximum number of predicates per pattern (lattice depth).
    pub max_predicates: usize,
    /// The paper's second heuristic: only keep a merged pattern if its
    /// responsibility strictly exceeds both parents'. Disable for the
    /// ablation study (recovers more candidates at a steep cost).
    pub prune_by_responsibility: bool,
    /// Optional safety valve: keep at most this many candidates per level
    /// (the best by responsibility). `None` reproduces the paper exactly.
    pub max_level_candidates: Option<usize>,
}

impl Default for LatticeConfig {
    fn default() -> Self {
        Self {
            support_threshold: 0.05,
            max_predicates: 4,
            prune_by_responsibility: true,
            max_level_candidates: None,
        }
    }
}

/// A boxed scoring callback: coverage bitset in, estimated responsibility
/// out. [`compute_candidates_multi`] fans one of these out per request —
/// each scorer runs on its own worker thread, hence the `Send` bound.
pub type ScoreFn<'a> = Box<dyn FnMut(&BitSet) -> f64 + Send + 'a>;

/// A scored candidate explanation.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The pattern (predicate ids into the table used for the search).
    pub pattern: Pattern,
    /// Rows covered by the pattern. Shared (`Arc`) so cloning candidates
    /// between lattice levels, the top-k selection, and a session's coverage
    /// cache is a refcount bump instead of an `O(n_rows)` copy.
    pub coverage: Arc<BitSet>,
    /// `Sup(φ)` — fraction of training rows covered.
    pub support: f64,
    /// Estimated causal responsibility `R_F(D(φ))` (Definition 3.2).
    pub responsibility: f64,
    /// `U(φ) = R_F(D(φ)) / Sup(φ)` (Definition 3.5).
    pub interestingness: f64,
}

/// Per-level search statistics (the paper's Table 7 columns).
#[derive(Debug, Clone)]
pub struct LevelStats {
    /// Lattice level (number of predicates).
    pub level: usize,
    /// Merge pairs that passed the structural checks and were scored.
    pub generated: usize,
    /// Candidates kept after all pruning.
    pub kept: usize,
    /// Wall-clock time of the level's *shared structural phase* (coverage
    /// intersection + support counting over the union frontier; for level 1,
    /// the artifact's build time). The same cost appears in every scorer's
    /// stats — it is what a solo run would have paid itself.
    pub structural: Duration,
    /// Wall-clock time this scorer spent on the level, including its share
    /// of the structural phase (`structural` + its own scoring pass), so
    /// reported search times stay comparable with pre-staged runs.
    pub duration: Duration,
}

/// Statistics of a whole search.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// One entry per explored level.
    pub levels: Vec<LevelStats>,
    /// Total number of responsibility evaluations.
    pub total_scored: usize,
}

impl SearchStats {
    /// Total candidates kept across levels.
    pub fn total_kept(&self) -> usize {
        self.levels.iter().map(|l| l.kept).sum()
    }

    /// Wall-clock spent in the shared structural phases, summed across
    /// levels (the metric-independent part of the sweep).
    pub fn structural_time(&self) -> Duration {
        self.levels.iter().map(|l| l.structural).sum()
    }
}

/// Runs Algorithm 1: generates all candidate patterns up to
/// `config.max_predicates` predicates, scoring each coverage set with the
/// caller's `score` closure (the estimated causal responsibility — see
/// `gopher_influence::BiasInfluence::responsibility`).
///
/// Pruning, as in the paper:
/// * support `< τ` — never generated (anti-monotone: also prunes the whole
///   sub-lattice);
/// * conflicting/redundant same-feature predicate pairs — never merged;
/// * responsibility not exceeding both parents — dropped (when
///   `prune_by_responsibility` is set).
///
/// This convenience wrapper builds a transient coverage cache, predicate
/// index, and structural artifact; long-lived callers (sessions) hold their
/// own and call [`compute_candidates_multi`].
pub fn compute_candidates<F>(
    table: &PredicateTable,
    mut score: F,
    config: &LatticeConfig,
) -> (Vec<Candidate>, SearchStats)
where
    F: FnMut(&BitSet) -> f64 + Send,
{
    let cache = CoverageCache::new();
    let index = PredicateIndex::build(table, &cache);
    let structure = SweepStructure::build(&index, config);
    let mut scorer: ScoreFn<'_> = Box::new(&mut score);
    compute_candidates_multi(
        table,
        std::slice::from_mut(&mut scorer),
        config,
        &cache,
        &structure,
        1,
    )
    .pop()
    .expect("one scorer in, one result out")
}

/// The multi-query variant of [`compute_candidates`]: one staged lattice
/// sweep with the scoring callbacks fanned out per request.
///
/// All scorers share the structural work — pair enumeration over the union
/// of their frontiers, coverage intersection, and support counting — which
/// runs as a chunked parallel pass over up to `threads` workers and lands in
/// `structure`; each scorer then keeps its own frontier, pruning decisions,
/// and [`SearchStats`], running on its own worker. The result for scorer `i`
/// is **identical** to what `compute_candidates(table, scorers[i], config)`
/// would return on its own, at any thread count: per-scorer frontiers evolve
/// exactly as in a solo run (scorer `i` is always driven by exactly one
/// thread, sequentially), merged coverages are decomposition-independent
/// (the AND of a pattern's predicates, whichever parents produced it), and
/// the structural pass concatenates its chunks in serial pair order.
///
/// Both `cache` and `structure` outlive the call on purpose: an interactive
/// session passes a long-lived cache and a per-structural-config artifact,
/// so later queries — a different metric, estimator, or bias evaluation over
/// the same structural knobs — skip every intersection this sweep resolved.
///
/// # Panics
/// If `structure` was built for a different structural configuration or
/// row count than `config`/`table` describe.
pub fn compute_candidates_multi(
    table: &PredicateTable,
    scorers: &mut [ScoreFn<'_>],
    config: &LatticeConfig,
    cache: &CoverageCache,
    structure: &SweepStructure,
    threads: usize,
) -> Vec<(Vec<Candidate>, SearchStats)> {
    assert!(
        (0.0..1.0).contains(&config.support_threshold),
        "support threshold must be in [0, 1)"
    );
    assert!(
        config.max_predicates >= 1,
        "need at least one predicate per pattern"
    );
    let n = table.n_rows();
    let min_count = min_count_for(config.support_threshold, n);
    assert_eq!(
        structure.min_count(),
        min_count,
        "structural artifact was built for a different support threshold"
    );
    assert_eq!(
        structure.n_rows(),
        n,
        "structural artifact was built for a different dataset"
    );

    /// Everything one scorer owns during the sweep; fanning a level out
    /// means handing each `ScorerRun` to a worker thread.
    struct ScorerRun<'s, 'a> {
        score: &'s mut ScoreFn<'a>,
        stats: SearchStats,
        all: Vec<Candidate>,
        frontier: Vec<Candidate>,
        done: bool,
    }
    let mut runs: Vec<ScorerRun<'_, '_>> = scorers
        .iter_mut()
        .map(|score| ScorerRun {
            score,
            stats: SearchStats::default(),
            all: Vec::new(),
            frontier: Vec::new(),
            done: false,
        })
        .collect();

    // Level 1. Structural phase: the artifact's supported singles (built
    // once per structural config, from the session's predicate index).
    // Scoring phase: fan the per-scorer passes out.
    let singles = structure.singles();
    gopher_par::par_for_each_mut(threads, &mut runs, |_, run| {
        let t0 = Instant::now();
        let mut frontier: Vec<Candidate> = Vec::with_capacity(singles.len());
        for single in singles {
            let responsibility = (run.score)(&single.coverage);
            run.stats.total_scored += 1;
            let support = single.count as f64 / n as f64;
            frontier.push(Candidate {
                pattern: Pattern::singleton(single.id),
                coverage: Arc::clone(&single.coverage),
                support,
                responsibility,
                interestingness: responsibility / support,
            });
        }
        truncate_level(&mut frontier, config.max_level_candidates);
        // A solo run pays the structural pass itself, so every scorer's
        // level-1 duration includes it — keeping reported search times
        // comparable with single-query runs.
        run.stats.levels.push(LevelStats {
            level: 1,
            generated: singles.len(),
            kept: frontier.len(),
            structural: structure.build_time(),
            duration: structure.build_time() + t0.elapsed(),
        });
        run.all.extend(frontier.iter().cloned());
        run.frontier = frontier;
    });

    // Levels 2..=max: merge pairs sharing all but one predicate.
    for level in 2..=config.max_predicates {
        if runs.iter().all(|r| r.done) {
            break;
        }

        // Structural phase: resolve every merge reachable from the union of
        // the live frontiers, chunked across workers. Per-scorer
        // interestingness pruning means no single frontier is "the"
        // frontier, so the shared pass enumerates the union — a superset of
        // every scorer's own pair space. The union is collected in
        // first-seen order (runs in input order, each frontier in its own
        // order), deterministic because the frontiers themselves are.
        //
        // With a single worker the pass is skipped entirely — it exists to
        // spread coverage intersections across threads, and inline it would
        // only duplicate the enumeration the scoring phase performs anyway
        // (each scorer's `resolve` computes unseen merges lazily, exactly
        // like the pre-staged engine did). Values are identical either way;
        // skipping keeps single-threaded sweeps at their old cost.
        let t_structural = Instant::now();
        if threads > 1 {
            let mut union: Vec<UnionParent> = Vec::new();
            let mut union_index: HashMap<Vec<u16>, usize> = HashMap::new();
            for (run_idx, run) in runs
                .iter()
                .enumerate()
                .filter(|(_, r)| !r.done && r.frontier.len() >= 2)
            {
                // Scorers beyond the mask width share the last bit: their
                // pairings become conservatively resolvable (extra work,
                // never wrong values).
                let bit = 1u64 << run_idx.min(63);
                for cand in &run.frontier {
                    match union_index.get(cand.pattern.ids()) {
                        Some(&at) => union[at].scorers |= bit,
                        None => {
                            union_index.insert(cand.pattern.ids().to_vec(), union.len());
                            let count = (cand.support * n as f64).round() as usize;
                            union.push(UnionParent {
                                pattern: cand.pattern.clone(),
                                coverage: Arc::clone(&cand.coverage),
                                hint: structure.parent_hint(&cand.coverage, count),
                                scorers: bit,
                            });
                        }
                    }
                }
            }
            resolve_union_merges(table, cache, structure, &union, threads);
        }
        let structural_cost = t_structural.elapsed();

        // Scoring phase: each scorer walks its own frontier on its own
        // worker, resolving merges against the artifact (all hits after the
        // structural pass; the fallback closure only fires for territory a
        // warm artifact has never seen).
        gopher_par::par_for_each_mut(threads, &mut runs, |_, run| {
            if run.done {
                return;
            }
            if run.frontier.len() < 2 {
                run.done = true;
                return;
            }
            let t0 = Instant::now();
            let mut next: Vec<Candidate> = Vec::new();
            let mut seen: HashSet<Vec<u16>> = HashSet::new();
            let mut generated = 0usize;
            // Exact parent counts (supports round-trip exactly at these
            // magnitudes) plus in-sample counts, one pass per frontier
            // pattern, let the artifact's sampled-support prefilter, when
            // attached, skip doomed merges.
            let hints: Vec<_> = run
                .frontier
                .iter()
                .map(|c| {
                    structure.parent_hint(&c.coverage, (c.support * n as f64).round() as usize)
                })
                .collect();
            for i in 0..run.frontier.len() {
                for j in (i + 1)..run.frontier.len() {
                    let (a, b) = (&run.frontier[i], &run.frontier[j]);
                    let Some(merged) = a.pattern.merge(&b.pattern) else {
                        continue;
                    };
                    if !seen.insert(merged.ids().to_vec()) {
                        continue;
                    }
                    if merge_conflicts(table, &a.pattern, &b.pattern) {
                        continue;
                    }
                    let hint = Some((hints[i], hints[j]));
                    let record =
                        structure.resolve_with(merged.ids(), cache, &a.coverage, &b.coverage, hint);
                    if record.count < min_count {
                        continue;
                    }
                    let coverage = record
                        .coverage
                        .expect("supported merges retain their coverage");
                    generated += 1;
                    let responsibility = (run.score)(&coverage);
                    run.stats.total_scored += 1;
                    if config.prune_by_responsibility
                        && (responsibility <= a.responsibility
                            || responsibility <= b.responsibility)
                    {
                        continue;
                    }
                    let support = record.count as f64 / n as f64;
                    next.push(Candidate {
                        pattern: merged,
                        coverage,
                        support,
                        responsibility,
                        interestingness: responsibility / support,
                    });
                }
            }
            truncate_level(&mut next, config.max_level_candidates);
            run.stats.levels.push(LevelStats {
                level,
                generated,
                kept: next.len(),
                structural: structural_cost,
                duration: structural_cost + t0.elapsed(),
            });
            if next.is_empty() {
                run.done = true;
            } else {
                run.all.extend(next.iter().cloned());
                run.frontier = next;
            }
        });
    }

    runs.into_iter().map(|run| (run.all, run.stats)).collect()
}

/// A frontier pattern in the structural phase's union: the pattern, its
/// coverage, and a bitmask of which scorers hold it. The mask is what keeps
/// the shared pass *exact* rather than a blow-up: a pair is only worth
/// resolving when some scorer holds **both** parents (masks intersect) —
/// cross-scorer-only pairings would compute coverages nobody asks for.
struct UnionParent {
    pattern: Pattern,
    coverage: Arc<BitSet>,
    /// Exact member count of `coverage` (recovered from the candidate's
    /// support) plus its in-sample count — the prefilter hint for the
    /// structural pass, computed once per distinct parent.
    hint: ParentHint,
    scorers: u64,
}

/// True when the two differing predicates of a mergeable pair conflict (the
/// shared predicates were already vetted in the parents).
fn merge_conflicts(table: &PredicateTable, a: &Pattern, b: &Pattern) -> bool {
    let da = a.difference(b);
    let db = b.difference(a);
    debug_assert_eq!(da.len(), 1);
    debug_assert_eq!(db.len(), 1);
    table
        .predicate(da[0])
        .conflicts_with(table.predicate(db[0]))
}

/// The parallel structural merge pass, in two phases over the chunked pair
/// space of the union frontier:
///
/// 1. **Enumerate** (parallel, lock-free): each chunk walks its `(i, j)`
///    pairs — mask check, merge, conflict check — filtering against a
///    *snapshot* of the artifact's resolved keys (exact for the whole pass,
///    since nothing inserts until phase 2 finishes). Chunks are then
///    concatenated in serial pair order and globally deduplicated, first
///    generating pair wins (any pair of the same pattern yields identical
///    bits).
/// 2. **Compute** (parallel): one fused and+popcount per *distinct* merge,
///    with the full AND materialized (and routed through the coverage
///    cache) only for merges that meet the artifact's support count —
///    failed merges, the majority at realistic thresholds, cost a single
///    counting pass and no allocation; records land in the artifact in the
///    deduplicated (deterministic) order.
///
/// The split keeps the hot enumeration loop free of the artifact's mutex
/// and guarantees no merged pattern is intersected twice, however many of
/// its parent decompositions straddle chunk boundaries.
fn resolve_union_merges(
    table: &PredicateTable,
    cache: &CoverageCache,
    structure: &SweepStructure,
    union: &[UnionParent],
    threads: usize,
) {
    let m = union.len();
    if m < 2 {
        return;
    }
    let known = structure.known_keys();
    let chunks = pair_chunks(m, threads);
    let found = gopher_par::par_map(threads, &chunks, |_, range| {
        let mut out: Vec<(Box<[u16]>, usize, usize)> = Vec::new();
        let mut local_seen: HashSet<Box<[u16]>> = HashSet::new();
        for i in range.clone() {
            for j in (i + 1)..m {
                let (a, b) = (&union[i], &union[j]);
                if a.scorers & b.scorers == 0 {
                    continue; // no scorer holds both parents
                }
                let Some(merged) = a.pattern.merge(&b.pattern) else {
                    continue;
                };
                let ids: Box<[u16]> = merged.ids().into();
                if known.contains(&ids) || !local_seen.insert(ids.clone()) {
                    continue;
                }
                if merge_conflicts(table, &a.pattern, &b.pattern) {
                    continue;
                }
                out.push((ids, i, j));
            }
        }
        out
    });
    let mut merges: Vec<(Box<[u16]>, usize, usize)> = Vec::new();
    let mut seen: HashSet<Box<[u16]>> = HashSet::new();
    for (ids, i, j) in found.into_iter().flatten() {
        if seen.insert(ids.clone()) {
            merges.push((ids, i, j));
        }
    }
    let records = gopher_par::par_map(threads, &merges, |_, (ids, i, j)| {
        let (a, b) = (&union[*i], &union[*j]);
        structure.compute_record_with(ids, cache, &a.coverage, &b.coverage, Some((a.hint, b.hint)))
    });
    for ((ids, _, _), record) in merges.iter().zip(records) {
        structure.insert(ids, record);
    }
}

/// Splits the upper-triangular pair space of `m` items into contiguous
/// outer-index ranges with roughly equal pair counts, a few chunks per
/// worker so `gopher-par`'s cursor can balance uneven merge costs.
fn pair_chunks(m: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let total_pairs = m * (m - 1) / 2;
    let target_chunks = (threads.max(1) * 4).min(total_pairs.max(1));
    let per_chunk = total_pairs.div_ceil(target_chunks).max(1);
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut acc = 0usize;
    for i in 0..m {
        acc += m - 1 - i;
        if acc >= per_chunk {
            chunks.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < m {
        chunks.push(start..m);
    }
    chunks
}

/// Keeps at most `cap` candidates (the best by responsibility).
fn truncate_level(level: &mut Vec<Candidate>, cap: Option<usize>) {
    if let Some(cap) = cap {
        if level.len() > cap {
            level.sort_by(|a, b| b.responsibility.total_cmp(&a.responsibility));
            level.truncate(cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::generate_predicates;
    use gopher_data::generators::german;

    /// A deterministic toy score: fraction of covered rows that are
    /// positive-labeled (monotone enough to exercise the pruning paths).
    fn toy_score(labels: &[u8]) -> impl FnMut(&BitSet) -> f64 + '_ {
        move |cov: &BitSet| {
            let total = cov.count().max(1);
            let pos: usize = cov.iter().map(|r| labels[r as usize] as usize).sum();
            pos as f64 / total as f64
        }
    }

    #[test]
    fn all_candidates_meet_support_threshold() {
        let d = german(400, 61);
        let table = generate_predicates(&d, 4);
        let config = LatticeConfig {
            support_threshold: 0.05,
            ..Default::default()
        };
        let (cands, _) = compute_candidates(&table, toy_score(d.labels()), &config);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.support >= 0.05, "support {} below threshold", c.support);
            assert_eq!(c.coverage.count(), (c.support * 400.0).round() as usize);
        }
    }

    #[test]
    fn responsibility_pruning_enforces_strict_improvement() {
        let d = german(400, 62);
        let table = generate_predicates(&d, 4);
        let config = LatticeConfig {
            support_threshold: 0.02,
            ..Default::default()
        };
        let (cands, _) = compute_candidates(&table, toy_score(d.labels()), &config);
        // Every multi-predicate candidate must out-score every strict
        // sub-pattern present in the result (transitively guaranteed by the
        // per-merge check against both parents; we verify against all
        // single-predicate ancestors).
        let singles: std::collections::HashMap<u16, f64> = cands
            .iter()
            .filter(|c| c.pattern.len() == 1)
            .map(|c| (c.pattern.ids()[0], c.responsibility))
            .collect();
        for c in cands.iter().filter(|c| c.pattern.len() == 2) {
            for id in c.pattern.ids() {
                if let Some(&parent_resp) = singles.get(id) {
                    assert!(
                        c.responsibility > parent_resp,
                        "merged pattern does not improve on its parent"
                    );
                }
            }
        }
    }

    #[test]
    fn disabling_responsibility_pruning_yields_more_candidates() {
        let d = german(400, 63);
        let table = generate_predicates(&d, 4);
        let pruned = compute_candidates(
            &table,
            toy_score(d.labels()),
            &LatticeConfig {
                support_threshold: 0.05,
                ..Default::default()
            },
        )
        .0
        .len();
        let unpruned = compute_candidates(
            &table,
            toy_score(d.labels()),
            &LatticeConfig {
                support_threshold: 0.05,
                prune_by_responsibility: false,
                max_predicates: 3,
                max_level_candidates: None,
            },
        )
        .0
        .len();
        assert!(
            unpruned > pruned,
            "unpruned {unpruned} should exceed pruned {pruned}"
        );
    }

    #[test]
    fn no_duplicate_patterns() {
        let d = german(300, 64);
        let table = generate_predicates(&d, 4);
        let (cands, _) = compute_candidates(
            &table,
            toy_score(d.labels()),
            &LatticeConfig {
                support_threshold: 0.05,
                prune_by_responsibility: false,
                max_predicates: 3,
                max_level_candidates: None,
            },
        );
        let mut seen = std::collections::HashSet::new();
        for c in &cands {
            assert!(
                seen.insert(c.pattern.ids().to_vec()),
                "duplicate {:?}",
                c.pattern
            );
        }
    }

    #[test]
    fn no_conflicting_predicates_within_pattern() {
        let d = german(300, 65);
        let table = generate_predicates(&d, 4);
        let (cands, _) = compute_candidates(
            &table,
            toy_score(d.labels()),
            &LatticeConfig {
                support_threshold: 0.03,
                prune_by_responsibility: false,
                max_predicates: 3,
                max_level_candidates: None,
            },
        );
        for c in &cands {
            let ids = c.pattern.ids();
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    assert!(
                        !table.predicate(a).conflicts_with(table.predicate(b)),
                        "conflicting predicates in pattern {:?}",
                        c.pattern
                    );
                }
            }
        }
    }

    #[test]
    fn stats_track_levels_and_scoring() {
        let d = german(300, 66);
        let table = generate_predicates(&d, 4);
        let (cands, stats) = compute_candidates(
            &table,
            toy_score(d.labels()),
            &LatticeConfig {
                support_threshold: 0.05,
                ..Default::default()
            },
        );
        assert!(!stats.levels.is_empty());
        assert_eq!(stats.levels[0].level, 1);
        assert_eq!(stats.total_kept(), cands.len());
        assert!(stats.total_scored >= cands.len());
        // The structural share is part of every level's duration.
        for level in &stats.levels {
            assert!(level.duration >= level.structural);
        }
        assert!(stats.structural_time() <= stats.levels.iter().map(|l| l.duration).sum());
    }

    #[test]
    fn level_cap_limits_frontier() {
        let d = german(300, 67);
        let table = generate_predicates(&d, 4);
        let (_, stats) = compute_candidates(
            &table,
            toy_score(d.labels()),
            &LatticeConfig {
                support_threshold: 0.02,
                prune_by_responsibility: false,
                max_predicates: 3,
                max_level_candidates: Some(20),
            },
        );
        for level in &stats.levels {
            assert!(
                level.kept <= 20,
                "level {} kept {}",
                level.level,
                level.kept
            );
        }
    }

    #[test]
    fn coverage_is_intersection_of_predicate_coverages() {
        let d = german(300, 68);
        let table = generate_predicates(&d, 4);
        let (cands, _) = compute_candidates(
            &table,
            toy_score(d.labels()),
            &LatticeConfig {
                support_threshold: 0.05,
                ..Default::default()
            },
        );
        for c in cands.iter().filter(|c| c.pattern.len() >= 2) {
            let mut expected: Option<BitSet> = None;
            for &id in c.pattern.ids() {
                let cov = table.coverage(id);
                expected = Some(match expected {
                    None => cov.clone(),
                    Some(e) => e.and(cov),
                });
            }
            assert_eq!(c.coverage.as_ref(), &expected.unwrap());
        }
    }

    /// The staged multi-scorer sweep must reproduce each scorer's solo run
    /// bit for bit: same candidates (patterns, coverage bits, supports,
    /// responsibilities), same order, same stats counts — at any thread
    /// count, including oversubscription.
    #[test]
    fn multi_sweep_matches_solo_runs() {
        let d = german(400, 69);
        let table = generate_predicates(&d, 4);
        let config = LatticeConfig {
            support_threshold: 0.04,
            ..Default::default()
        };
        // Two deliberately different scores (positive rate / privileged
        // rate) so the frontiers diverge and pruning decisions differ.
        let labels = d.labels().to_vec();
        let privileged = d.privileged_mask();
        let (solo_a, stats_a) = compute_candidates(&table, toy_score(&labels), &config);
        let priv_score = |cov: &BitSet| {
            let total = cov.count().max(1);
            let p: usize = cov.iter().map(|r| privileged[r as usize] as usize).sum();
            p as f64 / total as f64
        };
        let (solo_b, stats_b) = compute_candidates(&table, priv_score, &config);

        // The sweep must be thread-count-invariant: 1 (inline), 2, and an
        // oversubscribed 8 all reproduce the solo runs bit for bit.
        for threads in [1, 2, 8] {
            let cache = CoverageCache::new();
            let index = PredicateIndex::build(&table, &cache);
            let structure = SweepStructure::build(&index, &config);
            let mut sa = toy_score(&labels);
            let mut sb = priv_score;
            let mut scorers: Vec<ScoreFn<'_>> = vec![Box::new(&mut sa), Box::new(&mut sb)];
            let mut multi = compute_candidates_multi(
                &table,
                &mut scorers,
                &config,
                &cache,
                &structure,
                threads,
            );
            let (multi_b, mstats_b) = multi.pop().unwrap();
            let (multi_a, mstats_a) = multi.pop().unwrap();

            for ((solo, stats), (multi, mstats)) in [
                ((&solo_a, &stats_a), (&multi_a, &mstats_a)),
                ((&solo_b, &stats_b), (&multi_b, &mstats_b)),
            ] {
                assert_eq!(solo.len(), multi.len());
                for (s, m) in solo.iter().zip(multi) {
                    assert_eq!(s.pattern.ids(), m.pattern.ids());
                    assert_eq!(s.coverage, m.coverage, "coverage bits must match");
                    assert_eq!(s.responsibility, m.responsibility);
                    assert_eq!(s.support, m.support);
                }
                assert_eq!(stats.total_scored, mstats.total_scored);
                assert_eq!(stats.levels.len(), mstats.levels.len());
                for (s, m) in stats.levels.iter().zip(&mstats.levels) {
                    assert_eq!(
                        (s.level, s.generated, s.kept),
                        (m.level, m.generated, m.kept)
                    );
                }
            }
            assert!(!cache.is_empty(), "sweep must populate the shared cache");
            assert!(
                structure.merges_resolved() > 0,
                "sweep must populate the structural artifact"
            );
        }
    }

    /// A second sweep over a warm artifact (fresh scorer, same structural
    /// config) must answer identically to a cold one, without its fallback
    /// closure ever intersecting coverages again.
    #[test]
    fn warm_artifact_reuses_structural_work() {
        let d = german(400, 78);
        let table = generate_predicates(&d, 4);
        let config = LatticeConfig {
            support_threshold: 0.04,
            ..Default::default()
        };
        let labels = d.labels().to_vec();
        let (solo, solo_stats) = compute_candidates(&table, toy_score(&labels), &config);

        let cache = CoverageCache::new();
        let index = PredicateIndex::build(&table, &cache);
        let structure = SweepStructure::build(&index, &config);
        let run = |cache: &CoverageCache, structure: &SweepStructure| {
            let mut s = toy_score(&labels);
            let mut scorers: Vec<ScoreFn<'_>> = vec![Box::new(&mut s)];
            compute_candidates_multi(&table, &mut scorers, &config, cache, structure, 2)
                .pop()
                .unwrap()
        };
        let (cold, _) = run(&cache, &structure);
        let resolved_after_cold = structure.merges_resolved();
        let coverage_misses_after_cold = cache.stats().misses;
        let (warm, warm_stats) = run(&cache, &structure);

        // Identical results, cold, warm, and solo.
        for (a, b) in solo.iter().zip(&cold).chain(solo.iter().zip(&warm)) {
            assert_eq!(a.pattern.ids(), b.pattern.ids());
            assert_eq!(a.coverage, b.coverage);
            assert_eq!(a.responsibility, b.responsibility);
        }
        assert_eq!(solo_stats.total_scored, warm_stats.total_scored);
        // The warm sweep resolved nothing new and intersected nothing new.
        assert_eq!(structure.merges_resolved(), resolved_after_cold);
        assert_eq!(cache.stats().misses, coverage_misses_after_cold);
    }

    /// Fan-out must keep per-level timing populated: every explored level of
    /// every scorer reports a nonzero duration even when scorers run on
    /// worker threads.
    #[test]
    fn fanned_out_level_stats_keep_durations() {
        let d = german(400, 70);
        let table = generate_predicates(&d, 4);
        let config = LatticeConfig {
            support_threshold: 0.04,
            ..Default::default()
        };
        let labels = d.labels().to_vec();
        let cache = CoverageCache::new();
        let index = PredicateIndex::build(&table, &cache);
        let structure = SweepStructure::build(&index, &config);
        let mut s1 = toy_score(&labels);
        let mut s2 = toy_score(&labels);
        let mut s3 = toy_score(&labels);
        let mut scorers: Vec<ScoreFn<'_>> =
            vec![Box::new(&mut s1), Box::new(&mut s2), Box::new(&mut s3)];
        let results =
            compute_candidates_multi(&table, &mut scorers, &config, &cache, &structure, 4);
        for (_, stats) in &results {
            assert!(!stats.levels.is_empty());
            for level in &stats.levels {
                if level.generated > 0 {
                    assert!(
                        level.duration > Duration::ZERO,
                        "level {} scored {} candidates but reports zero duration",
                        level.level,
                        level.generated
                    );
                }
                assert!(level.duration >= level.structural);
            }
        }
    }

    #[test]
    fn pair_chunks_cover_every_index_once() {
        for m in [2usize, 3, 5, 17, 64, 257] {
            for threads in [1usize, 2, 4, 9] {
                let chunks = pair_chunks(m, threads);
                let mut covered = Vec::new();
                for c in &chunks {
                    covered.extend(c.clone());
                }
                assert_eq!(covered, (0..m).collect::<Vec<_>>(), "m={m} t={threads}");
            }
        }
    }
}
