//! Lattice search for candidate explanations (paper Algorithm 1,
//! `ComputeCandidates`).

use crate::bitset::BitSet;
use crate::candidates::PredicateTable;
use crate::coverage::CoverageCache;
use crate::pattern::Pattern;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Search configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LatticeConfig {
    /// Minimum support τ (fraction of training rows a pattern must cover).
    pub support_threshold: f64,
    /// Maximum number of predicates per pattern (lattice depth).
    pub max_predicates: usize,
    /// The paper's second heuristic: only keep a merged pattern if its
    /// responsibility strictly exceeds both parents'. Disable for the
    /// ablation study (recovers more candidates at a steep cost).
    pub prune_by_responsibility: bool,
    /// Optional safety valve: keep at most this many candidates per level
    /// (the best by responsibility). `None` reproduces the paper exactly.
    pub max_level_candidates: Option<usize>,
}

impl Default for LatticeConfig {
    fn default() -> Self {
        Self {
            support_threshold: 0.05,
            max_predicates: 4,
            prune_by_responsibility: true,
            max_level_candidates: None,
        }
    }
}

/// A boxed scoring callback: coverage bitset in, estimated responsibility
/// out. [`compute_candidates_multi`] fans one of these out per request —
/// each scorer runs on its own worker thread, hence the `Send` bound.
pub type ScoreFn<'a> = Box<dyn FnMut(&BitSet) -> f64 + Send + 'a>;

/// A scored candidate explanation.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The pattern (predicate ids into the table used for the search).
    pub pattern: Pattern,
    /// Rows covered by the pattern. Shared (`Arc`) so cloning candidates
    /// between lattice levels, the top-k selection, and a session's coverage
    /// cache is a refcount bump instead of an `O(n_rows)` copy.
    pub coverage: Arc<BitSet>,
    /// `Sup(φ)` — fraction of training rows covered.
    pub support: f64,
    /// Estimated causal responsibility `R_F(D(φ))` (Definition 3.2).
    pub responsibility: f64,
    /// `U(φ) = R_F(D(φ)) / Sup(φ)` (Definition 3.5).
    pub interestingness: f64,
}

/// Per-level search statistics (the paper's Table 7 columns).
#[derive(Debug, Clone)]
pub struct LevelStats {
    /// Lattice level (number of predicates).
    pub level: usize,
    /// Merge pairs that passed the structural checks and were scored.
    pub generated: usize,
    /// Candidates kept after all pruning.
    pub kept: usize,
    /// Wall-clock time spent on this level.
    pub duration: Duration,
}

/// Statistics of a whole search.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// One entry per explored level.
    pub levels: Vec<LevelStats>,
    /// Total number of responsibility evaluations.
    pub total_scored: usize,
}

impl SearchStats {
    /// Total candidates kept across levels.
    pub fn total_kept(&self) -> usize {
        self.levels.iter().map(|l| l.kept).sum()
    }
}

/// Runs Algorithm 1: generates all candidate patterns up to
/// `config.max_predicates` predicates, scoring each coverage set with the
/// caller's `score` closure (the estimated causal responsibility — see
/// `gopher_influence::BiasInfluence::responsibility`).
///
/// Pruning, as in the paper:
/// * support `< τ` — never generated (anti-monotone: also prunes the whole
///   sub-lattice);
/// * conflicting/redundant same-feature predicate pairs — never merged;
/// * responsibility not exceeding both parents — dropped (when
///   `prune_by_responsibility` is set).
pub fn compute_candidates<F>(
    table: &PredicateTable,
    mut score: F,
    config: &LatticeConfig,
) -> (Vec<Candidate>, SearchStats)
where
    F: FnMut(&BitSet) -> f64 + Send,
{
    let cache = CoverageCache::new();
    let mut scorer: ScoreFn<'_> = Box::new(&mut score);
    compute_candidates_multi(table, std::slice::from_mut(&mut scorer), config, &cache, 1)
        .pop()
        .expect("one scorer in, one result out")
}

/// The multi-query variant of [`compute_candidates`]: one lattice sweep with
/// the scoring callback fanned out per request, each scorer pass running on
/// its own worker thread (up to `threads`; `1` runs everything inline).
///
/// All scorers share the structural work — predicate enumeration, coverage
/// intersection (each pattern's bitset is materialized once, via `cache`),
/// support counting, and conflict checks — while each scorer keeps its own
/// frontier, pruning decisions, and [`SearchStats`]. The result for scorer
/// `i` is **identical** to what `compute_candidates(table, scorers[i],
/// config)` would return on its own, at any thread count: the per-scorer
/// frontiers evolve exactly as in a solo run (scorer `i` is always driven by
/// exactly one thread, sequentially), so neither responsibility pruning nor
/// scheduling order can leak across requests.
///
/// The cache outlives the call on purpose: an interactive session passes a
/// long-lived cache so later queries (different metric, estimator, or k)
/// skip every intersection this sweep already materialized. The cache is
/// internally synchronized, so concurrent scorer threads share fresh
/// intersections too.
pub fn compute_candidates_multi(
    table: &PredicateTable,
    scorers: &mut [ScoreFn<'_>],
    config: &LatticeConfig,
    cache: &CoverageCache,
    threads: usize,
) -> Vec<(Vec<Candidate>, SearchStats)> {
    assert!(
        (0.0..1.0).contains(&config.support_threshold),
        "support threshold must be in [0, 1)"
    );
    assert!(
        config.max_predicates >= 1,
        "need at least one predicate per pattern"
    );
    let n = table.n_rows();
    let min_count = (config.support_threshold * n as f64).ceil().max(1.0) as usize;

    // Level 1: single-predicate patterns, filtered by support only. The
    // structural pass (coverage + support) is shared; scores fan out.
    struct Level1 {
        id: u16,
        coverage: Arc<BitSet>,
        support: f64,
    }
    let t_structural = Instant::now();
    let mut singles: Vec<Level1> = Vec::new();
    for (id, _) in table.iter() {
        let coverage = cache.get_or_insert_with(&[id], || table.coverage(id).clone());
        let count = coverage.count();
        if count < min_count {
            continue;
        }
        singles.push(Level1 {
            id,
            coverage,
            support: count as f64 / n as f64,
        });
    }
    // A solo run pays the structural pass itself, so every scorer's level-1
    // duration includes it — keeping reported search times comparable with
    // single-query runs.
    let structural_cost = t_structural.elapsed();

    /// Everything one scorer owns during the sweep; fanning a level out
    /// means handing each `ScorerRun` to a worker thread.
    struct ScorerRun<'s, 'a> {
        score: &'s mut ScoreFn<'a>,
        stats: SearchStats,
        all: Vec<Candidate>,
        frontier: Vec<Candidate>,
        done: bool,
    }
    let mut runs: Vec<ScorerRun<'_, '_>> = scorers
        .iter_mut()
        .map(|score| ScorerRun {
            score,
            stats: SearchStats::default(),
            all: Vec::new(),
            frontier: Vec::new(),
            done: false,
        })
        .collect();

    gopher_par::par_for_each_mut(threads, &mut runs, |_, run| {
        let t0 = Instant::now();
        let mut frontier: Vec<Candidate> = Vec::with_capacity(singles.len());
        for single in &singles {
            let responsibility = (run.score)(&single.coverage);
            run.stats.total_scored += 1;
            frontier.push(Candidate {
                pattern: Pattern::singleton(single.id),
                coverage: Arc::clone(&single.coverage),
                support: single.support,
                responsibility,
                interestingness: responsibility / single.support,
            });
        }
        truncate_level(&mut frontier, config.max_level_candidates);
        run.stats.levels.push(LevelStats {
            level: 1,
            generated: singles.len(),
            kept: frontier.len(),
            duration: structural_cost + t0.elapsed(),
        });
        run.all.extend(frontier.iter().cloned());
        run.frontier = frontier;
    });

    // Levels 2..=max: merge pairs sharing all but one predicate. Each scorer
    // walks its own frontier (pruning is score-dependent) on its own worker,
    // but every coverage intersection goes through the shared cache, so a
    // pattern reached by several scorers is materialized exactly once.
    for level in 2..=config.max_predicates {
        if runs.iter().all(|r| r.done) {
            break;
        }
        gopher_par::par_for_each_mut(threads, &mut runs, |_, run| {
            if run.done {
                return;
            }
            if run.frontier.len() < 2 {
                run.done = true;
                return;
            }
            let t0 = Instant::now();
            let mut next: Vec<Candidate> = Vec::new();
            let mut seen: HashSet<Vec<u16>> = HashSet::new();
            let mut generated = 0usize;
            for i in 0..run.frontier.len() {
                for j in (i + 1)..run.frontier.len() {
                    let (a, b) = (&run.frontier[i], &run.frontier[j]);
                    let Some(merged) = a.pattern.merge(&b.pattern) else {
                        continue;
                    };
                    if !seen.insert(merged.ids().to_vec()) {
                        continue;
                    }
                    // Conflict check between the two differing predicates
                    // (the shared ones were already checked in the parents).
                    let da = a.pattern.difference(&b.pattern);
                    let db = b.pattern.difference(&a.pattern);
                    debug_assert_eq!(da.len(), 1);
                    debug_assert_eq!(db.len(), 1);
                    if table
                        .predicate(da[0])
                        .conflicts_with(table.predicate(db[0]))
                    {
                        continue;
                    }
                    let coverage =
                        cache.get_or_insert_with(merged.ids(), || a.coverage.and(&b.coverage));
                    let count = coverage.count();
                    if count < min_count {
                        continue;
                    }
                    generated += 1;
                    let responsibility = (run.score)(&coverage);
                    run.stats.total_scored += 1;
                    if config.prune_by_responsibility
                        && (responsibility <= a.responsibility
                            || responsibility <= b.responsibility)
                    {
                        continue;
                    }
                    let support = count as f64 / n as f64;
                    next.push(Candidate {
                        pattern: merged,
                        coverage,
                        support,
                        responsibility,
                        interestingness: responsibility / support,
                    });
                }
            }
            truncate_level(&mut next, config.max_level_candidates);
            run.stats.levels.push(LevelStats {
                level,
                generated,
                kept: next.len(),
                duration: t0.elapsed(),
            });
            if next.is_empty() {
                run.done = true;
            } else {
                run.all.extend(next.iter().cloned());
                run.frontier = next;
            }
        });
    }

    runs.into_iter().map(|run| (run.all, run.stats)).collect()
}

/// Keeps at most `cap` candidates (the best by responsibility).
fn truncate_level(level: &mut Vec<Candidate>, cap: Option<usize>) {
    if let Some(cap) = cap {
        if level.len() > cap {
            level.sort_by(|a, b| b.responsibility.total_cmp(&a.responsibility));
            level.truncate(cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::generate_predicates;
    use gopher_data::generators::german;

    /// A deterministic toy score: fraction of covered rows that are
    /// positive-labeled (monotone enough to exercise the pruning paths).
    fn toy_score(labels: &[u8]) -> impl FnMut(&BitSet) -> f64 + '_ {
        move |cov: &BitSet| {
            let total = cov.count().max(1);
            let pos: usize = cov.iter().map(|r| labels[r as usize] as usize).sum();
            pos as f64 / total as f64
        }
    }

    #[test]
    fn all_candidates_meet_support_threshold() {
        let d = german(400, 61);
        let table = generate_predicates(&d, 4);
        let config = LatticeConfig {
            support_threshold: 0.05,
            ..Default::default()
        };
        let (cands, _) = compute_candidates(&table, toy_score(d.labels()), &config);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.support >= 0.05, "support {} below threshold", c.support);
            assert_eq!(c.coverage.count(), (c.support * 400.0).round() as usize);
        }
    }

    #[test]
    fn responsibility_pruning_enforces_strict_improvement() {
        let d = german(400, 62);
        let table = generate_predicates(&d, 4);
        let config = LatticeConfig {
            support_threshold: 0.02,
            ..Default::default()
        };
        let (cands, _) = compute_candidates(&table, toy_score(d.labels()), &config);
        // Every multi-predicate candidate must out-score every strict
        // sub-pattern present in the result (transitively guaranteed by the
        // per-merge check against both parents; we verify against all
        // single-predicate ancestors).
        let singles: std::collections::HashMap<u16, f64> = cands
            .iter()
            .filter(|c| c.pattern.len() == 1)
            .map(|c| (c.pattern.ids()[0], c.responsibility))
            .collect();
        for c in cands.iter().filter(|c| c.pattern.len() == 2) {
            for id in c.pattern.ids() {
                if let Some(&parent_resp) = singles.get(id) {
                    assert!(
                        c.responsibility > parent_resp,
                        "merged pattern does not improve on its parent"
                    );
                }
            }
        }
    }

    #[test]
    fn disabling_responsibility_pruning_yields_more_candidates() {
        let d = german(400, 63);
        let table = generate_predicates(&d, 4);
        let pruned = compute_candidates(
            &table,
            toy_score(d.labels()),
            &LatticeConfig {
                support_threshold: 0.05,
                ..Default::default()
            },
        )
        .0
        .len();
        let unpruned = compute_candidates(
            &table,
            toy_score(d.labels()),
            &LatticeConfig {
                support_threshold: 0.05,
                prune_by_responsibility: false,
                max_predicates: 3,
                max_level_candidates: None,
            },
        )
        .0
        .len();
        assert!(
            unpruned > pruned,
            "unpruned {unpruned} should exceed pruned {pruned}"
        );
    }

    #[test]
    fn no_duplicate_patterns() {
        let d = german(300, 64);
        let table = generate_predicates(&d, 4);
        let (cands, _) = compute_candidates(
            &table,
            toy_score(d.labels()),
            &LatticeConfig {
                support_threshold: 0.05,
                prune_by_responsibility: false,
                max_predicates: 3,
                max_level_candidates: None,
            },
        );
        let mut seen = std::collections::HashSet::new();
        for c in &cands {
            assert!(
                seen.insert(c.pattern.ids().to_vec()),
                "duplicate {:?}",
                c.pattern
            );
        }
    }

    #[test]
    fn no_conflicting_predicates_within_pattern() {
        let d = german(300, 65);
        let table = generate_predicates(&d, 4);
        let (cands, _) = compute_candidates(
            &table,
            toy_score(d.labels()),
            &LatticeConfig {
                support_threshold: 0.03,
                prune_by_responsibility: false,
                max_predicates: 3,
                max_level_candidates: None,
            },
        );
        for c in &cands {
            let ids = c.pattern.ids();
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    assert!(
                        !table.predicate(a).conflicts_with(table.predicate(b)),
                        "conflicting predicates in pattern {:?}",
                        c.pattern
                    );
                }
            }
        }
    }

    #[test]
    fn stats_track_levels_and_scoring() {
        let d = german(300, 66);
        let table = generate_predicates(&d, 4);
        let (cands, stats) = compute_candidates(
            &table,
            toy_score(d.labels()),
            &LatticeConfig {
                support_threshold: 0.05,
                ..Default::default()
            },
        );
        assert!(!stats.levels.is_empty());
        assert_eq!(stats.levels[0].level, 1);
        assert_eq!(stats.total_kept(), cands.len());
        assert!(stats.total_scored >= cands.len());
    }

    #[test]
    fn level_cap_limits_frontier() {
        let d = german(300, 67);
        let table = generate_predicates(&d, 4);
        let (_, stats) = compute_candidates(
            &table,
            toy_score(d.labels()),
            &LatticeConfig {
                support_threshold: 0.02,
                prune_by_responsibility: false,
                max_predicates: 3,
                max_level_candidates: Some(20),
            },
        );
        for level in &stats.levels {
            assert!(
                level.kept <= 20,
                "level {} kept {}",
                level.level,
                level.kept
            );
        }
    }

    #[test]
    fn coverage_is_intersection_of_predicate_coverages() {
        let d = german(300, 68);
        let table = generate_predicates(&d, 4);
        let (cands, _) = compute_candidates(
            &table,
            toy_score(d.labels()),
            &LatticeConfig {
                support_threshold: 0.05,
                ..Default::default()
            },
        );
        for c in cands.iter().filter(|c| c.pattern.len() >= 2) {
            let mut expected: Option<BitSet> = None;
            for &id in c.pattern.ids() {
                let cov = table.coverage(id);
                expected = Some(match expected {
                    None => cov.clone(),
                    Some(e) => e.and(cov),
                });
            }
            assert_eq!(c.coverage.as_ref(), &expected.unwrap());
        }
    }

    /// The multi-scorer sweep must reproduce each scorer's solo run bit for
    /// bit: same candidates, same order, same stats counts.
    #[test]
    fn multi_sweep_matches_solo_runs() {
        let d = german(400, 69);
        let table = generate_predicates(&d, 4);
        let config = LatticeConfig {
            support_threshold: 0.04,
            ..Default::default()
        };
        // Two deliberately different scores (positive rate / privileged
        // rate) so the frontiers diverge and pruning decisions differ.
        let labels = d.labels().to_vec();
        let privileged = d.privileged_mask();
        let (solo_a, stats_a) = compute_candidates(&table, toy_score(&labels), &config);
        let priv_score = |cov: &BitSet| {
            let total = cov.count().max(1);
            let p: usize = cov.iter().map(|r| privileged[r as usize] as usize).sum();
            p as f64 / total as f64
        };
        let (solo_b, stats_b) = compute_candidates(&table, priv_score, &config);

        // The sweep must be thread-count-invariant: 1 (inline), 2, and an
        // oversubscribed 8 all reproduce the solo runs bit for bit.
        for threads in [1, 2, 8] {
            let cache = CoverageCache::new();
            let mut sa = toy_score(&labels);
            let mut sb = priv_score;
            let mut scorers: Vec<ScoreFn<'_>> = vec![Box::new(&mut sa), Box::new(&mut sb)];
            let mut multi =
                compute_candidates_multi(&table, &mut scorers, &config, &cache, threads);
            let (multi_b, mstats_b) = multi.pop().unwrap();
            let (multi_a, mstats_a) = multi.pop().unwrap();

            for ((solo, stats), (multi, mstats)) in [
                ((&solo_a, &stats_a), (&multi_a, &mstats_a)),
                ((&solo_b, &stats_b), (&multi_b, &mstats_b)),
            ] {
                assert_eq!(solo.len(), multi.len());
                for (s, m) in solo.iter().zip(multi) {
                    assert_eq!(s.pattern.ids(), m.pattern.ids());
                    assert_eq!(s.responsibility, m.responsibility);
                    assert_eq!(s.support, m.support);
                }
                assert_eq!(stats.total_scored, mstats.total_scored);
                assert_eq!(stats.levels.len(), mstats.levels.len());
                for (s, m) in stats.levels.iter().zip(&mstats.levels) {
                    assert_eq!(
                        (s.level, s.generated, s.kept),
                        (m.level, m.generated, m.kept)
                    );
                }
            }
            assert!(!cache.is_empty(), "sweep must populate the shared cache");
        }
    }

    /// Fan-out must keep per-level timing populated: every explored level of
    /// every scorer reports a nonzero duration even when scorers run on
    /// worker threads.
    #[test]
    fn fanned_out_level_stats_keep_durations() {
        let d = german(400, 70);
        let table = generate_predicates(&d, 4);
        let config = LatticeConfig {
            support_threshold: 0.04,
            ..Default::default()
        };
        let labels = d.labels().to_vec();
        let cache = CoverageCache::new();
        let mut s1 = toy_score(&labels);
        let mut s2 = toy_score(&labels);
        let mut s3 = toy_score(&labels);
        let mut scorers: Vec<ScoreFn<'_>> =
            vec![Box::new(&mut s1), Box::new(&mut s2), Box::new(&mut s3)];
        let results = compute_candidates_multi(&table, &mut scorers, &config, &cache, 4);
        for (_, stats) in &results {
            assert!(!stats.levels.is_empty());
            for level in &stats.levels {
                if level.generated > 0 {
                    assert!(
                        level.duration > Duration::ZERO,
                        "level {} scored {} candidates but reports zero duration",
                        level.level,
                        level.generated
                    );
                }
            }
        }
    }
}
