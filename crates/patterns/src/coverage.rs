//! Shared cache of materialized pattern coverage bitsets.
//!
//! The lattice search intersects predicate coverages constantly, and an
//! interactive session asks for the *same* intersections again on every
//! query (the pattern structure depends only on the data, not on the metric
//! or estimator being debugged). [`CoverageCache`] memoizes each pattern's
//! coverage by its sorted predicate-id key so a warm session — or a batch of
//! queries fanned out over one sweep — pays for every `AND` exactly once.

use crate::bitset::BitSet;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Default cap on cached entries: beyond this the cache stops inserting
/// (lookups still work), bounding memory on adversarial workloads.
pub const DEFAULT_COVERAGE_CACHE_CAP: usize = 1 << 18;

/// Observability counters of a [`CoverageCache`] (see
/// [`CoverageCache::stats`]). All counters are cumulative since
/// construction; `entries` is the current size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoverageCacheStats {
    /// Coverages currently cached.
    pub entries: usize,
    /// Lookups answered from the cache (no intersection computed).
    pub hits: u64,
    /// Lookups that had to compute their intersection.
    pub misses: u64,
    /// Freshly computed coverages the cap refused to retain (the value is
    /// still returned to the caller; the next ask recomputes it). A nonzero
    /// count is the signal that the cap is too small for the workload.
    pub inserts_refused: u64,
}

/// The map plus its counters, guarded by one mutex (counters are only
/// meaningful relative to the map state they describe).
#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<Box<[u16]>, Arc<BitSet>>,
    hits: u64,
    misses: u64,
    inserts_refused: u64,
}

/// A concurrent map from sorted predicate-id keys to shared coverage
/// bitsets. Coverage is a pure function of the predicate table, so entries
/// never invalidate for the lifetime of the table the keys refer to.
#[derive(Debug)]
pub struct CoverageCache {
    inner: Mutex<CacheInner>,
    cap: usize,
}

impl Default for CoverageCache {
    fn default() -> Self {
        Self::new()
    }
}

impl CoverageCache {
    /// An empty cache with the default entry cap.
    pub fn new() -> Self {
        Self::with_capacity_cap(DEFAULT_COVERAGE_CACHE_CAP)
    }

    /// An empty cache that stops inserting once `cap` entries are stored.
    pub fn with_capacity_cap(cap: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner::default()),
            cap,
        }
    }

    /// Number of cached coverages.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// The retention cap this cache was built with (entries past it are
    /// computed but not stored). Session updates read it to size the
    /// replacement cache identically.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Locks the cache, recovering from poisoning: entries are pure
    /// functions of the predicate table and are only ever inserted fully
    /// built, so a panicking scorer thread can never leave one half-written
    /// — the data behind a poisoned guard is still valid.
    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        gopher_par::lock_recover(&self.inner)
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the cache's hit/miss/insert-refused counters.
    pub fn stats(&self) -> CoverageCacheStats {
        let inner = self.lock();
        CoverageCacheStats {
            entries: inner.entries.len(),
            hits: inner.hits,
            misses: inner.misses,
            inserts_refused: inner.inserts_refused,
        }
    }

    /// Returns the cached coverage for `ids` without computing anything.
    ///
    /// Counts a hit when present and **nothing** when absent: the caller is
    /// probing before deciding whether the intersection is worth
    /// materializing at all (the lattice's lazy merge path counts first and
    /// skips unsupported merges), so an absent entry is not yet a miss — if
    /// the caller goes on to materialize via
    /// [`CoverageCache::get_or_insert_with`], *that* lookup records the miss.
    pub fn peek(&self, ids: &[u16]) -> Option<Arc<BitSet>> {
        let mut inner = self.lock();
        let hit = inner.entries.get(ids).map(Arc::clone);
        if hit.is_some() {
            inner.hits += 1;
        }
        hit
    }

    /// Returns the cached coverage for `ids` (sorted predicate ids), or
    /// computes it with `compute`, caches it (subject to the cap), and
    /// returns it.
    pub fn get_or_insert_with(&self, ids: &[u16], compute: impl FnOnce() -> BitSet) -> Arc<BitSet> {
        {
            let mut inner = self.lock();
            if let Some(hit) = inner.entries.get(ids) {
                let hit = Arc::clone(hit);
                inner.hits += 1;
                return hit;
            }
            inner.misses += 1;
        }
        // Compute outside the lock: intersections are the expensive part and
        // concurrent queries must not serialize on them.
        let fresh = Arc::new(compute());
        let mut inner = self.lock();
        if let Some(hit) = inner.entries.get(ids) {
            return Arc::clone(hit); // another query raced us; keep one copy
        }
        if inner.entries.len() < self.cap {
            inner
                .entries
                .insert(ids.to_vec().into_boxed_slice(), Arc::clone(&fresh));
        } else {
            inner.inserts_refused += 1;
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_returns_same_allocation() {
        let cache = CoverageCache::new();
        let a = cache.get_or_insert_with(&[1, 2], || BitSet::from_indices(10, &[0, 1]));
        let b = cache.get_or_insert_with(&[1, 2], || panic!("must hit the cache"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_are_distinct_entries() {
        let cache = CoverageCache::new();
        let a = cache.get_or_insert_with(&[1], || BitSet::from_indices(10, &[0]));
        let b = cache.get_or_insert_with(&[2], || BitSet::from_indices(10, &[1]));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cap_stops_insertion_but_not_computation() {
        let cache = CoverageCache::with_capacity_cap(1);
        let _ = cache.get_or_insert_with(&[1], || BitSet::from_indices(4, &[0]));
        let b = cache.get_or_insert_with(&[2], || BitSet::from_indices(4, &[1]));
        assert_eq!(cache.len(), 1, "cap must hold");
        assert_eq!(b.to_indices(), vec![1], "value still computed and returned");
        // The uncached key recomputes on the next ask.
        let b2 = cache.get_or_insert_with(&[2], || BitSet::from_indices(4, &[1]));
        assert_eq!(b2.to_indices(), vec![1]);
    }

    #[test]
    fn peek_counts_hits_but_never_misses() {
        let cache = CoverageCache::new();
        assert!(cache.peek(&[7]).is_none());
        assert_eq!(cache.stats().misses, 0, "an absent peek is not a miss");
        let a = cache.get_or_insert_with(&[7], || BitSet::from_indices(4, &[2]));
        let peeked = cache.peek(&[7]).expect("cached");
        assert!(Arc::ptr_eq(&a, &peeked));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn counters_track_hits_misses_and_refused_inserts() {
        let cache = CoverageCache::with_capacity_cap(1);
        assert_eq!(cache.stats(), CoverageCacheStats::default());
        let _ = cache.get_or_insert_with(&[1], || BitSet::from_indices(4, &[0]));
        let _ = cache.get_or_insert_with(&[1], || unreachable!("cached"));
        let after_hit = cache.stats();
        assert_eq!(
            (after_hit.entries, after_hit.hits, after_hit.misses),
            (1, 1, 1)
        );
        assert_eq!(after_hit.inserts_refused, 0);
        // Over the cap: computed and returned, but the insert is refused —
        // once per ask, since nothing is retained.
        let _ = cache.get_or_insert_with(&[2], || BitSet::from_indices(4, &[1]));
        let _ = cache.get_or_insert_with(&[2], || BitSet::from_indices(4, &[1]));
        let after_refused = cache.stats();
        assert_eq!(after_refused.inserts_refused, 2);
        assert_eq!(after_refused.misses, 3);
        assert_eq!(after_refused.entries, 1);
    }
}
