//! Packed bitset over training-row ids.

/// A fixed-capacity bitset over row indices `0..len`, packed into `u64`
/// words. Pattern coverage sets are intersected constantly during the
/// lattice search, so `and`/`count` work word-at-a-time.
///
/// # Out-of-range indices: `insert` panics, `contains` answers `false`
///
/// The asymmetry is deliberate. Inserting an index `>= len` is always a
/// bug — the universe is the training set, silently dropping (or worse,
/// growing for) a row would corrupt every downstream support count — so
/// [`BitSet::insert`] (and therefore [`BitSet::from_indices`]) panics.
/// *Querying* any index is well-defined, though: a row outside the universe
/// is simply not a member, so [`BitSet::contains`] answers `false` rather
/// than forcing every caller holding ids from a wider universe to
/// range-check first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over `len` rows.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A set over `len` rows with the given members.
    ///
    /// # Panics
    /// If any index is `>= len` (see [`BitSet::insert`]).
    pub fn from_indices(len: usize, indices: &[u32]) -> Self {
        let mut s = Self::new(len);
        for &i in indices {
            s.insert(i as usize);
        }
        s
    }

    /// Universe size (number of rows, not number of members).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Adds a row id.
    ///
    /// # Panics
    /// If `i >= len`: membership is only ever built from in-universe row
    /// ids, so an out-of-range insert is a programming error (contrast
    /// [`BitSet::contains`], where any query has a well-defined answer).
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bitset: index {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Membership test. Indices `>= len` are simply not members (`false`),
    /// so callers holding ids from a wider universe need no range check.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// New set = self ∩ other.
    ///
    /// # Panics
    /// If universe sizes differ.
    pub fn and(&self, other: &BitSet) -> BitSet {
        assert_eq!(self.len, other.len, "bitset: universe mismatch");
        BitSet {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Size of the intersection without materializing it (alias of
    /// [`BitSet::and_count`], kept for call-site readability).
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        self.and_count(other)
    }

    /// Fused and+popcount: `self.and(other).count()` in a single pass over
    /// the words, with no intermediate allocation.
    ///
    /// This is the structural sweep's hot kernel: at realistic support
    /// thresholds most merge pairs *fail* the support check, so the lattice
    /// counts an intersection first and only materializes the AND for the
    /// minority that pass. The accumulate is unrolled four words wide into
    /// independent counters so the popcounts pipeline instead of
    /// serializing on one accumulator.
    ///
    /// # Panics
    /// If universe sizes differ.
    pub fn and_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "bitset: universe mismatch");
        let mut acc = [0usize; 4];
        let mut a = self.words.chunks_exact(4);
        let mut b = other.words.chunks_exact(4);
        for (wa, wb) in (&mut a).zip(&mut b) {
            acc[0] += (wa[0] & wb[0]).count_ones() as usize;
            acc[1] += (wa[1] & wb[1]).count_ones() as usize;
            acc[2] += (wa[2] & wb[2]).count_ones() as usize;
            acc[3] += (wa[3] & wb[3]).count_ones() as usize;
        }
        let tail: usize = a
            .remainder()
            .iter()
            .zip(b.remainder())
            .map(|(wa, wb)| (wa & wb).count_ones() as usize)
            .sum();
        acc[0] + acc[1] + acc[2] + acc[3] + tail
    }

    /// Members as sorted row ids.
    pub fn to_indices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count());
        for (w_idx, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                out.push((w_idx * 64 + bit) as u32);
                w &= w - 1;
            }
        }
        out
    }

    /// Iterates members as row ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(w_idx, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some((w_idx * 64 + bit) as u32)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert_eq!(s.count(), 4);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(500), "out of range is simply absent");
    }

    #[test]
    fn and_and_intersection_count_agree() {
        let a = BitSet::from_indices(100, &[1, 5, 50, 64, 99]);
        let b = BitSet::from_indices(100, &[5, 50, 65, 99]);
        let i = a.and(&b);
        assert_eq!(i.to_indices(), vec![5, 50, 99]);
        assert_eq!(a.intersection_count(&b), 3);
        assert_eq!(a.and_count(&b), 3);
    }

    /// The unrolled kernel must agree with the materialized path across the
    /// 4-word unroll boundaries (dense sets so every word participates).
    #[test]
    fn and_count_covers_unroll_boundaries() {
        for len in [1usize, 63, 64, 65, 255, 256, 257, 320, 449] {
            let a_idx: Vec<u32> = (0..len as u32).filter(|i| i % 3 != 0).collect();
            let b_idx: Vec<u32> = (0..len as u32).filter(|i| i % 2 == 0).collect();
            let a = BitSet::from_indices(len, &a_idx);
            let b = BitSet::from_indices(len, &b_idx);
            assert_eq!(a.and_count(&b), a.and(&b).count(), "len={len}");
        }
    }

    #[test]
    fn to_indices_round_trips() {
        let idx = vec![0u32, 7, 63, 64, 127, 128];
        let s = BitSet::from_indices(200, &idx);
        assert_eq!(s.to_indices(), idx);
        assert_eq!(s.iter().collect::<Vec<_>>(), idx);
    }

    #[test]
    fn empty_intersection() {
        let a = BitSet::from_indices(64, &[0, 1, 2]);
        let b = BitSet::from_indices(64, &[3, 4, 5]);
        assert!(a.and(&b).is_empty());
        assert_eq!(a.intersection_count(&b), 0);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn and_rejects_mismatched_universes() {
        let a = BitSet::new(10);
        let b = BitSet::new(20);
        let _ = a.and(&b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_rejects_out_of_range() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }
}
