//! Packed bitset over training-row ids, with runtime-dispatched SIMD kernels.
//!
//! The two hot kernels — fused intersection popcount ([`BitSet::and_count`])
//! and materialized intersection ([`BitSet::and`]) — dispatch once per
//! process to the fastest implementation the host supports: an AVX2 path on
//! `x86_64` CPUs that report the feature at runtime, else the portable
//! scalar path. Dispatch is observable via [`simd_backend`], overridable via
//! `GOPHER_SIMD=scalar` (read once, before the first kernel call), and both
//! paths are bit-identical by construction — the scalar kernels stay
//! reachable as [`BitSet::and_count_scalar`] / [`BitSet::and_scalar`] so
//! tests can pin the equivalence even on hosts that dispatch to AVX2.

use std::sync::OnceLock;

/// Word-slice kernel signatures the dispatcher selects between. Both slices
/// (and `out`) always have equal length — callers operate on same-universe
/// bitsets.
type AndCountFn = fn(&[u64], &[u64]) -> usize;
type AndIntoFn = fn(&[u64], &[u64], &mut [u64]);

struct Kernels {
    and_count: AndCountFn,
    and_into: AndIntoFn,
    name: &'static str,
}

/// Fused and+popcount over raw words: the portable reference kernel. The
/// accumulate is unrolled four words wide into independent counters so the
/// popcounts pipeline instead of serializing on one accumulator.
fn and_count_words(a: &[u64], b: &[u64]) -> usize {
    let mut acc = [0usize; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (wa, wb) in (&mut ca).zip(&mut cb) {
        acc[0] += (wa[0] & wb[0]).count_ones() as usize;
        acc[1] += (wa[1] & wb[1]).count_ones() as usize;
        acc[2] += (wa[2] & wb[2]).count_ones() as usize;
        acc[3] += (wa[3] & wb[3]).count_ones() as usize;
    }
    let tail: usize = ca
        .remainder()
        .iter()
        .zip(cb.remainder())
        .map(|(wa, wb)| (wa & wb).count_ones() as usize)
        .sum();
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Word-wise AND into `out`: the portable reference kernel.
fn and_into_words(a: &[u64], b: &[u64], out: &mut [u64]) {
    for i in 0..a.len() {
        out[i] = a[i] & b[i];
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 variants of the word kernels. 256-bit strides (4 words), scalar
    //! tail; popcount via the Mula nibble-LUT: per-byte counts from two
    //! 16-entry shuffles, horizontally summed into four u64 lanes with
    //! `_mm256_sad_epu8`. Each stride adds ≤ 64 per lane, so the u64
    //! accumulator cannot overflow at any realistic universe size.

    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure the host supports AVX2 (runtime-detected by the
    /// dispatcher before either entry point is installed).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn and_count(a: &[u64], b: &[u64]) -> usize {
        // Per-nibble popcounts, repeated across both 128-bit halves.
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let zero = _mm256_setzero_si256();
        let mut acc = zero;
        let strides = a.len() / 4;
        for i in 0..strides {
            // SAFETY: i < a.len()/4, so words [i*4, i*4+4) are in bounds of
            // both slices (callers pass equal-universe blocks, a.len() ==
            // b.len()); loadu has no alignment requirement.
            let va = unsafe { _mm256_loadu_si256(a.as_ptr().add(i * 4).cast()) };
            let vb = unsafe { _mm256_loadu_si256(b.as_ptr().add(i * 4).cast()) };
            let v = _mm256_and_si256(va, vb);
            let lo = _mm256_shuffle_epi8(lut, _mm256_and_si256(v, low_mask));
            let hi = _mm256_shuffle_epi8(lut, _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask));
            let bytes = _mm256_add_epi8(lo, hi);
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, zero));
        }
        let mut lanes = [0u64; 4];
        // SAFETY: `lanes` is exactly 32 bytes, the width of one store.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc) };
        let mut total = (lanes[0] + lanes[1] + lanes[2] + lanes[3]) as usize;
        for i in strides * 4..a.len() {
            total += (a[i] & b[i]).count_ones() as usize;
        }
        total
    }

    /// # Safety
    /// Same contract as [`and_count`].
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn and_into(a: &[u64], b: &[u64], out: &mut [u64]) {
        let strides = a.len() / 4;
        for i in 0..strides {
            // SAFETY: i < a.len()/4, so words [i*4, i*4+4) are in bounds of
            // all three slices (callers pass equal-universe blocks);
            // loadu/storeu have no alignment requirement.
            unsafe {
                let va = _mm256_loadu_si256(a.as_ptr().add(i * 4).cast());
                let vb = _mm256_loadu_si256(b.as_ptr().add(i * 4).cast());
                _mm256_storeu_si256(out.as_mut_ptr().add(i * 4).cast(), _mm256_and_si256(va, vb));
            }
        }
        for i in strides * 4..a.len() {
            out[i] = a[i] & b[i];
        }
    }
}

/// Safe trampoline installed only after runtime AVX2 detection succeeds.
#[cfg(target_arch = "x86_64")]
fn and_count_avx2(a: &[u64], b: &[u64]) -> usize {
    // SAFETY: the dispatcher installs this fn pointer only when
    // `is_x86_64_feature_detected!("avx2")` reported true on this host.
    unsafe { avx2::and_count(a, b) }
}

/// Safe trampoline installed only after runtime AVX2 detection succeeds.
#[cfg(target_arch = "x86_64")]
fn and_into_avx2(a: &[u64], b: &[u64], out: &mut [u64]) {
    // SAFETY: see `and_count_avx2`.
    unsafe { avx2::and_into(a, b, out) }
}

/// Selects the kernel implementations once per process: AVX2 when the host
/// is `x86_64`, reports the feature at runtime, and `GOPHER_SIMD` is not set
/// to `scalar`; the portable scalar kernels otherwise.
fn kernels() -> &'static Kernels {
    static KERNELS: OnceLock<Kernels> = OnceLock::new();
    KERNELS.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            let forced_scalar = std::env::var("GOPHER_SIMD").is_ok_and(|v| v == "scalar");
            if !forced_scalar && is_x86_feature_detected!("avx2") {
                return Kernels {
                    and_count: and_count_avx2,
                    and_into: and_into_avx2,
                    name: "avx2",
                };
            }
        }
        Kernels {
            and_count: and_count_words,
            and_into: and_into_words,
            name: "scalar",
        }
    })
}

/// Name of the kernel backend this process dispatched to: `"avx2"` or
/// `"scalar"`. Decided once, at the first kernel call (or this call,
/// whichever comes first); `GOPHER_SIMD=scalar` forces the scalar path.
pub fn simd_backend() -> &'static str {
    kernels().name
}

/// A fixed-capacity bitset over row indices `0..len`, packed into `u64`
/// words. Pattern coverage sets are intersected constantly during the
/// lattice search, so `and`/`count` work word-at-a-time.
///
/// # Out-of-range indices: `insert` panics, `contains` answers `false`
///
/// The asymmetry is deliberate. Inserting an index `>= len` is always a
/// bug — the universe is the training set, silently dropping (or worse,
/// growing for) a row would corrupt every downstream support count — so
/// [`BitSet::insert`] (and therefore [`BitSet::from_indices`]) panics.
/// *Querying* any index is well-defined, though: a row outside the universe
/// is simply not a member, so [`BitSet::contains`] answers `false` rather
/// than forcing every caller holding ids from a wider universe to
/// range-check first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over `len` rows.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A set over `len` rows with the given members.
    ///
    /// # Panics
    /// If any index is `>= len` (see [`BitSet::insert`]).
    pub fn from_indices(len: usize, indices: &[u32]) -> Self {
        let mut s = Self::new(len);
        for &i in indices {
            s.insert(i as usize);
        }
        s
    }

    /// Universe size (number of rows, not number of members).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Adds a row id.
    ///
    /// # Panics
    /// If `i >= len`: membership is only ever built from in-universe row
    /// ids, so an out-of-range insert is a programming error (contrast
    /// [`BitSet::contains`], where any query has a well-defined answer).
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bitset: index {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Membership test. Indices `>= len` are simply not members (`false`),
    /// so callers holding ids from a wider universe need no range check.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// New set = self ∩ other. Runs the dispatched kernel (AVX2 where
    /// available, scalar otherwise); [`BitSet::and_scalar`] is the
    /// bit-identical portable reference.
    ///
    /// # Panics
    /// If universe sizes differ.
    pub fn and(&self, other: &BitSet) -> BitSet {
        assert_eq!(self.len, other.len, "bitset: universe mismatch");
        let mut words = vec![0u64; self.words.len()];
        (kernels().and_into)(&self.words, &other.words, &mut words);
        BitSet {
            words,
            len: self.len,
        }
    }

    /// Portable scalar reference for [`BitSet::and`], bypassing SIMD
    /// dispatch. Kept public so equivalence tests cover the fallback kernel
    /// even on hosts that dispatch to AVX2.
    ///
    /// # Panics
    /// If universe sizes differ.
    pub fn and_scalar(&self, other: &BitSet) -> BitSet {
        assert_eq!(self.len, other.len, "bitset: universe mismatch");
        let mut words = vec![0u64; self.words.len()];
        and_into_words(&self.words, &other.words, &mut words);
        BitSet {
            words,
            len: self.len,
        }
    }

    /// Size of the intersection without materializing it (alias of
    /// [`BitSet::and_count`], kept for call-site readability).
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        self.and_count(other)
    }

    /// Fused and+popcount: `self.and(other).count()` in a single pass over
    /// the words, with no intermediate allocation.
    ///
    /// This is the structural sweep's hot kernel: at realistic support
    /// thresholds most merge pairs *fail* the support check, so the lattice
    /// counts an intersection first and only materializes the AND for the
    /// minority that pass. Runs the dispatched kernel (AVX2 where available,
    /// scalar otherwise); [`BitSet::and_count_scalar`] is the bit-identical
    /// portable reference.
    ///
    /// # Panics
    /// If universe sizes differ.
    pub fn and_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "bitset: universe mismatch");
        (kernels().and_count)(&self.words, &other.words)
    }

    /// Portable scalar reference for [`BitSet::and_count`], bypassing SIMD
    /// dispatch. Kept public so equivalence tests cover the fallback kernel
    /// even on hosts that dispatch to AVX2.
    ///
    /// # Panics
    /// If universe sizes differ.
    pub fn and_count_scalar(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "bitset: universe mismatch");
        and_count_words(&self.words, &other.words)
    }

    /// `|self ∩ other|` restricted to the word range `[lo, hi)`, through the
    /// dispatched kernel — the sampled-support prefilter's probe primitive
    /// (block-contiguous samples keep it on the SIMD path).
    ///
    /// # Panics
    /// If the range is out of bounds for either set's word array.
    pub(crate) fn and_count_range(&self, other: &BitSet, lo: usize, hi: usize) -> usize {
        (kernels().and_count)(&self.words[lo..hi], &other.words[lo..hi])
    }

    /// Order-preserving bit compaction: a new set over `n_new` rows holding
    /// this set's members at *kept* positions, renumbered by the prefix sum
    /// of `keep` (the j-th kept position maps to output bit j). This is the
    /// delta-patch primitive: removing rows from a coverage bitset is
    /// exactly "compact by the kept-row mask, then grow the universe to the
    /// post-delta row count".
    ///
    /// Runs word-at-a-time: words whose keep mask is saturated (the
    /// overwhelming case for small deltas) are shifted into place whole;
    /// only words actually containing removed rows take the per-bit
    /// extraction path.
    ///
    /// # Panics
    /// If universe sizes differ or `n_new` cannot hold all kept positions.
    pub fn compact(&self, keep: &BitSet, n_new: usize) -> BitSet {
        assert_eq!(self.len, keep.len, "bitset: universe mismatch");
        let kept_total: usize = keep.words.iter().map(|w| w.count_ones() as usize).sum();
        assert!(
            n_new >= kept_total,
            "bitset: compact target {n_new} cannot hold {kept_total} kept rows"
        );
        let mut out = BitSet::new(n_new);
        let mut out_pos = 0usize;
        for (&cov, &km) in self.words.iter().zip(&keep.words) {
            let (packed, bits) = if km == u64::MAX {
                (cov, 64u32)
            } else {
                (pext_fallback(cov & km, km), km.count_ones())
            };
            if packed != 0 {
                let wi = out_pos / 64;
                let off = out_pos % 64;
                out.words[wi] |= packed << off;
                if off != 0 {
                    let hi = packed >> (64 - off);
                    if hi != 0 {
                        out.words[wi + 1] |= hi;
                    }
                }
            }
            out_pos += bits as usize;
        }
        out
    }

    /// Members as sorted row ids.
    pub fn to_indices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count());
        for (w_idx, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                out.push((w_idx * 64 + bit) as u32);
                w &= w - 1;
            }
        }
        out
    }

    /// Iterates members as row ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(w_idx, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some((w_idx * 64 + bit) as u32)
            })
        })
    }
}

/// Portable parallel-bit-extract: gathers the bits of `x` at `mask`'s set
/// positions into the low `popcount(mask)` bits, preserving order. Walks
/// `mask`'s set bits, so it costs `O(popcount(mask))` — [`BitSet::compact`]
/// only routes words that actually contain removed rows here.
#[inline]
fn pext_fallback(x: u64, mut mask: u64) -> u64 {
    let mut out = 0u64;
    let mut j = 0u32;
    while mask != 0 {
        let lsb = mask & mask.wrapping_neg();
        if x & lsb != 0 {
            out |= 1u64 << j;
        }
        j += 1;
        mask &= mask - 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert_eq!(s.count(), 4);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(500), "out of range is simply absent");
    }

    /// `compact` against the naive per-bit remap, across word boundaries,
    /// removal patterns (none, sparse, whole-word runs, tail), and universe
    /// growth — the exact shapes `PredicateTable::patch` feeds it.
    #[test]
    fn compact_matches_naive_remap() {
        for len in [1usize, 63, 64, 65, 130, 256, 320, 449] {
            let members: Vec<u32> = (0..len as u32).filter(|i| i % 3 != 0).collect();
            let set = BitSet::from_indices(len, &members);
            for removed_stride in [0usize, 2, 5, 64, len] {
                let mut keep = BitSet::new(len);
                let mut remap = vec![None; len];
                let mut next = 0usize;
                for r in 0..len {
                    let gone = removed_stride != 0 && r % removed_stride == 0;
                    if !gone {
                        keep.insert(r);
                        remap[r] = Some(next);
                        next += 1;
                    }
                }
                for n_new in [next, next + 7, next + 64] {
                    let got = set.compact(&keep, n_new);
                    let want: Vec<u32> = members
                        .iter()
                        .filter_map(|&m| remap[m as usize].map(|i| i as u32))
                        .collect();
                    assert_eq!(
                        got.to_indices(),
                        want,
                        "len={len} stride={removed_stride} n_new={n_new}"
                    );
                    assert_eq!(got.len(), n_new);
                }
            }
        }
    }

    #[test]
    fn and_and_intersection_count_agree() {
        let a = BitSet::from_indices(100, &[1, 5, 50, 64, 99]);
        let b = BitSet::from_indices(100, &[5, 50, 65, 99]);
        let i = a.and(&b);
        assert_eq!(i.to_indices(), vec![5, 50, 99]);
        assert_eq!(a.intersection_count(&b), 3);
        assert_eq!(a.and_count(&b), 3);
    }

    /// The fused kernel must agree with the materialized path across the
    /// 4-word stride boundaries (dense sets so every word participates) —
    /// and the dispatched kernels must agree with the scalar references at
    /// every one of those lengths.
    #[test]
    fn and_count_covers_unroll_boundaries() {
        for len in [1usize, 63, 64, 65, 255, 256, 257, 320, 449] {
            let a_idx: Vec<u32> = (0..len as u32).filter(|i| i % 3 != 0).collect();
            let b_idx: Vec<u32> = (0..len as u32).filter(|i| i % 2 == 0).collect();
            let a = BitSet::from_indices(len, &a_idx);
            let b = BitSet::from_indices(len, &b_idx);
            assert_eq!(a.and_count(&b), a.and(&b).count(), "len={len}");
            assert_eq!(a.and_count(&b), a.and_count_scalar(&b), "len={len}");
            assert_eq!(a.and(&b), a.and_scalar(&b), "len={len}");
        }
    }

    /// Whatever backend this host dispatched to, it must be one of the two
    /// known kernels, the answer must be stable (dispatch happens once), and
    /// saturated words must popcount exactly (the AVX2 nibble-LUT path sums
    /// 64 per word — an off-by-anything shows up immediately at full
    /// density).
    #[test]
    fn dispatched_backend_is_known_and_exact_on_dense_words() {
        let backend = simd_backend();
        assert!(
            backend == "avx2" || backend == "scalar",
            "unknown backend {backend:?}"
        );
        assert_eq!(simd_backend(), backend, "dispatch must be sticky");
        for len in [64usize, 256, 257, 1024, 100_003] {
            let all: Vec<u32> = (0..len as u32).collect();
            let a = BitSet::from_indices(len, &all);
            assert_eq!(a.and_count(&a), len, "len={len}");
            assert_eq!(a.and(&a), a, "len={len}");
        }
    }

    #[test]
    fn to_indices_round_trips() {
        let idx = vec![0u32, 7, 63, 64, 127, 128];
        let s = BitSet::from_indices(200, &idx);
        assert_eq!(s.to_indices(), idx);
        assert_eq!(s.iter().collect::<Vec<_>>(), idx);
    }

    #[test]
    fn empty_intersection() {
        let a = BitSet::from_indices(64, &[0, 1, 2]);
        let b = BitSet::from_indices(64, &[3, 4, 5]);
        assert!(a.and(&b).is_empty());
        assert_eq!(a.intersection_count(&b), 0);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn and_rejects_mismatched_universes() {
        let a = BitSet::new(10);
        let b = BitSet::new(20);
        let _ = a.and(&b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_rejects_out_of_range() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }
}
