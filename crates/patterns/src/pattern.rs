//! Conjunctive patterns (sets of predicate ids).

use crate::candidates::PredicateTable;
use gopher_data::Schema;

/// A pattern: a conjunction of predicates, stored as sorted ids into a
/// [`PredicateTable`]. Sorted storage makes prefix-join merging and
/// deduplication cheap.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    ids: Vec<u16>,
}

impl Pattern {
    /// A single-predicate pattern.
    pub fn singleton(id: u16) -> Self {
        Self { ids: vec![id] }
    }

    /// Builds a pattern from predicate ids (sorted and deduplicated).
    pub fn from_ids(mut ids: Vec<u16>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        Self { ids }
    }

    /// The sorted predicate ids.
    pub fn ids(&self) -> &[u16] {
        &self.ids
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True for the (never constructed) empty pattern.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Merges two size-k patterns that share k−1 predicates into a size-(k+1)
    /// pattern; returns `None` if they do not overlap in exactly k−1 ids.
    pub fn merge(&self, other: &Pattern) -> Option<Pattern> {
        if self.ids.len() != other.ids.len() {
            return None;
        }
        let k = self.ids.len();
        // Count common ids (both sorted).
        let mut common = 0;
        let (mut i, mut j) = (0, 0);
        while i < k && j < k {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Equal => {
                    common += 1;
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        if common != k - 1 {
            return None;
        }
        let mut ids = self.ids.clone();
        ids.extend_from_slice(&other.ids);
        Some(Pattern::from_ids(ids))
    }

    /// The ids in `self` not present in `other`.
    pub fn difference(&self, other: &Pattern) -> Vec<u16> {
        self.ids
            .iter()
            .copied()
            .filter(|id| !other.ids.contains(id))
            .collect()
    }

    /// Renders the pattern as `pred ∧ pred ∧ …` with schema names.
    pub fn render(&self, table: &PredicateTable, schema: &Schema) -> String {
        self.ids
            .iter()
            .map(|&id| table.predicate(id).render(schema))
            .collect::<Vec<_>>()
            .join(" ∧ ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ids_sorts_and_dedups() {
        let p = Pattern::from_ids(vec![5, 1, 5, 3]);
        assert_eq!(p.ids(), &[1, 3, 5]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn merge_requires_k_minus_one_overlap() {
        let a = Pattern::from_ids(vec![1, 2]);
        let b = Pattern::from_ids(vec![1, 3]);
        let c = Pattern::from_ids(vec![3, 4]);
        assert_eq!(a.merge(&b).unwrap().ids(), &[1, 2, 3]);
        assert!(a.merge(&c).is_none(), "disjoint pairs cannot merge");
        assert!(
            a.merge(&a).is_none(),
            "identical patterns share k ids, not k-1"
        );
    }

    #[test]
    fn merge_rejects_different_sizes() {
        let a = Pattern::from_ids(vec![1]);
        let b = Pattern::from_ids(vec![1, 2]);
        assert!(a.merge(&b).is_none());
    }

    #[test]
    fn singletons_merge_into_pairs() {
        let a = Pattern::singleton(7);
        let b = Pattern::singleton(2);
        assert_eq!(a.merge(&b).unwrap().ids(), &[2, 7]);
    }

    #[test]
    fn difference_finds_novel_ids() {
        let a = Pattern::from_ids(vec![1, 2, 3]);
        let b = Pattern::from_ids(vec![1, 3, 4]);
        assert_eq!(a.difference(&b), vec![2]);
        assert_eq!(b.difference(&a), vec![4]);
    }
}
