//! Single-feature predicates.

use gopher_data::{Column, Dataset, Schema};

/// Comparison operator of a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Equality on a categorical level.
    Eq,
    /// `value < threshold` on a numeric feature.
    Lt,
    /// `value >= threshold` on a numeric feature.
    Ge,
}

/// The comparison constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredValue {
    /// Categorical level index.
    Level(u32),
    /// Numeric threshold.
    Threshold(f64),
}

/// An atomic predicate `feature op value` (paper Definition 3.3 restricts
/// patterns to conjunctions of exactly these shapes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Predicate {
    /// Schema feature index.
    pub feature: usize,
    /// Comparison operator.
    pub op: Op,
    /// Comparison constant.
    pub value: PredValue,
}

impl Predicate {
    /// Equality predicate on a categorical level.
    pub fn eq_level(feature: usize, level: u32) -> Self {
        Self {
            feature,
            op: Op::Eq,
            value: PredValue::Level(level),
        }
    }

    /// `feature < threshold` on a numeric feature.
    pub fn lt(feature: usize, threshold: f64) -> Self {
        Self {
            feature,
            op: Op::Lt,
            value: PredValue::Threshold(threshold),
        }
    }

    /// `feature >= threshold` on a numeric feature.
    pub fn ge(feature: usize, threshold: f64) -> Self {
        Self {
            feature,
            op: Op::Ge,
            value: PredValue::Threshold(threshold),
        }
    }

    /// Whether a dataset row satisfies the predicate.
    pub fn matches(&self, data: &Dataset, row: usize) -> bool {
        match (data.column(self.feature), self.op, self.value) {
            (Column::Categorical(vals), Op::Eq, PredValue::Level(l)) => vals[row] == l,
            (Column::Numeric(vals), Op::Lt, PredValue::Threshold(t)) => vals[row] < t,
            (Column::Numeric(vals), Op::Ge, PredValue::Threshold(t)) => vals[row] >= t,
            _ => panic!("predicate kind does not match column kind"),
        }
    }

    /// Whether two predicates can never (usefully) co-occur in one pattern:
    /// either their conjunction is unsatisfiable or one subsumes the other.
    ///
    /// * `X = a ∧ X = b` (a ≠ b) — unsatisfiable; `X = a ∧ X = a` — redundant.
    /// * `X < a ∧ X < b` — one subsumes the other.
    /// * `X ≥ a ∧ X ≥ b` — one subsumes the other.
    /// * `X < a ∧ X ≥ b` with `b ≥ a` — empty range. With `b < a` the pair
    ///   forms the interval `[b, a)` and is *allowed* (this is how range
    ///   patterns like `Age ∈ [25, 45)` arise).
    pub fn conflicts_with(&self, other: &Predicate) -> bool {
        if self.feature != other.feature {
            return false;
        }
        match (self.op, self.value, other.op, other.value) {
            (Op::Eq, _, Op::Eq, _) => true,
            (Op::Lt, _, Op::Lt, _) | (Op::Ge, _, Op::Ge, _) => true,
            (Op::Lt, PredValue::Threshold(a), Op::Ge, PredValue::Threshold(b))
            | (Op::Ge, PredValue::Threshold(b), Op::Lt, PredValue::Threshold(a)) => b >= a,
            // Mixed Eq with Lt/Ge on the same feature cannot occur (features
            // are either categorical or numeric), but be conservative.
            _ => true,
        }
    }

    /// Renders the predicate with feature/level names from the schema.
    pub fn render(&self, schema: &Schema) -> String {
        let name = &schema.feature(self.feature).name;
        match (self.op, self.value) {
            (Op::Eq, PredValue::Level(l)) => {
                format!("{name} = {}", schema.level_name(self.feature, l))
            }
            (Op::Lt, PredValue::Threshold(t)) => format!("{name} < {t}"),
            (Op::Ge, PredValue::Threshold(t)) => format!("{name} >= {t}"),
            _ => unreachable!("op/value validated at construction"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gopher_data::schema::{Feature, PrivilegedIf, ProtectedSpec};

    fn toy() -> Dataset {
        let schema = Schema::new(
            vec![
                Feature::categorical("color", ["red", "blue"]),
                Feature::numeric("age"),
            ],
            "y",
        );
        Dataset::new(
            schema,
            vec![
                Column::Categorical(vec![0, 1, 0]),
                Column::Numeric(vec![20.0, 45.0, 60.0]),
            ],
            vec![0, 1, 1],
            ProtectedSpec {
                feature: 1,
                privileged: PrivilegedIf::AtLeast(45.0),
            },
        )
    }

    #[test]
    fn matches_each_op() {
        let d = toy();
        let eq = Predicate::eq_level(0, 0);
        assert!(eq.matches(&d, 0));
        assert!(!eq.matches(&d, 1));
        let lt = Predicate::lt(1, 45.0);
        assert!(lt.matches(&d, 0));
        assert!(!lt.matches(&d, 1), "threshold itself is not < threshold");
        let ge = Predicate::ge(1, 45.0);
        assert!(ge.matches(&d, 1));
        assert!(!ge.matches(&d, 0));
    }

    #[test]
    fn conflict_rules() {
        let eq_red = Predicate::eq_level(0, 0);
        let eq_blue = Predicate::eq_level(0, 1);
        assert!(eq_red.conflicts_with(&eq_blue), "different levels conflict");
        assert!(
            eq_red.conflicts_with(&eq_red),
            "same predicate is redundant"
        );

        let lt45 = Predicate::lt(1, 45.0);
        let lt60 = Predicate::lt(1, 60.0);
        assert!(lt45.conflicts_with(&lt60), "subsumption conflicts");

        let ge25 = Predicate::ge(1, 25.0);
        let ge45 = Predicate::ge(1, 45.0);
        assert!(ge25.conflicts_with(&ge45));

        // Valid range: age in [25, 45).
        assert!(!lt45.conflicts_with(&ge25));
        assert!(!ge25.conflicts_with(&lt45));
        // Empty range: age >= 45 and age < 45.
        assert!(lt45.conflicts_with(&ge45));

        // Different features never conflict.
        assert!(!eq_red.conflicts_with(&lt45));
    }

    #[test]
    fn renders_names() {
        let d = toy();
        assert_eq!(Predicate::eq_level(0, 1).render(d.schema()), "color = blue");
        assert_eq!(Predicate::ge(1, 45.0).render(d.schema()), "age >= 45");
        assert_eq!(Predicate::lt(1, 45.0).render(d.schema()), "age < 45");
    }
}
