//! The structural artifact of a lattice sweep: the metric-independent half.
//!
//! Candidate generation splits into two kinds of work (Pradhan et al.,
//! SIGMOD 2022, §4.2): *structural* — which patterns exist above the support
//! threshold, what rows they cover — and *scoring* — how responsible each
//! coverage is under a metric/estimator pair. The structural half depends
//! only on the data and the lattice's structural knobs (support threshold τ,
//! depth), so a [`SweepStructure`] captures it once per `(τ, depth, …)`
//! configuration and every scorer — in this sweep or a later query with a
//! different metric, estimator, or bias evaluation — resolves its merges
//! against it instead of re-intersecting coverages.
//!
//! The artifact is **append-only and internally synchronized**: entries are
//! pure functions of the predicate table (a merged pattern's coverage is the
//! AND of its predicates' coverages, independent of which parent pair
//! produced it), so concurrent structural workers and scorer threads can
//! share one artifact freely, and a warm query topping up unexplored
//! territory can never invalidate anything.

use crate::bitset::BitSet;
use crate::coverage::CoverageCache;
use crate::index::PredicateIndex;
use crate::lattice::LatticeConfig;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A supported single-predicate pattern (the structural part of level 1).
#[derive(Debug, Clone)]
pub struct StructSingle {
    /// Predicate id.
    pub id: u16,
    /// Shared coverage bitset.
    pub coverage: Arc<BitSet>,
    /// `coverage.count()`.
    pub count: usize,
}

/// The structural record of one merged pattern: its support count, plus the
/// coverage bitset when the pattern meets the artifact's threshold (failed
/// merges keep only the count — enough to skip them without re-intersecting).
#[derive(Debug, Clone)]
pub struct MergeRecord {
    /// Rows covered; `None` iff `count` is below the artifact's `min_count`.
    pub coverage: Option<Arc<BitSet>>,
    /// Number of rows the merged pattern covers.
    pub count: usize,
}

/// The reusable structural artifact of a sweep: supported level-1 patterns
/// plus every merged pattern's coverage/support resolved so far.
#[derive(Debug)]
pub struct SweepStructure {
    singles: Vec<StructSingle>,
    merges: Mutex<HashMap<Box<[u16]>, MergeRecord>>,
    min_count: usize,
    n_rows: usize,
    /// Wall-clock cost of building the level-1 structural pass, charged into
    /// every scorer's level-1 duration (mirrors how a solo run pays it).
    build_time: Duration,
}

impl SweepStructure {
    /// Builds the artifact for one structural configuration: filters the
    /// index's predicates by the config's support threshold. (Merged levels
    /// fill in lazily as sweeps run.)
    ///
    /// # Panics
    /// If `config.support_threshold` is outside `[0, 1)` or
    /// `config.max_predicates` is zero — same contract as the lattice
    /// search, enforced here because sessions build artifacts straight from
    /// request parameters.
    pub fn build(index: &PredicateIndex, config: &LatticeConfig) -> Self {
        assert!(
            (0.0..1.0).contains(&config.support_threshold),
            "support threshold must be in [0, 1)"
        );
        assert!(
            config.max_predicates >= 1,
            "need at least one predicate per pattern"
        );
        let t0 = Instant::now();
        let n = index.n_rows();
        let min_count = min_count_for(config.support_threshold, n);
        let singles = index
            .entries()
            .iter()
            .filter(|e| e.count >= min_count)
            .map(|e| StructSingle {
                id: e.id,
                coverage: Arc::clone(&e.coverage),
                count: e.count,
            })
            .collect();
        Self {
            singles,
            merges: Mutex::new(HashMap::new()),
            min_count,
            n_rows: n,
            build_time: t0.elapsed(),
        }
    }

    /// The supported single-predicate patterns, in predicate-id order.
    pub fn singles(&self) -> &[StructSingle] {
        &self.singles
    }

    /// Minimum coverage count a pattern needs (`⌈τ·n⌉`, at least 1).
    pub fn min_count(&self) -> usize {
        self.min_count
    }

    /// Number of dataset rows the coverages range over.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Wall-clock cost of the level-1 structural pass.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Number of merged patterns resolved so far (supported or not).
    pub fn merges_resolved(&self) -> usize {
        self.lock().len()
    }

    /// Locks the merge map, recovering from poisoning (records are pure and
    /// inserted fully built; see `CoverageCache::lock` for the rationale).
    fn lock(&self) -> MutexGuard<'_, HashMap<Box<[u16]>, MergeRecord>> {
        self.merges.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The resolved record for a merged pattern, if any sweep has computed
    /// it yet.
    pub fn lookup(&self, ids: &[u16]) -> Option<MergeRecord> {
        self.lock().get(ids).cloned()
    }

    /// True once `ids` has a resolved record.
    pub fn contains(&self, ids: &[u16]) -> bool {
        self.lock().contains_key(ids)
    }

    /// Snapshot of every resolved merge key. The structural pass takes one
    /// snapshot per level instead of locking per enumerated pair: it only
    /// inserts records *after* its parallel phase returns, so the snapshot
    /// stays exact for the phase's whole duration.
    pub fn known_keys(&self) -> HashSet<Box<[u16]>> {
        self.lock().keys().cloned().collect()
    }

    /// Inserts a freshly resolved record, keeping the existing one on a
    /// race (records for the same ids are value-identical by construction).
    pub fn insert(&self, ids: &[u16], record: MergeRecord) {
        self.lock()
            .entry(ids.to_vec().into_boxed_slice())
            .or_insert(record);
    }

    /// Resolves a merged pattern: returns the cached record, or computes the
    /// coverage with `compute` (routed through `cache`, so other structural
    /// configurations reuse the bitset), counts it, records it, and returns
    /// it. This is both the structural-pass worker primitive and the scorer
    /// fallback for territory the shared pass has not visited.
    pub fn resolve(
        &self,
        ids: &[u16],
        cache: &CoverageCache,
        compute: impl FnOnce() -> BitSet,
    ) -> MergeRecord {
        if let Some(hit) = self.lookup(ids) {
            return hit;
        }
        let record = self.compute_record(ids, cache, compute);
        self.insert(ids, record.clone());
        record
    }

    /// Computes a record without touching the merge map (structural-pass
    /// workers use this so insertion order stays deterministic — chunks are
    /// concatenated and inserted in pair order by the caller).
    pub fn compute_record(
        &self,
        ids: &[u16],
        cache: &CoverageCache,
        compute: impl FnOnce() -> BitSet,
    ) -> MergeRecord {
        let coverage = cache.get_or_insert_with(ids, compute);
        let count = coverage.count();
        MergeRecord {
            coverage: (count >= self.min_count).then_some(coverage),
            count,
        }
    }
}

/// `⌈τ·n⌉`, at least 1 — the count form of the support threshold.
pub fn min_count_for(support_threshold: f64, n_rows: usize) -> usize {
    (support_threshold * n_rows as f64).ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::generate_predicates;
    use gopher_data::generators::german;

    fn setup(n: usize, tau: f64) -> (CoverageCache, PredicateIndex, LatticeConfig) {
        let d = german(n, 93);
        let table = generate_predicates(&d, 4);
        let cache = CoverageCache::new();
        let index = PredicateIndex::build(&table, &cache);
        let config = LatticeConfig {
            support_threshold: tau,
            ..Default::default()
        };
        (cache, index, config)
    }

    #[test]
    fn singles_are_filtered_by_support() {
        let (_cache, index, config) = setup(400, 0.1);
        let structure = SweepStructure::build(&index, &config);
        let min = structure.min_count();
        assert_eq!(min, 40);
        assert!(!structure.singles().is_empty());
        for s in structure.singles() {
            assert!(s.count >= min);
            assert_eq!(s.count, s.coverage.count());
        }
        let expected = index.entries().iter().filter(|e| e.count >= min).count();
        assert_eq!(structure.singles().len(), expected);
    }

    #[test]
    fn resolve_records_supported_and_failed_merges() {
        let (cache, index, config) = setup(400, 0.3);
        let structure = SweepStructure::build(&index, &config);
        let a = &index.entries()[0];
        let b = &index.entries()[1];
        let ids = [a.id, b.id];
        let record = structure.resolve(&ids, &cache, || a.coverage.and(&b.coverage));
        assert_eq!(record.count, a.coverage.intersection_count(&b.coverage));
        assert_eq!(
            record.coverage.is_some(),
            record.count >= structure.min_count()
        );
        // Second resolve hits the artifact, not the closure.
        let again = structure.resolve(&ids, &cache, || unreachable!("resolved"));
        assert_eq!(again.count, record.count);
        assert_eq!(structure.merges_resolved(), 1);
    }

    #[test]
    #[should_panic(expected = "support threshold")]
    fn build_rejects_invalid_threshold() {
        let (_cache, index, mut config) = setup(100, 0.05);
        config.support_threshold = 1.0;
        let _ = SweepStructure::build(&index, &config);
    }
}
